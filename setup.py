"""Setuptools shim.

Kept so that ``python setup.py develop`` works on environments whose
setuptools is too old to build PEP 660 editable wheels (the metadata lives in
``pyproject.toml``).
"""

from setuptools import setup

setup()
