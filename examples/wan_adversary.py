#!/usr/bin/env python
"""A day in the life of a remote adversary (the Figure 8 scenario).

The padded stream crosses either a campus network (3 routers, light diurnal
load) or a WAN path (15 routers, heavier load); the adversary taps right in
front of the receiver gateway and classifies the hidden payload rate once
every two hours through a full day.

The example prints the hourly detection rates for both environments and then
asks the design question the paper ends with: given how well the remote
attack still works against CIT padding, what VIT setting would have been
needed to keep the adversary near coin-flipping even at the quietest hour?
"""

from __future__ import annotations

from repro.core import recommend_policy, safe_observation_budget
from repro.experiments import CollectionMode, Fig8Config, Fig8Experiment
from repro.padding import cit_policy


def main() -> None:
    config = Fig8Config(
        networks=("campus", "wan"),
        hours=tuple(range(0, 24, 2)),
        sample_size=1000,
        trials=15,
        mode=CollectionMode.HYBRID,
    )
    print("Simulating 24 hours of observations over the campus and WAN paths...")
    result = Fig8Experiment(config).run()
    print(result.to_text())

    for network in config.networks:
        variance_rates = result.empirical_detection_rate[network]["variance"]
        quiet_hour = min(result.utilizations[network], key=result.utilizations[network].get)
        busy_hour = max(result.utilizations[network], key=result.utilizations[network].get)
        print(
            f"{network:>6}: detection (variance feature) {variance_rates[quiet_hour]:.0%} at "
            f"{quiet_hour:02d}:00 (quiet) vs {variance_rates[busy_hour]:.0%} at "
            f"{busy_hour:02d}:00 (busy)"
        )

    print()
    print("Design response (Section 6 guidance):")
    budget_cit = safe_observation_budget(cit_policy(), max_detection_rate=0.6)
    print(
        f"  With CIT padding the adversary needs only ~{budget_cit:.0f} intervals "
        f"(~{budget_cit * 0.01:.0f} s of traffic) to exceed a 60% detection rate."
    )
    guideline = recommend_policy(max_detection_rate=0.6, max_observable_sample=10_000_000)
    print("  Recommended configuration for a 60% detection-rate budget against an")
    print("  adversary who can collect up to 1e7 intervals at one payload rate:")
    for line in guideline.summary().splitlines():
        print("    " + line)


if __name__ == "__main__":
    main()
