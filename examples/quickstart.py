#!/usr/bin/env python
"""Quickstart: pad a payload stream, attack it, compare with the theory.

This example walks the whole public API in one small scenario:

1. build the paper's link-padding system (Poisson payload -> sender gateway
   with a CIT timer -> adversary tap) in the event simulator;
2. mount the traffic-analysis attack (off-line training + run-time
   classification) with each of the paper's three feature statistics;
3. compare the measured detection rates with the closed-form predictions of
   Theorems 1-3 and with the exact Bayes rates;
4. show that switching the gateway to VIT padding defeats the attack.

Run with ``python examples/quickstart.py`` (takes a few seconds).
"""

from __future__ import annotations

from repro.adversary import default_features, evaluate_attack
from repro.core import (
    detection_rate_entropy,
    detection_rate_mean,
    detection_rate_variance,
)
from repro.experiments import (
    CollectionMode,
    ScenarioConfig,
    collect_labelled_intervals,
    format_table,
)
from repro.padding import cit_policy, vit_policy

SAMPLE_SIZE = 1000   # PIATs per classified sample (the paper's Figure 4 knee)
TRIALS = 20          # training samples and test samples per payload rate
SEED = 42


def attack(scenario: ScenarioConfig) -> dict:
    """Run the full attack against one padded-link scenario."""
    n_intervals = SAMPLE_SIZE * TRIALS
    train = collect_labelled_intervals(
        scenario, n_intervals, mode=CollectionMode.SIMULATION, seed=SEED, seed_offset="train"
    )
    test = collect_labelled_intervals(
        scenario, n_intervals, mode=CollectionMode.SIMULATION, seed=SEED, seed_offset="test"
    )
    rates = {}
    for name, feature in default_features().items():
        result = evaluate_attack(
            train.intervals, test.intervals, feature, SAMPLE_SIZE, max_samples_per_class=TRIALS
        )
        rates[name] = result.detection_rate
    return rates


def theory(scenario: ScenarioConfig) -> dict:
    """Closed-form detection-rate predictions for the same scenario."""
    r = scenario.variance_ratio()
    return {
        "mean": detection_rate_mean(r),
        "variance": detection_rate_variance(r, SAMPLE_SIZE),
        "entropy": detection_rate_entropy(r, SAMPLE_SIZE),
    }


def main() -> None:
    cit_scenario = ScenarioConfig(policy=cit_policy())          # the common configuration
    vit_scenario = ScenarioConfig(policy=vit_policy(sigma_t=1e-3))  # the paper's countermeasure

    print("Collecting padded traffic and mounting the attack (CIT)...")
    cit_empirical = attack(cit_scenario)
    cit_theory = theory(cit_scenario)

    print("Collecting padded traffic and mounting the attack (VIT, sigma_T = 1 ms)...")
    vit_empirical = attack(vit_scenario)
    vit_theory = theory(vit_scenario)

    rows = []
    for feature in ("mean", "variance", "entropy"):
        rows.append(
            (
                feature,
                cit_empirical[feature],
                cit_theory[feature],
                vit_empirical[feature],
                vit_theory[feature],
            )
        )
    print()
    print(f"Detection rates at sample size {SAMPLE_SIZE} (0.5 = random guessing):")
    print(
        format_table(
            ["feature", "CIT empirical", "CIT theory", "VIT empirical", "VIT theory"], rows
        )
    )
    print()
    print(f"variance ratio r: CIT = {cit_scenario.variance_ratio():.3f}, "
          f"VIT = {vit_scenario.variance_ratio():.6f}")
    print(
        "\nTakeaway: under CIT padding the dispersion features (variance, entropy)\n"
        "identify the hidden payload rate almost every time, while under VIT\n"
        "padding every feature is reduced to coin flipping — the paper's headline\n"
        "result."
    )


if __name__ == "__main__":
    main()
