#!/usr/bin/env python
"""Quickstart: the experiment API in one small scenario.

This example walks the public :mod:`repro.api` surface end to end:

1. list the registered experiments (the paper's figures and the ablations);
2. declare a brand-new padded-link scenario *as data* — a
   :class:`repro.api.ScenarioSpec` with a policy axis comparing the paper's
   CIT padding against its VIT countermeasure — exactly what a TOML file
   passed to ``repro run --scenario`` contains;
3. run it through the parallel sweep runner and read the result: empirical
   detection rates (KDE Bayes classifier on simulated captures) against the
   closed-form predictions of Theorems 1-3;
4. run a registered experiment (``fig4``) the same way, with a
   ``--set``-style override.

Run with ``python examples/quickstart.py`` (takes a few seconds).
"""

from __future__ import annotations

from repro.api import (
    ScenarioExperiment,
    ScenarioSpec,
    get_experiment,
    list_experiments,
    run_experiment,
)

SAMPLE_SIZE = 1000   # PIATs per classified sample (the paper's Figure 4 knee)
TRIALS = 20          # training samples and test samples per payload rate
SEED = 42


def main() -> None:
    print("Registered experiments:", ", ".join(list_experiments()))
    print()

    # --- a declarative scenario: CIT vs VIT on the same padded link --------
    # The same document, as TOML in a file, runs with:
    #   repro run --scenario quickstart.toml
    spec = ScenarioSpec.from_dict(
        {
            "name": "quickstart",
            "title": f"CIT vs VIT at sample size {SAMPLE_SIZE} (0.5 = random guessing)",
            "grid": {"policies": ["cit", "vit:1e-3"]},
            "run": {
                "mode": "simulation",
                "sample_sizes": [SAMPLE_SIZE],
                "trials": TRIALS,
                "seed": SEED,
            },
        }
    )
    print("Collecting padded traffic and mounting the attack (CIT and VIT)...")
    outcome = run_experiment(ScenarioExperiment(spec))
    print()
    print(outcome.to_text())
    ratios = outcome.result.variance_ratios
    print(
        "variance ratio r per policy: "
        + ", ".join(f"{key.split('/')[-1]} = {r:.6g}" for key, r in ratios.items())
    )
    print(
        "\nTakeaway: under CIT padding the dispersion features (variance, entropy)\n"
        "identify the hidden payload rate almost every time, while under VIT\n"
        "padding every feature is reduced to coin flipping — the paper's headline\n"
        "result."
    )

    # --- a registered experiment with an override --------------------------
    print("\nRegenerating Figure 4 from the registry (quick preset, fewer trials)...")
    experiment = get_experiment(
        "fig4", preset="quick", seed=SEED, overrides={"trials": 8}
    )
    figure = run_experiment(experiment, preset="quick", overrides={"trials": 8})
    print()
    print(figure.to_text())
    print("provenance:", figure.provenance())


if __name__ == "__main__":
    main()
