#!/usr/bin/env python
"""Laboratory study: CIT vs. VIT padding under controlled cross traffic.

Reproduces the laboratory half of the paper's evaluation end to end:

* the Figure 4 experiment (CIT, no cross traffic): PIAT statistics per
  payload rate plus detection rate vs. sample size;
* the Figure 5(a) sweep (VIT): detection rate vs. the timer standard
  deviation at a fixed sample size;
* the Figure 6 sweep (CIT behind a shared router): detection rate vs. the
  shared link's utilization.

Each experiment is resolved through the :mod:`repro.api` registry — the same
objects ``repro run fig4`` / ``fig5`` / ``fig6`` build — with ``--set``-style
overrides shrinking the grids to example size, and all three grids run
through one shared parallel sweep runner: pass ``--jobs 4`` to fan the cells
out over four worker processes and ``--cache-dir DIR`` to persist the
results, in which case a second invocation replays from the cache without
simulating anything.  Expect a couple of minutes of run time with the
default (event-simulation, single-process) settings; pass ``--fast`` to use
the analytic/hybrid fast paths instead.
"""

from __future__ import annotations

import argparse

from repro.api import get_experiment, run_experiment
from repro.runner import ResultsStore, SweepRunner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use the analytic/hybrid collection modes instead of full event simulation",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent grid cells (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist sweep results here; a second run replays from the cache",
    )
    args = parser.parse_args()

    store = ResultsStore(args.cache_dir) if args.cache_dir else None
    runner = SweepRunner(jobs=args.jobs, store=store, progress=print)

    lab_mode = "analytic" if args.fast else "simulation"
    fig6_mode = "hybrid" if args.fast else "simulation"

    print("=== Figure 4: CIT padding, tap at the sender gateway, no cross traffic ===")
    fig4 = run_experiment(
        get_experiment(
            "fig4",
            preset="paper",
            overrides={"trials": 15, "mode": lab_mode},
        ),
        runner=runner,
    ).result
    print(fig4.to_text())

    print("=== Figure 5(a): VIT padding, detection rate vs sigma_T ===")
    fig5 = run_experiment(
        get_experiment(
            "fig5",
            preset="paper",
            overrides={
                "sigma_t_values": (0.0, 3e-5, 1e-4, 3e-4, 1e-3),
                "sample_size": 1000,
                "trials": 10,
                "mode": lab_mode,
            },
        ),
        runner=runner,
    ).result
    print(fig5.to_text())

    print("=== Figure 6: CIT padding behind a shared router, cross-traffic sweep ===")
    fig6 = run_experiment(
        get_experiment(
            "fig6",
            preset="paper",
            overrides={
                "utilizations": (0.05, 0.1, 0.2, 0.3, 0.4),
                "sample_size": 500,
                "trials": 8,
                "mode": fig6_mode,
            },
        ),
        runner=runner,
    ).result
    print(fig6.to_text())

    print(runner.summary())
    print("Summary:")
    print(
        f"  CIT without cross traffic: variance/entropy reach "
        f"{fig4.empirical_detection_rate['variance'][1000]:.0%} / "
        f"{fig4.empirical_detection_rate['entropy'][1000]:.0%} at n=1000."
    )
    largest_sigma = max(s for s in fig5.empirical_detection_rate["variance"])
    print(
        f"  VIT with sigma_T={largest_sigma * 1e3:.1f} ms: variance detection falls to "
        f"{fig5.empirical_detection_rate['variance'][largest_sigma]:.0%}."
    )
    busiest = max(fig6.empirical_detection_rate["entropy"])
    print(
        f"  CIT behind a {busiest:.0%}-utilized router: entropy detection is still "
        f"{fig6.empirical_detection_rate['entropy'][busiest]:.0%}."
    )


if __name__ == "__main__":
    main()
