#!/usr/bin/env python
"""Extension: distinguishing more than two payload rates (Section 6).

The paper evaluates a two-rate system and notes that the attack extends to
multiple rates with more off-line training.  This example builds a four-rate
scenario (10 / 20 / 40 / 80 pps), trains the KDE Bayes classifier on padded
captures of each rate, and prints the confusion matrix and per-rate detection
rates under CIT and VIT padding.

The captures are produced by the event simulator (one sender gateway per
payload rate), so the payload-rate-dependent gateway jitter the attack relies
on is mechanistic, not assumed.
"""

from __future__ import annotations

import numpy as np

from repro.adversary import (
    Tap,
    VarianceFeature,
    empirical_detection_rate,
    train_classifier,
)
from repro.adversary.multiclass import random_guessing_rate
from repro.experiments import format_table
from repro.padding import InterruptDisturbance, PaddingPolicy, SenderGateway, cit_policy, vit_policy
from repro.sim import RandomStreams, Simulator
from repro.traffic import PoissonSource

RATES_PPS = (10.0, 20.0, 40.0, 80.0)
SAMPLE_SIZE = 1000
TRIALS = 12
SEED = 99


def capture(policy: PaddingPolicy, seed_offset: str) -> dict:
    """Simulate the padded link once per payload rate and return PIAT captures."""
    streams = RandomStreams(seed=SEED)
    captures = {}
    needed = SAMPLE_SIZE * TRIALS
    for rate in RATES_PPS:
        simulator = Simulator()
        tap = Tap(simulator)
        gateway = SenderGateway(
            simulator,
            policy.make_timer(),
            output=tap,
            rng=streams.get(f"gw-{seed_offset}-{rate}"),
            disturbance=InterruptDisturbance(),
        )
        source = PoissonSource(
            simulator,
            gateway.accept_payload,
            rate=rate,
            rng=streams.get(f"payload-{seed_offset}-{rate}"),
        )
        gateway.start()
        source.start()
        simulator.run(until=2.0 + (needed + 20) * policy.mean_interval)
        captures[f"{rate:.0f}pps"] = tap.intervals(since=2.0)[:needed]
    return captures


def evaluate(policy: PaddingPolicy) -> None:
    print(f"--- {policy.describe()} ---")
    feature = VarianceFeature()
    train = capture(policy, "train")
    test = capture(policy, "test")
    classifier = train_classifier(train, feature, SAMPLE_SIZE, max_samples_per_class=TRIALS)
    result = empirical_detection_rate(
        classifier, test, feature, SAMPLE_SIZE, max_samples_per_class=TRIALS
    )

    labels = sorted(result.confusion)
    rows = [
        (true, *[result.confusion[true][predicted] for predicted in labels])
        for true in labels
    ]
    print(format_table(["true \\ predicted"] + labels, rows))
    print()
    print(
        format_table(
            ["payload rate", "detection rate"],
            sorted(result.per_class_rates.items()),
        )
    )
    print(
        f"overall detection rate: {result.detection_rate:.2f} "
        f"(random guessing among {len(RATES_PPS)} rates: "
        f"{random_guessing_rate(len(RATES_PPS)):.2f})\n"
    )


def main() -> None:
    np.set_printoptions(precision=3)
    print(f"Four payload rates: {RATES_PPS} pps, sample size {SAMPLE_SIZE}\n")
    evaluate(cit_policy())
    evaluate(vit_policy(sigma_t=1e-3))
    print(
        "CIT padding leaks enough for the adversary to tell four rates apart far\n"
        "better than chance; VIT padding pushes the confusion matrix back toward\n"
        "uniform — the Section 6 extension behaves exactly like the two-rate case."
    )


if __name__ == "__main__":
    main()
