#!/usr/bin/env python
"""Design guidelines: configuring a link-padding system for a security budget.

The paper's goal is to give a manager the tools to "properly configure a
system in order to minimize the detection rate".  This example plays the
manager's role:

1. audit the default CIT configuration — how quickly does the attack succeed,
   and how does that change with the adversary's vantage point?
2. ask the analytical framework for the VIT setting that keeps the worst-case
   detection rate under a budget, for several assumptions about how much
   traffic the adversary can observe at a single payload rate;
3. show the bandwidth/latency price of padding, which is what the operator is
   trading against.

Everything here uses the closed-form framework (no simulation), so it runs in
well under a second — the point of having closed forms.
"""

from __future__ import annotations

from repro.core import (
    GaussianPIATModel,
    padding_bandwidth_overhead,
    recommend_policy,
    safe_observation_budget,
    sample_size_for_detection,
)
from repro.experiments import format_table
from repro.network.delay_models import path_piat_variance
from repro.padding import InterruptDisturbance, cit_policy, vit_policy
from repro.units import PAPER_HIGH_RATE_PPS, PAPER_LOW_RATE_PPS


def audit_cit() -> None:
    print("1. Auditing the common configuration (CIT, 10 ms timer)")
    print("   ----------------------------------------------------")
    disturbance = InterruptDisturbance()
    rows = []
    for label, hops, utilization in (
        ("tap at the sender gateway", 0, 0.0),
        ("behind 1 router at 20% load", 1, 0.2),
        ("behind 15 routers at 25% load", 15, 0.25),
    ):
        net_variance = (
            path_piat_variance([utilization] * hops, [512 * 8 / 80e6] * hops) if hops else 0.0
        )
        model = GaussianPIATModel.from_system(
            cit_policy(),
            disturbance,
            path_utilizations=[utilization] * hops,
            hop_service_time=512 * 8 / 80e6,
        )
        needed = sample_size_for_detection(0.9, model.variance_ratio, feature="entropy")
        rows.append((label, model.variance_ratio, needed, needed * 0.01))
        del net_variance
    print(
        format_table(
            ["adversary position", "r", "intervals for 90% detection", "seconds of traffic"],
            rows,
        )
    )
    print()


def recommend() -> None:
    print("2. Choosing a VIT configuration for a detection-rate budget of 60%")
    print("   ----------------------------------------------------------------")
    rows = []
    for observable in (100_000, 10_000_000, 1_000_000_000):
        guideline = recommend_policy(max_detection_rate=0.6, max_observable_sample=observable)
        rows.append(
            (
                f"{observable:.0e} intervals",
                guideline.policy.sigma_t * 1e3,
                guideline.worst_case_detection,
                guideline.attack_sample_for_99pct,
            )
        )
    print(
        format_table(
            [
                "adversary observation budget",
                "recommended sigma_T (ms)",
                "worst-case detection",
                "sample needed for 99%",
            ],
            rows,
        )
    )
    print()


def price() -> None:
    print("3. The price of padding")
    print("   ---------------------")
    policy = vit_policy(sigma_t=1e-3)
    rows = [
        (
            f"{rate:.0f} pps payload",
            padding_bandwidth_overhead(rate, policy.padded_rate_pps),
            safe_observation_budget(policy, max_detection_rate=0.6),
        )
        for rate in (PAPER_LOW_RATE_PPS, PAPER_HIGH_RATE_PPS)
    ]
    print(
        format_table(
            ["payload rate", "dummy fraction of padded stream", "safe observation budget (intervals)"],
            rows,
        )
    )
    print(
        "\nThe dummy overhead is the cost of rate camouflage; the safe observation\n"
        "budget is what it buys.  VIT padding with sigma_T = 1 ms keeps the padded\n"
        "rate (and therefore the overhead) identical to CIT while multiplying the\n"
        "adversary's required observation by several orders of magnitude."
    )


def main() -> None:
    audit_cit()
    recommend()
    price()


if __name__ == "__main__":
    main()
