"""Performance benchmark harness: timings as a first-class, regression-gated artifact.

``repro bench run`` measures the hot paths of the reproduction — the gateway
capture under both kernels, the raw event engine, and a representative sweep
cold and warm — and writes a machine-readable ``BENCH_<pr>.json``
(:class:`BenchResult`).  ``repro bench compare`` diffs two such files with
direction-aware tolerances so CI can fail on a >20% regression against the
baseline checked into the repository.

Three design rules keep the artifact honest across machines:

* **The headline speedups are measured within one run.**
  ``cold_capture_speedup`` divides the event-engine capture time by the
  vectorized-kernel time for the *same* capture (forced via the ``kernel``
  argument of :func:`repro.experiments.base.simulate_gateway_capture`), and
  ``sweep_warm_speedup`` divides a cold sweep by its warm re-run against the
  same store.  Ratios of timings taken seconds apart on one machine are
  meaningful on any machine; absolute seconds are not.
* **Metric names encode their direction.**  ``*_seconds`` regress upward,
  ``*_speedup`` / ``*_per_sec`` regress downward; :func:`metric_direction`
  refuses names that encode neither, so a typo cannot silently pass CI.
* **Results carry an analytic cross-check.**  The benchmark capture's
  measured variance ratio is compared against the scenario's closed-form
  model and pushed through :mod:`repro.core.exact` — a benchmark that got
  fast by computing the wrong thing fails loudly.

See ``docs/performance.md`` for the profiling recipe and how to read the
artifact.
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

#: Version of the ``BENCH_*.json`` schema; bump on incompatible layout changes.
BENCH_SCHEMA_VERSION = 1

#: Default tolerated relative regression before :func:`compare` fails (20%).
DEFAULT_MAX_REGRESSION = 0.2

#: Metrics that are ratios of same-run timings, hence machine-independent.
#: CI compares only these against the committed baseline; absolute timings
#: are recorded for trend lines but never gate a differently-sized runner.
RATIO_METRICS = ("cold_capture_speedup", "sweep_warm_speedup")


def metric_direction(name: str) -> str:
    """``'lower'`` or ``'higher'`` — which way the metric is better.

    Encoded in the name suffix so a new metric cannot enter the schema
    without declaring its direction.
    """
    if name.endswith("_seconds"):
        return "lower"
    if name.endswith("_speedup") or name.endswith("_per_sec"):
        return "higher"
    raise ConfigurationError(
        f"benchmark metric {name!r} must end in '_seconds' (lower is better) "
        "or '_speedup'/'_per_sec' (higher is better)"
    )


def collect_machine_info() -> Dict[str, Any]:
    """The environment fingerprint stored alongside every benchmark run.

    ``cpu_count`` is the machine's CPU count; ``cpu_count_available`` honours
    the scheduler affinity mask actually granted to this process (what
    ``--jobs auto`` sizes to) — on a pinned CI runner the two differ, which
    is exactly the context a throughput number needs.
    """
    import os

    from repro.runner.backends.base import available_cpu_count

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "cpu_count_available": available_cpu_count(),
    }


@dataclass(frozen=True)
class BenchResult:
    """One benchmark run: metrics plus enough context to interpret them."""

    pr: str
    created_utc: str
    machine: Dict[str, Any]
    metrics: Dict[str, float]
    notes: Dict[str, Any] = field(default_factory=dict)
    schema: int = BENCH_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.metrics:
            raise ConfigurationError("a benchmark result needs at least one metric")
        for name, value in self.metrics.items():
            metric_direction(name)  # validates the naming convention
            if not np.isfinite(value) or value < 0.0:
                raise ConfigurationError(
                    f"benchmark metric {name!r} must be finite and >= 0, got {value!r}"
                )

    # ------------------------------------------------------------------ (de)serialisation
    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "pr": self.pr,
            "created_utc": self.created_utc,
            "machine": dict(self.machine),
            "metrics": {name: float(value) for name, value in self.metrics.items()},
            "notes": dict(self.notes),
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "BenchResult":
        schema = payload.get("schema")
        if schema != BENCH_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported benchmark schema {schema!r}; this build reads "
                f"schema {BENCH_SCHEMA_VERSION}"
            )
        try:
            return cls(
                pr=str(payload["pr"]),
                created_utc=str(payload["created_utc"]),
                machine=dict(payload["machine"]),
                metrics={str(k): float(v) for k, v in payload["metrics"].items()},
                notes=dict(payload.get("notes", {})),
                schema=int(schema),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed benchmark payload: {exc}") from exc

    def save(self, path: Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: Path) -> "BenchResult":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read benchmark file {path}: {exc}") from exc
        return cls.from_json_dict(payload)

    # ------------------------------------------------------------------ rendering
    def to_text(self) -> str:
        lines = [f"benchmark {self.pr} ({self.created_utc})"]
        width = max(len(name) for name in self.metrics)
        for name in sorted(self.metrics):
            value = self.metrics[name]
            arrow = "↓" if metric_direction(name) == "lower" else "↑"
            lines.append(f"  {name.ljust(width)}  {value:>12.4f}  (better {arrow})")
        if self.notes:
            lines.append(f"  notes: {json.dumps(self.notes, sort_keys=True)}")
        return "\n".join(lines)


@dataclass(frozen=True)
class MetricComparison:
    """One metric's current-vs-baseline verdict."""

    name: str
    current: float
    baseline: float
    direction: str
    #: Relative change in the *bad* direction; negative values are improvements.
    regression: float
    regressed: bool


@dataclass(frozen=True)
class BenchComparison:
    """The full diff of two benchmark results."""

    rows: Tuple[MetricComparison, ...]
    #: Metric names present in only one of the two results (not compared).
    skipped: Tuple[str, ...]
    max_regression: float

    @property
    def ok(self) -> bool:
        return not any(row.regressed for row in self.rows)

    @property
    def regressions(self) -> Tuple[MetricComparison, ...]:
        return tuple(row for row in self.rows if row.regressed)

    def to_text(self) -> str:
        lines = [
            f"benchmark comparison (tolerance {self.max_regression:.0%} in the bad direction)"
        ]
        width = max((len(row.name) for row in self.rows), default=10)
        for row in sorted(self.rows, key=lambda r: r.name):
            verdict = "REGRESSED" if row.regressed else (
                "improved" if row.regression < -1e-9 else "ok"
            )
            lines.append(
                f"  {row.name.ljust(width)}  {row.baseline:>12.4f} -> {row.current:>12.4f}"
                f"  ({row.regression:+.1%} worse)  {verdict}"
            )
        for name in self.skipped:
            lines.append(f"  {name.ljust(width)}  present in only one result; skipped")
        lines.append("PASS" if self.ok else "FAIL: benchmark regression detected")
        return "\n".join(lines)


def compare(
    current: BenchResult,
    baseline: Optional[BenchResult],
    max_regression: float = DEFAULT_MAX_REGRESSION,
    metrics: Optional[Sequence[str]] = None,
) -> BenchComparison:
    """Direction-aware diff of ``current`` against ``baseline``.

    ``regression`` is the relative change in each metric's *bad* direction
    (time increase for ``*_seconds``, throughput/speedup decrease otherwise),
    so improvements come out negative and a single tolerance covers both
    families.  A missing baseline (first run on a branch) compares nothing
    and passes; metrics present on only one side are listed as skipped.
    A zero-valued baseline metric with a non-zero current value raises a
    :class:`~repro.exceptions.ConfigurationError` naming the metric — no
    relative tolerance is meaningful against zero.
    ``metrics`` restricts the comparison — CI passes :data:`RATIO_METRICS`
    so absolute seconds from a different machine never gate a build.
    """
    if max_regression < 0.0:
        raise ConfigurationError(f"max_regression must be >= 0, got {max_regression!r}")
    if baseline is None:
        return BenchComparison(rows=(), skipped=(), max_regression=max_regression)
    names = set(current.metrics) | set(baseline.metrics)
    if metrics is not None:
        unknown = set(metrics) - names
        if unknown:
            raise ConfigurationError(
                f"--metric {sorted(unknown)} not present in either result; "
                f"known metrics: {sorted(names)}"
            )
        names = set(metrics)
    rows: List[MetricComparison] = []
    skipped: List[str] = []
    for name in sorted(names):
        if name not in current.metrics or name not in baseline.metrics:
            skipped.append(name)
            continue
        cur, base = current.metrics[name], baseline.metrics[name]
        direction = metric_direction(name)
        if base == 0.0:
            # A zero baseline admits no relative change; silently mapping it
            # to ±100% would let a broken baseline artifact pass (or fail)
            # the CI gate for the wrong reason.  Identical zeros are a
            # legitimate no-change; anything else must name the metric.
            if cur == 0.0:
                regression = 0.0
            else:
                raise ConfigurationError(
                    f"benchmark metric {name!r} has a zero-valued baseline "
                    f"({base!r} vs current {cur!r}); a relative regression "
                    "against zero is undefined — re-record the baseline "
                    "artifact for this metric"
                )
        elif direction == "lower":
            regression = (cur - base) / base
        else:
            regression = (base - cur) / base
        rows.append(
            MetricComparison(
                name=name,
                current=cur,
                baseline=base,
                direction=direction,
                regression=regression,
                regressed=regression > max_regression,
            )
        )
    return BenchComparison(
        rows=tuple(rows), skipped=tuple(skipped), max_regression=max_regression
    )


# --------------------------------------------------------------------------- measurement
def _best_of(repeats: int, fn: Callable[[], Any]) -> Tuple[float, Any]:
    """Minimum wall-clock over ``repeats`` calls (the standard noise filter)."""
    best, result = float("inf"), None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def _time_capture(scenario, n_intervals: int, seed: int, kernel: str, repeats: int):
    from repro.experiments.base import simulate_gateway_capture
    from repro.sim.random import RandomStreams

    def one_run() -> Dict[str, np.ndarray]:
        streams = RandomStreams(seed)
        return {
            label: simulate_gateway_capture(
                scenario, rate, n_intervals, streams, label,
                with_network=False, kernel=kernel,
            )
            for label, rate in scenario.rate_labels.items()
        }

    return _best_of(repeats, one_run)


def _time_engine(n_events: int, repeats: int) -> float:
    """Raw engine throughput: heap insertion + dispatch of no-op events."""
    from repro.sim.engine import Simulator

    times = np.linspace(0.0, 1.0, n_events, endpoint=False) + 1e-6

    def one_run() -> None:
        simulator = Simulator()
        simulator.schedule_batch(times, lambda: None)
        simulator.run(until=2.0)

    elapsed, _ = _best_of(repeats, one_run)
    return elapsed


def _time_sweep(seed: int) -> Tuple[float, float, int]:
    """Cold + warm wall-clock of a representative sweep against a fresh store."""
    from repro.api import get_experiment
    from repro.runner.runner import SweepRunner
    from repro.runner.store import ResultsStore

    experiment = get_experiment("fig6", "quick", seed)
    cells = experiment.cells()
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        store = ResultsStore(Path(tmp))
        cold_start = time.perf_counter()
        SweepRunner(store=store).run(cells)
        cold = time.perf_counter() - cold_start
        warm_start = time.perf_counter()
        report = SweepRunner(store=store).run(cells)
        warm = time.perf_counter() - warm_start
        if report.misses:
            raise ConfigurationError(
                f"warm sweep re-simulated {report.misses} cells; the store is "
                "not resolving fingerprints (cache regression)"
            )
    return cold, warm, len(cells)


def _dispatch_grid(seed: int, count: int = 8) -> List:
    """A trivial analytic grid where dispatch cost dominates simulation cost."""
    from repro.experiments.base import ScenarioConfig
    from repro.runner.cells import SweepCell

    return [
        SweepCell(
            key=f"bench/dispatch/{i}",
            scenario=ScenarioConfig(),
            sample_sizes=(50,),
            trials=4,
            mode="analytic",
            seed=seed + i,
        )
        for i in range(count)
    ]


def _time_backends(seed: int, repeats: int) -> Tuple[float, float, int]:
    """Serial vs process wall-clock on the dispatch grid.

    The cells are near-free analytically, so the difference is almost purely
    the process backend's pool startup + pickle cost — the overhead the
    serial backend exists to avoid on warm and small sweeps.
    """
    from repro.runner.runner import SweepRunner

    cells = _dispatch_grid(seed)
    serial_seconds, _ = _best_of(
        repeats, lambda: SweepRunner(backend="serial").run(cells)
    )
    process_seconds, _ = _best_of(
        repeats, lambda: SweepRunner(jobs=2, backend="process").run(cells)
    )
    return serial_seconds, process_seconds, len(cells)


def _time_queue(seed: int, workers: int = 2) -> Tuple[float, int]:
    """Cold wall-clock of the dispatch grid through the queue backend.

    Spawns ``workers`` local queue workers against a throwaway store —
    enqueue, claim, execute, shard-append and parent merge all included, so
    the resulting cells-per-second is the end-to-end queue protocol
    throughput, not just the simulation speed.
    """
    from repro.runner.runner import SweepRunner
    from repro.runner.store import ResultsStore

    cells = _dispatch_grid(seed)
    with tempfile.TemporaryDirectory(prefix="repro-bench-queue-") as tmp:
        store = ResultsStore(Path(tmp))
        start = time.perf_counter()
        SweepRunner(jobs=workers, store=store, backend="queue").run(cells)
        elapsed = time.perf_counter() - start
    return elapsed, len(cells)


def _time_population(seed: int, n_flows: int, repeats: int) -> float:
    """Population-structure throughput: graph growth, placement, grid compile.

    Times the full deterministic pipeline a population experiment runs
    before any cell executes — generate the AS topology, place ``n_flows``
    senders, compile the per-AS grid — so the metric catches regressions in
    the generator and placement paths, which scale with the population, not
    with capture cost.
    """
    from repro.experiments.base import ScenarioConfig
    from repro.population import (
        ASGraphSpec,
        RateClass,
        assemble_population,
        generate_as_topology,
        hybrid_population_grid,
    )

    mix = (
        RateClass(rate_pps=2.0, weight=0.5),
        RateClass(rate_pps=5.0, weight=0.3),
        RateClass(rate_pps=10.0, weight=0.2),
    )

    def one_run():
        topology = generate_as_topology(ASGraphSpec(n_as=12, seed=seed))
        population = assemble_population(topology, n_flows, mix, seed)
        return hybrid_population_grid(
            population, ScenarioConfig(), sample_sizes=(100,), trials=4
        )

    elapsed, _ = _best_of(repeats, one_run)
    return elapsed


def run_bench(
    pr: str,
    *,
    seed: int = 2003,
    capture_intervals: int = 4000,
    engine_events: int = 50_000,
    repeats: int = 3,
) -> BenchResult:
    """Measure the hot paths and return the benchmark artifact.

    The capture benchmark runs the same two-class gateway capture under the
    forced ``event`` and ``vectorized`` kernels from identical seeds, checks
    the outputs are byte-identical (the kernel contract), and cross-checks
    the measured variance ratio against the closed forms in
    :mod:`repro.core.exact`.
    """
    from repro.core.exact import detection_rate_variance_exact
    from repro.experiments.base import ScenarioConfig

    scenario = ScenarioConfig()
    event_seconds, event_captures = _time_capture(
        scenario, capture_intervals, seed, "event", repeats
    )
    vectorized_seconds, vectorized_captures = _time_capture(
        scenario, capture_intervals, seed, "vectorized", repeats
    )
    identical = all(
        np.array_equal(event_captures[label], vectorized_captures[label])
        for label in event_captures
    )
    if not identical:
        raise ConfigurationError(
            "event and vectorized kernels produced different captures; the "
            "benchmark refuses to report a speedup for a broken kernel"
        )

    engine_seconds = _time_engine(engine_events, repeats)
    sweep_cold, sweep_warm, n_cells = _time_sweep(seed)
    serial_seconds, process_seconds, dispatch_cells = _time_backends(seed, repeats)
    queue_seconds, queue_cells = _time_queue(seed)
    population_flows = 2000
    population_seconds = _time_population(seed, population_flows, repeats)

    low = float(np.var(vectorized_captures["low"], ddof=1))
    high = float(np.var(vectorized_captures["high"], ddof=1))
    measured_r = high / low
    model_r = scenario.variance_ratio()

    metrics = {
        "capture_event_seconds": event_seconds,
        "capture_vectorized_seconds": vectorized_seconds,
        "cold_capture_speedup": event_seconds / vectorized_seconds,
        "kernel_intervals_per_sec": 2 * capture_intervals / vectorized_seconds,
        "engine_events_per_sec": engine_events / engine_seconds,
        "sweep_cold_seconds": sweep_cold,
        "sweep_warm_seconds": sweep_warm,
        "sweep_warm_speedup": sweep_cold / sweep_warm,
        "sweep_cells_per_sec": n_cells / sweep_cold,
        "serial_dispatch_seconds": serial_seconds,
        "process_dispatch_seconds": process_seconds,
        # How much the pool costs over running inline; clamped because a
        # loaded machine can (rarely) time the pool faster than the clamp
        # floor and the artifact schema requires metrics >= 0.
        "dispatch_overhead_seconds": max(0.0, process_seconds - serial_seconds),
        "queue_cells_per_sec": queue_cells / queue_seconds,
        "population_flows_per_sec": population_flows / population_seconds,
    }
    notes = {
        "capture_intervals": capture_intervals,
        "engine_events": engine_events,
        "repeats": repeats,
        "seed": seed,
        "sweep": "fig6 --preset quick",
        "sweep_cells": n_cells,
        "dispatch_cells": dispatch_cells,
        "queue_workers": 2,
        "queue_seconds": queue_seconds,
        "population_flows": population_flows,
        "population_seconds": population_seconds,
        "captures_identical": identical,
        "analytic_crosscheck": {
            "measured_variance_ratio": measured_r,
            "model_variance_ratio": model_r,
            "exact_detection_rate_at_1000": detection_rate_variance_exact(
                measured_r, 1000
            ),
        },
    }
    return BenchResult(
        pr=pr,
        created_utc=datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        machine=collect_machine_info(),
        metrics=metrics,
        notes=notes,
    )


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_MAX_REGRESSION",
    "RATIO_METRICS",
    "BenchComparison",
    "BenchResult",
    "MetricComparison",
    "collect_machine_info",
    "compare",
    "metric_direction",
    "run_bench",
]
