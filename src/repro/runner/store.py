"""Persistent sweep results: a sharded, append-only JSON-lines store.

Layout: one JSON-lines file per fingerprint, sharded by the first two hex
characters of the fingerprint under the store's root directory::

    <root>/
    ├── ab/
    │   ├── abcd0…e1.jsonl     # every record ever written for this fingerprint
    │   └── ab9f3…77.jsonl
    ├── c0/
    │   └── c04d1…38.jsonl
    └── results.jsonl          # optional legacy flat file (read-only)

Each line is a self-contained record::

    {"schema": 1, "kind": "cell", "fingerprint": "<sha256>", "config": {...}, "result": {...}}

``fingerprint`` is the content hash of the cell (or capture) configuration
(:meth:`repro.runner.cells.SweepCell.fingerprint`); ``config`` is the full
configuration dict kept alongside for auditability (a record can be traced
back to its scenario without the code that produced it); ``result`` is the
:meth:`repro.runner.cells.CellResult.to_json_dict` (or
:meth:`repro.runner.capture.CaptureResult.to_json_dict`) payload; ``kind``
distinguishes ordinary sweep cells from shared gateway captures (absent on
legacy records, which are all cells).

Sharding keeps lookups O(1) file reads — a warm sweep never loads the whole
store — and keeps any one directory small enough for ordinary tooling once
stores grow to many thousands of records.  Stores written by older versions
as a single flat ``results.jsonl`` remain transparently readable: shard files
take precedence, the flat file is the fallback.  :meth:`compact` migrates the
flat file into shards and drops superseded duplicate records.

The format is deliberately boring: appends are a single ``write`` call, a
half-written last line (from a killed run) is skipped on load, duplicate
fingerprints resolve to the *last* record, and the files diff/merge cleanly
enough to commit a small fixture store for CI warm-cache runs.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.runner.cells import SCHEMA_VERSION

#: Fingerprints become file names; restrict them to boring hash-like tokens.
_FINGERPRINT_RE = re.compile(r"[0-9a-zA-Z]{3,128}")


@dataclass(frozen=True)
class StoreStats:
    """Health snapshot of a results store (``repro cache stats``).

    ``records`` counts winning records (one per fingerprint); ``cells`` /
    ``captures`` split them by record kind.  ``superseded`` counts lines
    shadowed by a newer record for the same fingerprint — the waste a
    compaction targets, though :meth:`ResultsStore.compact` deliberately
    leaves files it cannot fully interpret (foreign-schema or truncated
    lines) untouched, so the counter can stay non-zero after compacting.
    ``legacy_records`` counts the lines still living in a pre-sharding flat
    ``results.jsonl``.  ``schema_versions`` lists every ``schema`` value
    present, including versions this code cannot read — a store carrying
    foreign versions after an upgrade/rollback is worth noticing in
    nightly-sweep logs.
    """

    records: int
    cells: int
    captures: int
    shard_files: int
    legacy_records: int
    superseded: int
    total_bytes: int
    #: Every distinct ``schema`` value found, foreign types included (a
    #: record written by another tool may carry a string or float version).
    schema_versions: Tuple[Any, ...]

    def __str__(self) -> str:
        versions = ", ".join(str(v) for v in self.schema_versions) or "(empty store)"
        return (
            f"{self.records} records ({self.cells} cells, {self.captures} captures), "
            f"{self.shard_files} shard files, {self.legacy_records} legacy records, "
            f"{self.superseded} superseded duplicates, {self.total_bytes} bytes, "
            f"schema versions: {versions}"
        )


@dataclass(frozen=True)
class CompactionStats:
    """Outcome of :meth:`ResultsStore.compact`."""

    records_kept: int
    superseded_dropped: int
    legacy_migrated: int

    def __str__(self) -> str:
        return (
            f"{self.records_kept} records kept, "
            f"{self.superseded_dropped} superseded duplicates dropped, "
            f"{self.legacy_migrated} legacy records migrated into shards"
        )


class ResultsStore:
    """A directory-backed cache of cell results, keyed by config fingerprint."""

    LEGACY_FILENAME = "results.jsonl"

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)
        if self._root.exists() and not self._root.is_dir():
            raise ConfigurationError(
                f"results store root {str(self._root)!r} exists and is not a directory"
            )
        self._index: Dict[str, Dict[str, Any]] = {}
        self._legacy_index: Dict[str, Dict[str, Any]] = {}
        self._legacy_loaded = False

    # ----------------------------------------------------------------- layout
    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    @property
    def legacy_path(self) -> Path:
        """The flat JSON-lines file written by pre-sharding versions."""
        return self._root / self.LEGACY_FILENAME

    def shard_path(self, fingerprint: str) -> Path:
        """The shard file holding every record for ``fingerprint``."""
        self._check_fingerprint(fingerprint)
        return self._root / fingerprint[:2] / f"{fingerprint}.jsonl"

    @staticmethod
    def _check_fingerprint(fingerprint: str) -> None:
        if not isinstance(fingerprint, str) or not _FINGERPRINT_RE.fullmatch(fingerprint):
            raise ConfigurationError(
                f"fingerprint {fingerprint!r} is not a hash-like token"
            )

    # ------------------------------------------------------------------ index
    @staticmethod
    def read_records(path: Path) -> List[Dict[str, Any]]:
        """Every valid record in ``path``, in file order.

        Blank lines, truncated final lines (killed writers), records with a
        foreign schema version and records missing a string ``fingerprint``
        or dict ``result`` are skipped; complete records before them are
        still usable.  This is the one parsing contract shared by lookups,
        compaction and the sqlite index (:mod:`repro.store.index`).
        """
        records: List[Dict[str, Any]] = []
        if not path.exists():
            return records
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (
                isinstance(record, dict)
                and record.get("schema") == SCHEMA_VERSION
                and isinstance(record.get("fingerprint"), str)
                and isinstance(record.get("result"), dict)
            ):
                records.append(record)
        return records

    def _load_legacy(self) -> None:
        if self._legacy_loaded:
            return
        self._legacy_loaded = True
        for record in self.read_records(self.legacy_path):
            self._legacy_index[record["fingerprint"]] = record

    def get(self, fingerprint: str, kind: str = "cell") -> Optional[Dict[str, Any]]:
        """The record for ``fingerprint``, or ``None`` on a cache miss.

        Shard files take precedence over the legacy flat file; within a file
        the last record wins.  ``kind`` filters out records of the other
        record family (legacy records carry no ``kind`` and count as cells).

        The kind filter applies *after* precedence is resolved: when a shard
        holds a winning record of the wrong ``kind``, the lookup returns
        ``None`` without falling back to an older same-kind record — in the
        shard or in the legacy flat file.  This is deliberate last-record-
        wins semantics: the newest record for a fingerprint is the truth
        about it, and a kind mismatch means the caller is asking for a
        record family that fingerprint no longer is (pinned by tests in
        ``tests/runner/test_store.py``).
        """
        record = self._index.get(fingerprint)
        if record is None:
            try:
                shard = self.shard_path(fingerprint)
            except ConfigurationError:
                shard = None
            if shard is not None and shard.exists():
                # read_records() guarantees a string fingerprint, but a
                # doctored or foreign-tool shard line should degrade to a
                # skip, never to a KeyError on an unrelated lookup.
                records = [
                    r for r in self.read_records(shard) if r.get("fingerprint") == fingerprint
                ]
                if records:
                    record = records[-1]
                    self._index[fingerprint] = record
        if record is None:
            self._load_legacy()
            record = self._legacy_index.get(fingerprint)
        if record is None or record.get("kind", "cell") != kind:
            return None
        return record

    def put(
        self,
        fingerprint: str,
        config: Dict[str, Any],
        result: Dict[str, Any],
        kind: str = "cell",
    ) -> None:
        """Append one record to its shard file and index it."""
        record = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "fingerprint": fingerprint,
            "config": config,
            "result": result,
        }
        path = self.shard_path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._index[fingerprint] = record

    # ------------------------------------------------------------- compaction
    def _shard_files(self) -> List[Path]:
        if not self._root.is_dir():
            return []
        return sorted(
            path
            for path in self._root.glob("??/*.jsonl")
            if path.is_file()
        )

    def shard_files(self) -> List[Path]:
        """Every shard file in the store, in sorted (deterministic) order.

        Public for maintenance tooling — compaction, ``repro cache stats``
        and the sqlite index (:mod:`repro.store.index`) all walk the same
        listing.
        """
        return self._shard_files()

    @staticmethod
    def _count_data_lines(path: Path) -> int:
        return sum(1 for line in path.read_text(encoding="utf-8").splitlines() if line.strip())

    def compact(self) -> CompactionStats:
        """Drop superseded duplicates and fold the legacy flat file into shards.

        Every shard file is rewritten to its last (winning) record, legacy
        records without a shard are migrated into one, and the legacy flat
        file is removed.  The store's observable contents are unchanged —
        and so are records this code version cannot interpret: a file
        containing foreign-schema or partial lines (e.g. a store restored
        from a cache written by a different ``SCHEMA_VERSION``) is left
        exactly as it is, so a rollback still finds its data.
        """
        superseded = 0
        kept = 0
        for path in self._shard_files():
            records = self.read_records(path)
            if len(records) != self._count_data_lines(path):
                # Foreign-schema or truncated lines present: not ours to drop.
                kept += len({record["fingerprint"] for record in records})
                continue
            if not records:
                path.unlink()
                continue
            last_by_fingerprint: Dict[str, Dict[str, Any]] = {}
            for record in records:
                last_by_fingerprint[record["fingerprint"]] = record
            superseded += len(records) - len(last_by_fingerprint)
            kept += len(last_by_fingerprint)
            if len(records) != len(last_by_fingerprint):
                lines = [
                    json.dumps(record, sort_keys=True)
                    for record in last_by_fingerprint.values()
                ]
                # Rewrite atomically: a crash mid-compaction must never turn a
                # cached fingerprint into a miss (the store's crash-tolerance
                # contract covers compaction too).
                scratch = path.with_suffix(".jsonl.tmp")
                scratch.write_text("\n".join(lines) + "\n", encoding="utf-8")
                os.replace(scratch, path)

        migrated = 0
        if self.legacy_path.exists():
            legacy_records = self.read_records(self.legacy_path)
            foreign_lines = self._count_data_lines(self.legacy_path) - len(legacy_records)
            last_by_fingerprint = {}
            for record in legacy_records:
                last_by_fingerprint[record["fingerprint"]] = record
            superseded += len(legacy_records) - len(last_by_fingerprint)
            unmigratable = 0
            for fingerprint, record in last_by_fingerprint.items():
                try:
                    self._check_fingerprint(fingerprint)
                except ConfigurationError:
                    unmigratable += 1  # not a shardable token; keep the flat file
                    continue
                if self.shard_path(fingerprint).exists():
                    superseded += 1  # a shard record supersedes the legacy one
                    continue
                self.put(
                    fingerprint,
                    record.get("config", {}),
                    record["result"],
                    kind=record.get("kind", "cell"),
                )
                migrated += 1
                kept += 1
            if unmigratable == 0 and foreign_lines == 0:
                self.legacy_path.unlink()
                self._legacy_index.clear()
                self._legacy_loaded = True
        return CompactionStats(
            records_kept=kept, superseded_dropped=superseded, legacy_migrated=migrated
        )

    # ------------------------------------------------------------------ stats
    @staticmethod
    def _raw_records(path: Path) -> List[Dict[str, Any]]:
        """Every parseable JSON record in ``path``, regardless of schema.

        Unlike :meth:`read_records` this keeps foreign-schema records, so
        :meth:`stats` can report versions this code cannot serve.
        """
        records: List[Dict[str, Any]] = []
        if not path.exists():
            return records
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and isinstance(record.get("fingerprint"), str):
                records.append(record)
        return records

    def stats(self) -> StoreStats:
        """Aggregate store-health counters (see :class:`StoreStats`).

        Reads every file once; intended for maintenance commands and
        nightly-sweep logs, not the warm-sweep hot path.
        """
        shard_files = self._shard_files()
        winners: Dict[str, Dict[str, Any]] = {}
        superseded = 0
        total_bytes = 0
        schema_versions: set = set()
        for path in shard_files:
            total_bytes += path.stat().st_size
            records = self._raw_records(path)
            last: Dict[str, Dict[str, Any]] = {}
            for record in records:
                schema_versions.add(record.get("schema"))
                last[record["fingerprint"]] = record
            superseded += len(records) - len(last)
            winners.update(last)
        legacy_records = 0
        if self.legacy_path.exists():
            total_bytes += self.legacy_path.stat().st_size
            records = self._raw_records(self.legacy_path)
            legacy_records = len(records)
            last = {}
            for record in records:
                schema_versions.add(record.get("schema"))
                last[record["fingerprint"]] = record
            superseded += len(records) - len(last)
            for fingerprint, record in last.items():
                if fingerprint in winners:
                    superseded += 1  # the shard record shadows the legacy one
                else:
                    winners[fingerprint] = record
        cells = sum(1 for r in winners.values() if r.get("kind", "cell") == "cell")
        captures = sum(1 for r in winners.values() if r.get("kind") == "capture")
        return StoreStats(
            records=len(winners),
            cells=cells,
            captures=captures,
            shard_files=len(shard_files),
            legacy_records=legacy_records,
            superseded=superseded,
            total_bytes=total_bytes,
            schema_versions=tuple(
                sorted((v for v in schema_versions if v is not None), key=str)
            ),
        )

    # -------------------------------------------------------------- protocols
    def fingerprints(self) -> Iterator[str]:
        """All cached fingerprints (shards in path order, then legacy-only).

        Each shard is parsed at most once per store instance (the winning
        record is cached in the in-memory index), so repeated listings of a
        large store cost one directory scan plus dictionary lookups.
        """
        seen: List[str] = []
        seen_set = set()
        for path in self._shard_files():
            fingerprint = path.stem
            if fingerprint in seen_set:
                continue
            record = self._index.get(fingerprint)
            if record is None:
                records = [
                    r for r in self.read_records(path) if r.get("fingerprint") == fingerprint
                ]
                if records:
                    record = records[-1]
                    self._index[fingerprint] = record
            if record is not None:
                seen.append(fingerprint)
                seen_set.add(fingerprint)
        self._load_legacy()
        for fingerprint in self._legacy_index:
            if fingerprint in seen_set:
                continue
            try:
                shadowed = self.shard_path(fingerprint).exists()
            except ConfigurationError:
                # Not a shardable token (hand-edited/foreign record); it can
                # only live in the flat file, which compact() also preserves.
                shadowed = False
            if not shadowed:
                seen.append(fingerprint)
                seen_set.add(fingerprint)
        return iter(seen)

    def __contains__(self, fingerprint: str) -> bool:
        return (
            self.get(fingerprint, kind="cell") is not None
            or self.get(fingerprint, kind="capture") is not None
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.fingerprints())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ResultsStore(root={str(self._root)!r}, records={len(self)})"


__all__ = ["CompactionStats", "ResultsStore", "StoreStats"]
