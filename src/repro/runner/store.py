"""Persistent sweep results: an append-only JSON-lines store.

Layout: one ``results.jsonl`` file under the store's root directory.  Each
line is a self-contained record::

    {"schema": 1, "fingerprint": "<sha256>", "config": {...}, "result": {...}}

``fingerprint`` is the content hash of the cell configuration
(:meth:`repro.runner.cells.SweepCell.fingerprint`); ``config`` is the full
configuration dict kept alongside for auditability (a record can be traced
back to its scenario without the code that produced it); ``result`` is the
:meth:`repro.runner.cells.CellResult.to_json_dict` payload.

The format is deliberately boring: appends are a single ``write`` call, a
half-written last line (from a killed run) is skipped on load, duplicate
fingerprints resolve to the *last* record, and the file diffs/merges cleanly
enough to commit a small fixture store for CI warm-cache runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.exceptions import ConfigurationError
from repro.runner.cells import SCHEMA_VERSION


class ResultsStore:
    """A directory-backed cache of cell results, keyed by config fingerprint."""

    FILENAME = "results.jsonl"

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)
        if self._root.exists() and not self._root.is_dir():
            raise ConfigurationError(
                f"results store root {str(self._root)!r} exists and is not a directory"
            )
        self._index: Dict[str, Dict[str, Any]] = {}
        self._loaded = False

    # ----------------------------------------------------------------- layout
    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    @property
    def path(self) -> Path:
        """The JSON-lines file holding every record."""
        return self._root / self.FILENAME

    # ------------------------------------------------------------------ index
    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if not self.path.exists():
            return
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A crashed writer can leave a truncated final line; every
                # complete record before it is still usable.
                continue
            if (
                isinstance(record, dict)
                and record.get("schema") == SCHEMA_VERSION
                and isinstance(record.get("fingerprint"), str)
                and isinstance(record.get("result"), dict)
            ):
                self._index[record["fingerprint"]] = record

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The record for ``fingerprint``, or ``None`` on a cache miss."""
        self._load()
        return self._index.get(fingerprint)

    def put(
        self,
        fingerprint: str,
        config: Dict[str, Any],
        result: Dict[str, Any],
    ) -> None:
        """Append one record and index it."""
        self._load()
        record = {
            "schema": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "config": config,
            "result": result,
        }
        self._root.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._index[fingerprint] = record

    # -------------------------------------------------------------- protocols
    def fingerprints(self) -> Iterator[str]:
        """All cached fingerprints (insertion order of the file)."""
        self._load()
        return iter(self._index)

    def __contains__(self, fingerprint: str) -> bool:
        self._load()
        return fingerprint in self._index

    def __len__(self) -> int:
        self._load()
        return len(self._index)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ResultsStore(root={str(self._root)!r}, records={len(self)})"


__all__ = ["ResultsStore"]
