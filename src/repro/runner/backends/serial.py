"""The serial backend: every task runs inline in the parent process.

No pool, no pickling, no worker startup — for warm sweeps and small grids
the dominant cost of the process backend is forking and tearing down its
pool, which since the vectorized capture kernel (PR 6) routinely exceeds the
simulation time itself.  The serial loop is also the reference
implementation for the bit-identical-at-any-backend guarantee: one task at a
time, in submission order, with the same bounded-retry semantics as every
other backend.

A per-attempt ``timeout`` cannot be enforced in-process (a stuck cell cannot
be reclaimed from inside its own interpreter), so the runner rejects
``--timeout`` with this backend and points at ``process``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List

from repro.runner.backends.base import (
    ExecutionBackend,
    ProgressFn,
    Task,
    TaskFailure,
    TaskOutcome,
    execute_task,
    validate_retries,
)


class SerialBackend(ExecutionBackend):
    """In-process execution with bounded retries, one task at a time."""

    name = "serial"

    def __init__(self, retries: int = 0, progress: ProgressFn = None) -> None:
        self.retries = validate_retries(retries)
        self._progress = progress

    def execute(self, tasks: List[Task]) -> Iterator[TaskOutcome]:
        if not tasks:
            return
        attempts = {i: 1 for i in range(len(tasks))}
        queue: deque = deque(enumerate(tasks))
        max_attempts = self.retries + 1
        while queue:
            index, task = queue.popleft()
            outcome = execute_task(task)
            if isinstance(outcome, TaskFailure) and attempts[index] < max_attempts:
                attempts[index] += 1
                self._report(
                    f"{outcome.unit} {outcome.key}: failed, retrying "
                    f"(attempt {attempts[index]}/{max_attempts})"
                )
                queue.append((index, task))
                continue
            yield outcome


__all__ = ["SerialBackend"]
