"""Rebuilding sweep cells and capture specs from their stored config dicts.

The queue backend ships work between processes (and potentially hosts) as
JSON: the same ``config`` payload that
:meth:`~repro.runner.cells.SweepCell.config_dict` fingerprints and the
results store records.  A pull-based worker holds none of the Python objects
the parent built, so this module inverts ``config_dict`` — policy,
disturbance, scenario, capture spec, cell — and *proves* the inversion by
re-deriving the fingerprint: a config this build cannot faithfully rebuild
is refused, never silently executed with different parameters.

The display ``name`` of a policy and the ``key`` of a cell are excluded from
fingerprints by design, so reconstruction synthesises fresh labels without
affecting the hash.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.exceptions import ConfigurationError
from repro.experiments.base import ScenarioConfig
from repro.padding.disturbance import InterruptDisturbance
from repro.padding.policies import PaddingPolicy, cit_policy, vit_policy
from repro.runner.capture import CaptureSpec
from repro.runner.cells import SweepCell
from repro.runner.fingerprint import fingerprint_payload


def verify_fingerprint(key: str, config: Dict[str, Any], fingerprint: str) -> str:
    """Check a claimed fingerprint against the recomputed config hash.

    Returns the (verified) fingerprint; raises a
    :class:`~repro.exceptions.ConfigurationError` naming the mismatch
    otherwise.  Every entry point that accepts a ``(fingerprint, config)``
    pair from outside the process — ``POST /enqueue`` payloads, pending-file
    lines, queued cells — goes through this check, so a tampered or stale
    fingerprint can never alias a record onto the wrong cache key.
    """
    recomputed = fingerprint_payload(config)
    if fingerprint != recomputed:
        raise ConfigurationError(
            f"cell {key!r}: claimed fingerprint {fingerprint!r} does not match "
            f"its config (recomputed {recomputed!r}); refusing the payload"
        )
    return recomputed


def policy_from_config(payload: Dict[str, Any]) -> PaddingPolicy:
    """A :class:`PaddingPolicy` from its ``config_dict`` form (name-less)."""
    data = dict(payload)
    data.pop("name", None)  # display label, excluded from fingerprints
    kind = data.get("kind")
    if kind == "CIT":
        return cit_policy(data["mean_interval"])
    if kind == "VIT":
        return vit_policy(
            data["sigma_t"], data["mean_interval"], data.get("family", "normal")
        )
    raise ConfigurationError(f"policy config kind={kind!r} must be 'CIT' or 'VIT'")


def disturbance_from_config(payload: Dict[str, Any]) -> InterruptDisturbance:
    """An :class:`InterruptDisturbance` from its ``asdict`` form."""
    try:
        return InterruptDisturbance(**payload)
    except TypeError as exc:
        raise ConfigurationError(f"malformed disturbance config: {exc}") from None


def scenario_from_config(payload: Dict[str, Any]) -> ScenarioConfig:
    """A :class:`ScenarioConfig` from its (possibly gateway-only) dict form.

    Capture specs serialise only the gateway-affecting scenario subset
    (:data:`~repro.runner.capture.GATEWAY_SCENARIO_FIELDS`); the remaining
    fields take their dataclass defaults, which is sound because the gateway
    simulation never reads them.
    """
    data = dict(payload)
    try:
        policy = policy_from_config(data.pop("policy"))
        disturbance = disturbance_from_config(data.pop("disturbance"))
    except KeyError as exc:
        raise ConfigurationError(f"scenario config is missing {exc}") from None
    try:
        return ScenarioConfig(policy=policy, disturbance=disturbance, **data)
    except TypeError as exc:
        raise ConfigurationError(f"malformed scenario config: {exc}") from None


def capture_from_config(key: str, config: Dict[str, Any]) -> CaptureSpec:
    """A :class:`CaptureSpec` from its ``config_dict`` form, fingerprint-verified."""
    if not isinstance(config, dict):
        raise ConfigurationError(f"capture {key!r}: config must be an object")
    if config.get("kind") != "gateway-capture":
        raise ConfigurationError(
            f"capture {key!r}: config kind={config.get('kind')!r} is not "
            f"'gateway-capture'"
        )
    _check_schema("capture", key, config)
    try:
        spec = CaptureSpec(
            key=key,
            scenario=scenario_from_config(config["scenario"]),
            n_intervals=config["n_intervals"],
            seed=config["seed"],
            seed_offsets=tuple(config["seed_offsets"]),
        )
    except KeyError as exc:
        raise ConfigurationError(f"capture {key!r}: config is missing {exc}") from None
    _check_roundtrip("gateway capture", key, spec.config_dict(), config)
    return spec


def cell_from_config(key: str, config: Dict[str, Any]) -> SweepCell:
    """A :class:`SweepCell` from its ``config_dict`` form, fingerprint-verified.

    The optional fields (``capture``, ``noise_offsets``, ``kde_bandwidth``,
    ...) are reconstructed only when present, mirroring how ``config_dict``
    serialises them only when set — which is what keeps the round-trip
    fingerprint-exact for stores written before those fields existed.
    """
    if not isinstance(config, dict):
        raise ConfigurationError(f"cell {key!r}: config must be an object")
    _check_schema("cell", key, config)
    capture: Optional[CaptureSpec] = None
    if "capture" in config:
        capture = capture_from_config(f"{key}/capture", config["capture"])
    try:
        cell = SweepCell(
            key=key,
            scenario=scenario_from_config(config["scenario"]),
            sample_sizes=tuple(config["sample_sizes"]),
            trials=config["trials"],
            mode=config["mode"],
            seed=config["seed"],
            features=tuple(config["features"]),
            entropy_bin_width=config.get("entropy_bin_width"),
            seed_offsets=tuple(config["seed_offsets"]),
            collect_piat_stats=config.get("collect_piat_stats", False),
            capture=capture,
            noise_offsets=(
                tuple(config["noise_offsets"]) if "noise_offsets" in config else None
            ),
            kde_bandwidth=config.get("kde_bandwidth"),
            rate_classes=(
                tuple(config["rate_classes"]) if "rate_classes" in config else None
            ),
        )
    except KeyError as exc:
        raise ConfigurationError(f"cell {key!r}: config is missing {exc}") from None
    except TypeError as exc:
        raise ConfigurationError(f"cell {key!r}: malformed config: {exc}") from None
    _check_roundtrip("cell", key, cell.config_dict(), config)
    return cell


def _check_schema(unit: str, key: str, config: Dict[str, Any]) -> None:
    from repro.runner.cells import SCHEMA_VERSION

    schema = config.get("schema")
    if schema != SCHEMA_VERSION:
        raise ConfigurationError(
            f"{unit} {key!r}: config schema {schema!r} is not the schema "
            f"{SCHEMA_VERSION} this build executes"
        )


def _check_roundtrip(
    unit: str, key: str, rebuilt: Dict[str, Any], given: Dict[str, Any]
) -> None:
    """The reconstructed object must hash to exactly the given config."""
    rebuilt_fp = fingerprint_payload(rebuilt)
    given_fp = fingerprint_payload(given)
    if rebuilt_fp != given_fp:
        raise ConfigurationError(
            f"{unit} {key!r}: config does not round-trip through reconstruction "
            f"(given {given_fp}, rebuilt {rebuilt_fp}); this build cannot "
            f"faithfully execute it"
        )


__all__ = [
    "capture_from_config",
    "cell_from_config",
    "disturbance_from_config",
    "policy_from_config",
    "scenario_from_config",
    "verify_fingerprint",
]
