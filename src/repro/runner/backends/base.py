"""The execution-backend contract shared by every sweep execution strategy.

:class:`~repro.runner.runner.SweepRunner` owns *what* to run — cache
partitioning, capture resolution, accounting, the single-writer store — and
delegates *how* to run it to an :class:`ExecutionBackend`.  A backend receives
a list of tasks (cells or gateway captures) and yields exactly one terminal
outcome per task: the computed :class:`~repro.runner.cells.CellResult` /
:class:`~repro.runner.capture.CaptureResult`, or a :class:`TaskFailure`
marker naming the task that kept failing.  Outcomes may arrive in any order;
the runner re-orders results by cell key, which is what makes every backend
byte-identical at any worker count.

Three backends ship with the package:

* ``serial`` (:mod:`repro.runner.backends.serial`) — in-process, zero
  pool/pickle overhead; the fast path for warm sweeps and small grids.
* ``process`` (:mod:`repro.runner.backends.process`) — the historical
  :mod:`multiprocessing` pool with per-attempt timeouts, bounded retries and
  pool recycling.
* ``queue`` (:mod:`repro.runner.backends.queue`) — a filesystem work queue at
  the store root, drained by pull-based ``repro worker`` processes on any
  host sharing the store (see ``docs/distributed.md``).
"""

from __future__ import annotations

import os
import traceback
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, ClassVar, Dict, Iterator, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.runner.capture import CaptureResult, CaptureSpec
from repro.runner.cells import CellResult, SweepCell

#: A schedulable unit of work: a cell (with its optional injected capture
#: result) or a gateway capture.  Plain tuples keep pool payloads boring
#: and picklable.
Task = Union[
    Tuple[str, SweepCell, Optional[CaptureResult]],  # ("cell", cell, capture)
    Tuple[str, CaptureSpec],  # ("capture", spec)
]

#: Resolved capture results shared with ``fork``-started workers by
#: copy-on-write inheritance.  A capture payload is a few hundred KB of
#: gateway intervals; embedding it in every child task would re-pickle it
#: once per ``apply_async`` call (24× per network for fig8), so on fork
#: platforms the task carries ``None`` and the worker looks the result up
#: here.  Populated by :meth:`~repro.runner.runner.SweepRunner.run` before
#: any pool is created and cleared when the run finishes.  ``spawn`` workers
#: do not inherit parent globals, so there the capture stays embedded in the
#: task.
FORKED_CAPTURES: Dict[str, CaptureResult] = {}


@dataclass(frozen=True)
class TaskFailure:
    """Picklable failure marker returned by a worker instead of raising.

    Raising inside a pool would surface the exception without the cell
    identity (and an unpicklable exception would deadlock the pool), so
    workers catch everything and let the parent raise a
    :class:`~repro.exceptions.SweepError`.
    """

    key: str
    error: str
    worker_traceback: str
    unit: str = "cell"


#: What a backend yields, one per task.
TaskOutcome = Union[CellResult, CaptureResult, TaskFailure]


def task_key(task: Task) -> str:
    """The display key of a task's cell or capture spec."""
    return task[1].key


def task_unit(task: Task) -> str:
    """Human-readable unit name for progress and failure lines."""
    return "gateway capture" if task[0] == "capture" else "cell"


def execute_task(task: Task) -> TaskOutcome:
    """Run one task, converting any exception to a :class:`TaskFailure`.

    The entry point every backend funnels work through — pool workers,
    queue workers and the in-process serial loop alike.  ``run_cell`` and
    ``run_capture`` are resolved through :mod:`repro.runner.runner` at call
    time (not import time) so a patched ``repro.runner.runner.run_cell``
    — the seam the fault-injection tests use — is honoured by every
    backend, including fork-started workers that inherit the patch.
    """
    import repro.runner.runner as _runner

    kind = task[0]
    try:
        if kind == "capture":
            return _runner.run_capture(task[1])
        cell, capture = task[1], task[2]
        if capture is None and cell.capture is not None:
            capture = FORKED_CAPTURES.get(cell.capture.fingerprint())
        return _runner.run_cell(cell, capture=capture)
    except Exception as exc:
        return TaskFailure(
            key=task_key(task),
            error=f"{type(exc).__name__}: {exc}",
            worker_traceback=traceback.format_exc(),
            unit=task_unit(task),
        )


def available_cpu_count() -> int:
    """CPUs actually available to this process, honouring affinity masks.

    ``os.cpu_count()`` reports the machine's CPUs regardless of how few the
    scheduler lets this process use — in a containerised CI runner pinned to
    one core it happily claims 16, and a ``--jobs auto`` sized from it would
    oversubscribe the pool.  Prefer ``os.process_cpu_count()`` (Python
    3.13+), then the Linux affinity mask, then fall back to the raw count.
    """
    probe = getattr(os, "process_cpu_count", None)
    if probe is not None:
        count = probe()
        if count:
            return int(count)
    if hasattr(os, "sched_getaffinity"):
        try:
            affinity = os.sched_getaffinity(0)
        except OSError:  # pragma: no cover - affinity query denied
            affinity = None
        if affinity:
            return len(affinity)
    return os.cpu_count() or 1


def resolve_jobs(jobs: Union[int, str]) -> int:
    """Normalise a ``--jobs`` value: ``"auto"`` means the available CPUs."""
    if jobs == "auto":
        return available_cpu_count()
    try:
        return int(jobs)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"jobs={jobs!r} must be a positive integer or 'auto'"
        ) from None


class ExecutionBackend(ABC):
    """How a list of sweep tasks gets executed.

    The contract:

    * :meth:`execute` yields exactly one terminal outcome per task, in any
      order.  A task that keeps failing yields a :class:`TaskFailure` rather
      than raising, so the caller can name the cell in its error.
    * Task execution goes through :func:`execute_task`: cells and captures
      are pure functions of their configuration, so *where* they run never
      changes the numbers — the determinism contract every backend inherits.
    * Backends never write the results store; the parent process is the
      single writer.
    """

    #: CLI name of the backend (``--backend <name>``).
    name: ClassVar[str] = "abstract"

    @abstractmethod
    def execute(self, tasks: List[Task]) -> Iterator[TaskOutcome]:
        """Run every task, yielding one terminal outcome per task."""

    # Shared retry bookkeeping -------------------------------------------------
    def _report(self, line: str) -> None:
        progress = getattr(self, "_progress", None)
        if progress is not None:
            progress(line)


def validate_retries(retries: int) -> int:
    if retries < 0:
        raise ConfigurationError(f"retries={retries!r} must be >= 0")
    return retries


ProgressFn = Optional[Callable[[str], None]]

__all__ = [
    "FORKED_CAPTURES",
    "ExecutionBackend",
    "ProgressFn",
    "Task",
    "TaskFailure",
    "TaskOutcome",
    "available_cpu_count",
    "execute_task",
    "resolve_jobs",
    "task_key",
    "task_unit",
    "validate_retries",
]
