"""Pluggable sweep execution backends.

One contract (:class:`~repro.runner.backends.base.ExecutionBackend`), three
strategies: ``serial`` (in-process fast path), ``process`` (the historical
multiprocessing pool with timeouts and recycling) and ``queue`` (a
filesystem work queue drained by pull-based workers — see
``docs/distributed.md``).  :func:`create_backend` is the single factory the
runner and CLI go through.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ConfigurationError
from repro.runner.backends.base import (
    FORKED_CAPTURES,
    ExecutionBackend,
    ProgressFn,
    Task,
    TaskFailure,
    TaskOutcome,
    available_cpu_count,
    execute_task,
    resolve_jobs,
    task_key,
    task_unit,
)
from repro.runner.backends.process import ProcessBackend, default_mp_context
from repro.runner.backends.queue import (
    DrainReport,
    QueueBackend,
    WorkQueue,
    default_worker_id,
    drain_pending,
    run_worker,
)
from repro.runner.backends.serial import SerialBackend
from repro.runner.store import ResultsStore

#: The ``--backend`` vocabulary, in documentation order.
BACKEND_NAMES = ("serial", "process", "queue")


def create_backend(
    name: str,
    jobs: int = 1,
    store: Optional[ResultsStore] = None,
    mp_context: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    progress: ProgressFn = None,
    **options: object,
) -> ExecutionBackend:
    """Build the named backend from the runner's configuration.

    Extra keyword ``options`` are forwarded to backends that understand them
    (the queue backend's ``lease_timeout`` / ``poll_interval`` /
    ``wait_timeout`` / ``spawn_workers``); naming an option the selected
    backend does not take is a configuration error.
    """
    if name == "serial":
        if timeout is not None:
            raise ConfigurationError(
                f"timeout={timeout!r} cannot be enforced by the serial backend "
                f"(a stuck cell cannot be reclaimed in-process); use "
                f"--backend process"
            )
        _reject_options("serial", options)
        return SerialBackend(retries=retries, progress=progress)
    if name == "process":
        _reject_options("process", options)
        return ProcessBackend(
            jobs=jobs,
            mp_context=mp_context,
            timeout=timeout,
            retries=retries,
            progress=progress,
        )
    if name == "queue":
        if timeout is not None:
            raise ConfigurationError(
                f"timeout={timeout!r} is not supported by the queue backend; "
                f"stuck workers are handled by lease expiry (lease_timeout) "
                f"instead"
            )
        try:
            return QueueBackend(
                store,
                workers=jobs,
                retries=retries,
                progress=progress,
                mp_context=mp_context,
                **options,  # type: ignore[arg-type]
            )
        except TypeError as exc:
            raise ConfigurationError(f"queue backend: {exc}") from None
    raise ConfigurationError(
        f"backend={name!r} must be one of {', '.join(BACKEND_NAMES)}"
    )


def _reject_options(name: str, options: dict) -> None:
    if options:
        raise ConfigurationError(
            f"the {name} backend does not take option(s) "
            f"{', '.join(sorted(options))}"
        )


__all__ = [
    "BACKEND_NAMES",
    "DrainReport",
    "ExecutionBackend",
    "FORKED_CAPTURES",
    "ProcessBackend",
    "ProgressFn",
    "QueueBackend",
    "SerialBackend",
    "Task",
    "TaskFailure",
    "TaskOutcome",
    "WorkQueue",
    "available_cpu_count",
    "create_backend",
    "default_mp_context",
    "default_worker_id",
    "drain_pending",
    "execute_task",
    "resolve_jobs",
    "run_worker",
    "task_key",
    "task_unit",
]
