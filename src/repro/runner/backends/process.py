"""The process backend: a multiprocessing pool with timeouts and recycling.

This is the historical ``SweepRunner`` fan-out, moved verbatim onto the
:class:`~repro.runner.backends.base.ExecutionBackend` contract so its
behaviour stays pinned by the existing runner tests:

* at most ``jobs`` tasks in flight, submitted via ``apply_async`` so a
  per-attempt clock starts the moment a task is handed to a worker;
* a task still running past ``timeout`` is charged an attempt; because a
  stuck worker cannot be reclaimed cooperatively, the whole pool is
  recycled — innocent in-flight tasks are requeued *at no retry cost* and
  restart in a fresh pool;
* a failing task retries up to ``retries`` extra times before its
  :class:`~repro.runner.backends.base.TaskFailure` is yielded.

When there is nothing to parallelise and no timeout to enforce (``jobs == 1``
or a single task), the backend runs the serial loop instead of paying for a
one-worker pool — the same inline path the runner always took.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.runner.backends.base import (
    ExecutionBackend,
    ProgressFn,
    Task,
    TaskFailure,
    TaskOutcome,
    execute_task,
    task_key,
    task_unit,
    validate_retries,
)
from repro.runner.backends.serial import SerialBackend


def default_mp_context() -> str:
    """The trusted multiprocessing start method for this platform.

    ``fork`` is only trusted on Linux; macOS lists it as available but
    forking a parent with initialized BLAS/ObjC state is unsafe (CPython
    itself switched the macOS default to spawn in 3.8).
    """
    return "fork" if sys.platform == "linux" else "spawn"


class ProcessBackend(ExecutionBackend):
    """Pool-based execution with per-attempt timeouts and pool recycling."""

    name = "process"

    #: Seconds between polls of outstanding pool results.
    _POLL_INTERVAL = 0.02

    def __init__(
        self,
        jobs: int = 1,
        mp_context: Optional[str] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        progress: ProgressFn = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs={jobs!r} must be >= 1")
        if timeout is not None and not timeout > 0.0:
            raise ConfigurationError(f"timeout={timeout!r} must be positive seconds")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = validate_retries(retries)
        self._mp_context = mp_context if mp_context is not None else default_mp_context()
        self._progress = progress

    def execute(self, tasks: List[Task]) -> Iterator[TaskOutcome]:
        if not tasks:
            return
        use_pool = self.timeout is not None or (self.jobs > 1 and len(tasks) > 1)
        if not use_pool:
            # Nothing to parallelise and no timeout to enforce: the serial
            # loop is behaviourally identical and skips the pool startup.
            yield from SerialBackend(
                retries=self.retries, progress=self._progress
            ).execute(tasks)
            return

        attempts: Dict[int, int] = {i: 1 for i in range(len(tasks))}
        queue: deque = deque(enumerate(tasks))
        max_attempts = self.retries + 1
        context = multiprocessing.get_context(self._mp_context)
        while queue:
            workers = min(self.jobs, len(queue))
            pool = context.Pool(processes=workers)
            recycle_pool = False
            try:
                in_flight: Dict[int, Tuple] = {}  # index -> (async result, started, task)
                while queue or in_flight:
                    while queue and len(in_flight) < workers:
                        index, task = queue.popleft()
                        in_flight[index] = (
                            pool.apply_async(execute_task, (task,)),
                            time.monotonic(),
                            task,
                        )
                    progressed = False
                    for index in [i for i, (a, _, _) in in_flight.items() if a.ready()]:
                        async_result, _, task = in_flight.pop(index)
                        outcome = async_result.get()
                        progressed = True
                        if (
                            isinstance(outcome, TaskFailure)
                            and attempts[index] < max_attempts
                        ):
                            attempts[index] += 1
                            self._report(
                                f"{outcome.unit} {outcome.key}: failed, retrying "
                                f"(attempt {attempts[index]}/{max_attempts})"
                            )
                            queue.append((index, task))
                        else:
                            yield outcome
                    if self.timeout is not None:
                        now = time.monotonic()
                        expired = [
                            i
                            for i, (a, started, _) in in_flight.items()
                            if now - started > self.timeout
                        ]
                        if expired:
                            # The stuck workers cannot be reclaimed: recycle
                            # the whole pool.  Expired tasks are charged an
                            # attempt; innocent in-flight tasks are requeued
                            # free and restart in the fresh pool.
                            for index in expired:
                                _, _, task = in_flight.pop(index)
                                unit = task_unit(task)
                                if attempts[index] < max_attempts:
                                    attempts[index] += 1
                                    self._report(
                                        f"{unit} {task_key(task)}: timed out after "
                                        f"{self.timeout:g}s, retrying "
                                        f"(attempt {attempts[index]}/{max_attempts})"
                                    )
                                    queue.append((index, task))
                                else:
                                    yield TaskFailure(
                                        key=task_key(task),
                                        error=(
                                            f"timed out after {self.timeout:g}s "
                                            f"({max_attempts} attempt(s))"
                                        ),
                                        worker_traceback="(worker terminated on timeout)",
                                        unit=unit,
                                    )
                            for index, (_, _, task) in in_flight.items():
                                queue.append((index, task))
                            in_flight.clear()
                            recycle_pool = True
                            break
                    if not progressed and in_flight:
                        time.sleep(self._POLL_INTERVAL)
                if not recycle_pool:
                    return
            finally:
                pool.terminate()
                pool.join()


__all__ = ["ProcessBackend", "default_mp_context"]
