"""The queue backend: a filesystem work queue drained by pull-based workers.

Everything lives under ``<store root>/queue/`` — any process that can see
the results store (including workers on other hosts sharing the filesystem)
can participate::

    <store root>/queue/
    ├── queued/<fingerprint>.json            # unclaimed work, content-addressed
    ├── leased/<fingerprint>.<worker>.json   # claimed work, one file per lease
    ├── results/<worker>.jsonl               # per-worker result shards
    ├── workers/<worker>.heartbeat           # liveness beacons (mtime = last beat)
    ├── tmp/                                 # staging for atomic enqueues
    └── clock                                # shared filesystem clock probe

The protocol rests on one primitive: ``os.rename`` is atomic on POSIX
filesystems, so *claiming* a cell is renaming ``queued/<fp>.json`` to
``leased/<fp>.<worker>.json`` — exactly one renamer wins, the losers get
``FileNotFoundError`` and move on.  Workers touch their heartbeat file while
they run; a lease whose owner's heartbeat is older than the lease timeout is
presumed dead and its cell is *stolen* (renamed to the thief's own lease) by
any live worker, or requeued by the parent.  Time comparisons use the
``clock`` probe file's mtime — the filesystem's own clock, consistent across
every host mounting the store — never local wall-clock time.

Workers append outcomes to their private result shard (single writer per
file, so appends never interleave), and only the parent process merges
shards into the shared :class:`~repro.runner.store.ResultsStore` — the
store's single-writer contract is preserved end to end.  Results are
content-addressed, and cells are pure functions of their config, so the one
benign race — two workers computing the same cell after a steal of a
not-actually-dead worker — produces identical records and last-record-wins
semantics make it invisible.

See ``docs/distributed.md`` for the full protocol walk-through.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import re
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError, SweepError
from repro.runner.backends.base import (
    ExecutionBackend,
    ProgressFn,
    Task,
    TaskFailure,
    TaskOutcome,
    execute_task,
    validate_retries,
)
from repro.runner.backends.codec import (
    capture_from_config,
    cell_from_config,
    verify_fingerprint,
)
from repro.runner.backends.process import default_mp_context
from repro.runner.capture import CaptureResult, CaptureSpec
from repro.runner.cells import CellResult, SweepCell
from repro.runner.store import ResultsStore

#: Version of the queue entry / result-shard record layout.
QUEUE_SCHEMA_VERSION = 1

#: Directory name of the queue, under the results-store root.
QUEUE_DIRNAME = "queue"

#: Seconds of heartbeat silence after which a worker is presumed dead and
#: its leases become stealable.
DEFAULT_LEASE_TIMEOUT = 30.0

#: Seconds idle workers (and the merging parent) sleep between scans.
DEFAULT_POLL_INTERVAL = 0.05

#: Fingerprints become file names; accept only boring hash-like tokens.
_FINGERPRINT_RE = re.compile(r"[0-9a-zA-Z]{3,128}")

_WORKER_ID_BAD_CHARS = re.compile(r"[^A-Za-z0-9_.-]+")


def default_worker_id() -> str:
    """``<host>-<pid>``: unique per process, stable for its lifetime.

    Deliberately not a random token — worker ids name heartbeat files and
    leases that humans debug, and the determinism rules (RNG003) ban
    ``uuid4``-style identifiers anyway.
    """
    node = _WORKER_ID_BAD_CHARS.sub("-", platform.node() or "host").strip("-")
    return f"{node or 'host'}-{os.getpid()}"


def entry_from_task(task: Task, attempt: int = 1) -> Dict[str, Any]:
    """The JSON queue entry for one task (cell or capture)."""
    if task[0] == "capture":
        spec = task[1]
        return {
            "schema": QUEUE_SCHEMA_VERSION,
            "unit": "capture",
            "key": spec.key,
            "fingerprint": spec.fingerprint(),
            "config": spec.config_dict(),
            "attempt": attempt,
        }
    cell = task[1]
    return {
        "schema": QUEUE_SCHEMA_VERSION,
        "unit": "cell",
        "key": cell.key,
        "fingerprint": cell.fingerprint(),
        "config": cell.config_dict(),
        "attempt": attempt,
    }


class WorkQueue:
    """Filesystem primitives of the queue protocol (no policy, no loops)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root) / QUEUE_DIRNAME
        self.queued_dir = self.root / "queued"
        self.leased_dir = self.root / "leased"
        self.results_dir = self.root / "results"
        self.workers_dir = self.root / "workers"
        self.tmp_dir = self.root / "tmp"
        self.clock_path = self.root / "clock"

    def ensure(self) -> None:
        for directory in (
            self.queued_dir,
            self.leased_dir,
            self.results_dir,
            self.workers_dir,
            self.tmp_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # ----------------------------------------------------------------- clock
    def now(self) -> float:
        """The shared filesystem clock: touch the probe, read its mtime.

        Heartbeat freshness must be judged by the *same* clock the heartbeat
        was written with; on a shared filesystem that is the filesystem's
        clock, not any single host's wall clock (which the determinism rules
        ban from this codebase regardless).
        """
        self.ensure()
        self.clock_path.touch()
        return self.clock_path.stat().st_mtime

    # --------------------------------------------------------------- enqueue
    def enqueue(self, entry: Dict[str, Any]) -> bool:
        """Stage and atomically publish one entry; False if already active."""
        fingerprint = str(entry.get("fingerprint", ""))
        if _FINGERPRINT_RE.fullmatch(fingerprint) is None:
            raise ConfigurationError(
                f"queue entry fingerprint {fingerprint!r} is not a safe "
                f"hash-like token"
            )
        self.ensure()
        if self.is_active(fingerprint):
            return False
        staging = self.tmp_dir / f"{fingerprint}.{os.getpid()}.json"
        staging.write_text(json.dumps(entry, sort_keys=True) + "\n", encoding="utf-8")
        os.replace(staging, self.queued_dir / f"{fingerprint}.json")
        return True

    def is_active(self, fingerprint: str) -> bool:
        """Whether the fingerprint is currently queued or leased."""
        if (self.queued_dir / f"{fingerprint}.json").exists():
            return True
        if not self.leased_dir.is_dir():
            return False
        return any(self.leased_dir.glob(f"{fingerprint}.*.json"))

    def discard_queued(self, fingerprint: str) -> None:
        """Drop a queued entry whose result arrived by another route."""
        try:
            (self.queued_dir / f"{fingerprint}.json").unlink()
        except FileNotFoundError:
            pass

    # ----------------------------------------------------------------- leases
    def claim(self, worker_id: str) -> Optional[Path]:
        """Atomically claim the first queued entry; None when queue is empty."""
        self.ensure()
        for path in sorted(self.queued_dir.glob("*.json")):
            target = self.leased_dir / f"{path.stem}.{worker_id}.json"
            try:
                os.replace(path, target)
            except FileNotFoundError:
                continue  # lost the rename race to another worker
            return target
        return None

    def steal(self, worker_id: str, lease_timeout: float) -> Optional[Path]:
        """Take over one lease whose owner's heartbeat has gone stale."""
        if not self.leased_dir.is_dir():
            return None
        now = self.now()
        for path in sorted(self.leased_dir.glob("*.json")):
            fingerprint, owner = self._parse_lease(path)
            if owner is None or owner == worker_id:
                continue
            if self.heartbeat_fresh(owner, lease_timeout, now=now):
                continue
            target = self.leased_dir / f"{fingerprint}.{worker_id}.json"
            try:
                os.replace(path, target)
            except FileNotFoundError:
                continue
            return target
        return None

    def release(self, lease_path: Path) -> None:
        """Put a leased entry back in the queue (e.g. its capture isn't ready)."""
        fingerprint, _ = self._parse_lease(lease_path)
        if fingerprint is None:
            return
        try:
            os.replace(lease_path, self.queued_dir / f"{fingerprint}.json")
        except FileNotFoundError:
            pass  # stolen from under us; the thief owns it now

    def requeue_stale(self, lease_timeout: float) -> int:
        """Requeue every lease held by a stale worker; returns the count."""
        if not self.leased_dir.is_dir():
            return 0
        now = self.now()
        requeued = 0
        for path in sorted(self.leased_dir.glob("*.json")):
            fingerprint, owner = self._parse_lease(path)
            if owner is None or self.heartbeat_fresh(owner, lease_timeout, now=now):
                continue
            try:
                os.replace(path, self.queued_dir / f"{fingerprint}.json")
            except FileNotFoundError:
                continue
            requeued += 1
        return requeued

    @staticmethod
    def _parse_lease(path: Path) -> Tuple[Optional[str], Optional[str]]:
        name = path.name
        if not name.endswith(".json"):
            return None, None
        stem = name[: -len(".json")]
        fingerprint, sep, owner = stem.partition(".")
        if not sep or not fingerprint or not owner:
            return None, None
        return fingerprint, owner

    # ------------------------------------------------------------- heartbeats
    def heartbeat(self, worker_id: str) -> None:
        self.ensure()
        (self.workers_dir / f"{worker_id}.heartbeat").touch()

    def remove_heartbeat(self, worker_id: str) -> None:
        try:
            (self.workers_dir / f"{worker_id}.heartbeat").unlink()
        except FileNotFoundError:
            pass

    def heartbeat_fresh(
        self, worker_id: str, lease_timeout: float, now: Optional[float] = None
    ) -> bool:
        path = self.workers_dir / f"{worker_id}.heartbeat"
        try:
            beat = path.stat().st_mtime
        except FileNotFoundError:
            return False
        if now is None:
            now = self.now()
        return now - beat <= lease_timeout

    # ---------------------------------------------------------- result shards
    def append_result(self, worker_id: str, record: Dict[str, Any]) -> None:
        """Append one record to the worker's private shard (single writer)."""
        self.ensure()
        line = json.dumps(record, sort_keys=True) + "\n"
        with (self.results_dir / f"{worker_id}.jsonl").open(
            "a", encoding="utf-8"
        ) as handle:
            handle.write(line)

    def read_new_records(self, offsets: Dict[str, int]) -> Iterator[Dict[str, Any]]:
        """Yield shard records not seen before, advancing ``offsets`` in place.

        Only complete (newline-terminated) lines are consumed — a worker may
        be mid-append — and unparsable lines are skipped but still advance
        the offset, so one corrupt record cannot wedge the merge loop.
        """
        if not self.results_dir.is_dir():
            return
        for shard in sorted(self.results_dir.glob("*.jsonl")):
            try:
                text = shard.read_text(encoding="utf-8")
            except OSError:  # pragma: no cover - shard vanished mid-scan
                continue
            end = text.rfind("\n")
            if end < 0:
                continue
            lines = text[: end + 1].splitlines()
            for index in range(offsets.get(shard.name, 0), len(lines)):
                offsets[shard.name] = index + 1
                line = lines[index].strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record

    # ----------------------------------------------------------------- status
    def status(self, lease_timeout: float = DEFAULT_LEASE_TIMEOUT) -> Dict[str, int]:
        """Counters for ``repro queue status``."""
        queued = len(sorted(self.queued_dir.glob("*.json"))) if self.queued_dir.is_dir() else 0
        leases = sorted(self.leased_dir.glob("*.json")) if self.leased_dir.is_dir() else []
        shards = sorted(self.results_dir.glob("*.jsonl")) if self.results_dir.is_dir() else []
        beats = sorted(self.workers_dir.glob("*.heartbeat")) if self.workers_dir.is_dir() else []
        now = self.now() if (leases or beats) else 0.0
        stale_leases = 0
        for path in leases:
            _, owner = self._parse_lease(path)
            if owner is None or not self.heartbeat_fresh(owner, lease_timeout, now=now):
                stale_leases += 1
        live_workers = sum(
            1 for path in beats if now - path.stat().st_mtime <= lease_timeout
        )
        records = 0
        for shard in shards:
            try:
                records += shard.read_text(encoding="utf-8").count("\n")
            except OSError:  # pragma: no cover - shard vanished mid-scan
                continue
        return {
            "queued": queued,
            "leased": len(leases),
            "stale_leases": stale_leases,
            "workers_live": live_workers,
            "workers_total": len(beats),
            "result_shards": len(shards),
            "result_records": records,
        }


# ------------------------------------------------------------------- workers
class _Heartbeat:
    """A daemon thread touching the worker's heartbeat file while it runs."""

    def __init__(self, queue: WorkQueue, worker_id: str, interval: float) -> None:
        self._queue = queue
        self._worker_id = worker_id
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        # Beat once before any claim: a lease must never exist without a
        # heartbeat, or a sibling would steal it the moment it appears.
        self._queue.heartbeat(self._worker_id)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._queue.heartbeat(self._worker_id)

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._queue.remove_heartbeat(self._worker_id)


def _execute_entry(store: ResultsStore, entry: Dict[str, Any]) -> Tuple[Any, ...]:
    """Rebuild and run one queue entry.

    Returns ``("ok", outcome)``, ``("failed", error, worker_traceback)`` or
    ``("wait",)`` when a child cell's gateway capture has not reached the
    store yet (the entry is released back to the queue).
    """
    try:
        if entry.get("unit") == "capture":
            spec = capture_from_config(entry["key"], entry["config"])
            task: Task = ("capture", spec)
        else:
            cell = cell_from_config(entry["key"], entry["config"])
            capture_result = None
            if cell.capture is not None:
                capture_fp = cell.capture.fingerprint()
                record = store.get(capture_fp, kind="capture")
                if record is None:
                    return ("wait",)
                capture_result = CaptureResult.from_json_dict(
                    cell.capture.key, capture_fp, record["result"]
                )
            task = ("cell", cell, capture_result)
    except Exception as exc:
        return ("failed", f"{type(exc).__name__}: {exc}", traceback.format_exc())
    outcome = execute_task(task)
    if isinstance(outcome, TaskFailure):
        return ("failed", outcome.error, outcome.worker_traceback)
    return ("ok", outcome)


def run_worker(
    store_root: Union[str, Path],
    worker_id: Optional[str] = None,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    max_idle: Optional[float] = None,
    max_tasks: Optional[int] = None,
    progress: ProgressFn = None,
) -> int:
    """The pull-based worker loop behind ``repro worker``.

    Claims queued entries (stealing from stale siblings when the queue is
    empty), executes them, and appends outcomes to this worker's private
    result shard.  Runs until stopped — or until ``max_idle`` seconds pass
    without work, or ``max_tasks`` entries have been executed.  Returns the
    number of executed entries.
    """
    if poll_interval <= 0.0:
        raise ConfigurationError(f"poll_interval={poll_interval!r} must be positive")
    if lease_timeout <= 0.0:
        raise ConfigurationError(f"lease_timeout={lease_timeout!r} must be positive")
    store = ResultsStore(store_root)
    queue = WorkQueue(store.root)
    queue.ensure()
    wid = _WORKER_ID_BAD_CHARS.sub("-", worker_id or default_worker_id()).strip("-")
    if not wid:
        raise ConfigurationError(f"worker_id={worker_id!r} has no usable characters")

    executed = 0
    beat_interval = max(poll_interval, lease_timeout / 4.0)
    with _Heartbeat(queue, wid, interval=beat_interval):
        idle_since = time.monotonic()
        while max_tasks is None or executed < max_tasks:
            lease = queue.claim(wid)
            if lease is None:
                lease = queue.steal(wid, lease_timeout)
            if lease is None:
                if max_idle is not None and time.monotonic() - idle_since >= max_idle:
                    break
                time.sleep(poll_interval)
                continue
            if _work_one_lease(store, queue, wid, lease, progress):
                executed += 1
                idle_since = time.monotonic()
            else:
                # The entry was released (capture not ready) or was corrupt;
                # don't spin on it.
                time.sleep(poll_interval)
    if progress is not None:
        progress(f"worker {wid}: executed {executed} task(s)")
    return executed


def _work_one_lease(
    store: ResultsStore,
    queue: WorkQueue,
    worker_id: str,
    lease: Path,
    progress: ProgressFn,
) -> bool:
    """Execute one leased entry end to end; True if a record was written."""
    try:
        entry = json.loads(lease.read_text(encoding="utf-8"))
        if not isinstance(entry, dict):
            raise ValueError("queue entry is not an object")
    except (OSError, ValueError):
        # Stolen from under us, or corrupt beyond attribution: drop it.
        lease.unlink(missing_ok=True)
        return False
    result = _execute_entry(store, entry)
    if result[0] == "wait":
        queue.release(lease)
        if progress is not None:
            progress(
                f"worker {worker_id}: cell {entry.get('key')} waits for its "
                f"gateway capture; requeued"
            )
        return False
    record = {
        "schema": QUEUE_SCHEMA_VERSION,
        "unit": entry.get("unit", "cell"),
        "key": entry.get("key"),
        "fingerprint": entry.get("fingerprint"),
        "attempt": entry.get("attempt", 1),
    }
    if result[0] == "ok":
        outcome = result[1]
        record["status"] = "ok"
        record["result"] = outcome.to_json_dict()
        if progress is not None:
            progress(
                f"worker {worker_id}: {entry.get('unit', 'cell')} "
                f"{entry.get('key')} done in {outcome.elapsed_seconds:.2f}s"
            )
    else:
        record["status"] = "failed"
        record["error"] = result[1]
        record["worker_traceback"] = result[2]
        if progress is not None:
            progress(
                f"worker {worker_id}: {entry.get('unit', 'cell')} "
                f"{entry.get('key')} failed: {result[1]}"
            )
    queue.append_result(worker_id, record)
    lease.unlink(missing_ok=True)
    return True


class LocalWorkerPool:
    """Worker processes the parent spawns and reaps around one drain."""

    def __init__(
        self,
        store_root: Union[str, Path],
        count: int,
        mp_context: Optional[str] = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    ) -> None:
        context = multiprocessing.get_context(
            mp_context if mp_context is not None else default_mp_context()
        )
        self._queue = WorkQueue(store_root)
        self.worker_ids = [f"{default_worker_id()}-local{i}" for i in range(count)]
        self._procs = []
        for wid in self.worker_ids:
            proc = context.Process(
                target=run_worker,
                kwargs={
                    "store_root": str(store_root),
                    "worker_id": wid,
                    "poll_interval": poll_interval,
                    "lease_timeout": lease_timeout,
                },
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    def stop(self) -> None:
        for proc in self._procs:
            proc.terminate()
        for proc in self._procs:
            proc.join()
        for wid in self.worker_ids:
            self._queue.remove_heartbeat(wid)


# ------------------------------------------------------------- parent merge
def merge_outcomes(
    queue: WorkQueue,
    entries: Dict[str, Dict[str, Any]],
    retries: int = 0,
    progress: ProgressFn = None,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    wait_timeout: Optional[float] = None,
) -> Iterator[TaskOutcome]:
    """The single-writer parent loop: shard records → one outcome per entry.

    ``entries`` maps fingerprint → queue entry.  Yields exactly one terminal
    outcome per fingerprint: the rebuilt result, or a
    :class:`~repro.runner.backends.base.TaskFailure` once a cell has failed
    ``retries + 1`` times (each accepted failure re-enqueues the entry with
    an incremented attempt counter; failure records from superseded attempts
    — e.g. a stolen cell whose original owner also reported — are ignored).
    Leases of stale workers are requeued as a backstop even when no worker
    is alive to steal them.
    """
    pending = dict(entries)
    attempts = {fingerprint: 1 for fingerprint in pending}
    max_attempts = validate_retries(retries) + 1
    offsets: Dict[str, int] = {}
    deadline = (
        time.monotonic() + wait_timeout if wait_timeout is not None else None
    )
    while pending:
        progressed = False
        for record in queue.read_new_records(offsets):
            fingerprint = record.get("fingerprint")
            if fingerprint not in pending:
                continue  # duplicate (post-steal) or foreign record
            entry = pending[fingerprint]
            unit = "gateway capture" if entry["unit"] == "capture" else "cell"
            if record.get("status") == "ok":
                if entry["unit"] == "capture":
                    outcome: TaskOutcome = CaptureResult.from_json_dict(
                        entry["key"], fingerprint, record["result"], from_cache=False
                    )
                else:
                    outcome = CellResult.from_json_dict(
                        entry["key"], fingerprint, record["result"], from_cache=False
                    )
                pending.pop(fingerprint)
                queue.discard_queued(fingerprint)
                progressed = True
                yield outcome
            elif record.get("status") == "failed":
                if record.get("attempt", attempts[fingerprint]) != attempts[fingerprint]:
                    continue  # a superseded attempt's failure; already handled
                if attempts[fingerprint] < max_attempts:
                    attempts[fingerprint] += 1
                    if progress is not None:
                        progress(
                            f"{unit} {entry['key']}: failed, retrying "
                            f"(attempt {attempts[fingerprint]}/{max_attempts})"
                        )
                    retry_entry = dict(entry)
                    retry_entry["attempt"] = attempts[fingerprint]
                    pending[fingerprint] = retry_entry
                    queue.enqueue(retry_entry)
                else:
                    pending.pop(fingerprint)
                    progressed = True
                    yield TaskFailure(
                        key=entry["key"],
                        error=str(record.get("error", "worker failure")),
                        worker_traceback=str(record.get("worker_traceback", "")),
                        unit=unit,
                    )
        if not pending:
            return
        requeued = queue.requeue_stale(lease_timeout)
        if requeued and progress is not None:
            progress(f"queue: requeued {requeued} entr(ies) from stale leases")
        if deadline is not None and time.monotonic() > deadline:
            raise SweepError(
                f"queue wait timed out after {wait_timeout:g}s with "
                f"{len(pending)} entr(ies) outstanding; start workers with "
                f"'repro worker --cache-dir <store>' or raise the timeout"
            )
        if not progressed:
            time.sleep(poll_interval)


class QueueBackend(ExecutionBackend):
    """Distributed execution through the filesystem work queue.

    By default the backend spawns ``workers`` local worker processes for the
    duration of the call (so ``--backend queue --jobs 4`` is self-contained);
    with ``spawn_workers=False`` it only enqueues and merges, relying on
    externally started ``repro worker`` processes — the fleet mode.
    """

    name = "queue"

    def __init__(
        self,
        store: Optional[ResultsStore],
        workers: int = 1,
        retries: int = 0,
        progress: ProgressFn = None,
        mp_context: Optional[str] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        spawn_workers: bool = True,
        wait_timeout: Optional[float] = None,
    ) -> None:
        if store is None:
            raise ConfigurationError(
                "the queue backend needs a persistent results store; pass "
                "--cache-dir (workers resolve shared captures through it)"
            )
        if spawn_workers and workers < 1:
            raise ConfigurationError(
                f"workers={workers!r} must be >= 1 to spawn local queue workers"
            )
        if lease_timeout <= 0.0:
            raise ConfigurationError(
                f"lease_timeout={lease_timeout!r} must be positive seconds"
            )
        self.store = store
        self.workers = workers
        self.retries = validate_retries(retries)
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.spawn_workers = spawn_workers
        self.wait_timeout = wait_timeout
        self._mp_context = mp_context
        self._progress = progress

    def execute(self, tasks: List[Task]) -> Iterator[TaskOutcome]:
        if not tasks:
            return
        queue = WorkQueue(self.store.root)
        queue.ensure()
        entries: Dict[str, Dict[str, Any]] = {}
        for task in tasks:
            entry = entry_from_task(task)
            entries[entry["fingerprint"]] = entry
            queue.enqueue(entry)
        pool = None
        if self.spawn_workers:
            pool = LocalWorkerPool(
                self.store.root,
                self.workers,
                mp_context=self._mp_context,
                poll_interval=self.poll_interval,
                lease_timeout=self.lease_timeout,
            )
        try:
            yield from merge_outcomes(
                queue,
                entries,
                retries=self.retries,
                progress=self._progress,
                poll_interval=self.poll_interval,
                lease_timeout=self.lease_timeout,
                wait_timeout=self.wait_timeout,
            )
        finally:
            if pool is not None:
                pool.stop()


# ----------------------------------------------------------------- draining
@dataclass(frozen=True)
class DrainReport:
    """Outcome of one ``repro queue drain`` run."""

    requested: int
    already_cached: int
    deduplicated: int
    captures_computed: int
    cells_computed: int
    pending_remaining: int

    def __str__(self) -> str:
        return (
            f"{self.requested} pending entr(ies): {self.cells_computed} cells "
            f"computed ({self.captures_computed} gateway captures), "
            f"{self.already_cached} already cached, "
            f"{self.deduplicated} duplicates, "
            f"{self.pending_remaining} left pending"
        )


def drain_pending(
    store_root: Union[str, Path],
    workers: int = 0,
    retries: int = 0,
    timeout: Optional[float] = None,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    mp_context: Optional[str] = None,
    progress: ProgressFn = None,
) -> DrainReport:
    """Drain ``pending_cells.jsonl`` through the work queue into the store.

    Closes the loop from ``POST /enqueue``: every pending line is
    fingerprint-verified (a line whose fingerprint does not hash from its
    config is refused loudly — it would poison the cache), already-cached
    cells are skipped, and the rest are queued in two phases — shared
    gateway captures first, then the cells that consume them — so a worker
    never has to wait long for a parent capture.  With ``workers > 0`` local
    worker processes are spawned for the duration; with ``workers == 0`` the
    call relies on externally running ``repro worker`` processes (pass
    ``timeout`` so an empty fleet fails loudly instead of blocking forever).
    Cells that reach the store are pruned from the pending file at the end.
    """
    from repro.store.server import PENDING_FILENAME

    store = ResultsStore(store_root)
    pending_path = store.root / PENDING_FILENAME
    records = _read_pending(pending_path)

    cells: Dict[str, SweepCell] = {}
    already_cached = 0
    duplicates = 0
    for record in records:
        cell = cell_from_config(record["cell_key"], record["config"])
        fingerprint = cell.fingerprint()
        if fingerprint in cells:
            duplicates += 1
            continue
        if store.get(fingerprint) is not None:
            already_cached += 1
            continue
        cells[fingerprint] = cell

    captures: Dict[str, CaptureSpec] = {}
    for cell in cells.values():
        if cell.capture is None:
            continue
        capture_fp = cell.capture.fingerprint()
        if capture_fp in captures or store.get(capture_fp, kind="capture") is not None:
            continue
        captures[capture_fp] = cell.capture

    pool = None
    if workers > 0:
        pool = LocalWorkerPool(
            store.root,
            workers,
            mp_context=mp_context,
            poll_interval=poll_interval,
            lease_timeout=lease_timeout,
        )
    backend = QueueBackend(
        store,
        workers=workers,
        retries=retries,
        progress=progress,
        mp_context=mp_context,
        lease_timeout=lease_timeout,
        poll_interval=poll_interval,
        spawn_workers=False,
        wait_timeout=timeout,
    )
    captures_computed = cells_computed = 0
    try:
        capture_tasks: List[Task] = [("capture", spec) for spec in captures.values()]
        for outcome in backend.execute(capture_tasks):
            if isinstance(outcome, TaskFailure):
                raise SweepError(
                    f"{outcome.unit} {outcome.key!r} failed: {outcome.error}\n"
                    f"--- worker traceback ---\n{outcome.worker_traceback}"
                )
            store.put(
                outcome.fingerprint,
                captures[outcome.fingerprint].config_dict(),
                outcome.to_json_dict(),
                kind="capture",
            )
            captures_computed += 1
        cell_tasks: List[Task] = [("cell", cell, None) for cell in cells.values()]
        for outcome in backend.execute(cell_tasks):
            if isinstance(outcome, TaskFailure):
                raise SweepError(
                    f"{outcome.unit} {outcome.key!r} failed: {outcome.error}\n"
                    f"--- worker traceback ---\n{outcome.worker_traceback}"
                )
            store.put(
                outcome.fingerprint,
                cells[outcome.fingerprint].config_dict(),
                outcome.to_json_dict(),
            )
            cells_computed += 1
    finally:
        if pool is not None:
            pool.stop()

    remaining = _prune_pending(pending_path, store)
    return DrainReport(
        requested=len(records),
        already_cached=already_cached,
        deduplicated=duplicates,
        captures_computed=captures_computed,
        cells_computed=cells_computed,
        pending_remaining=remaining,
    )


def _read_pending(path: Path) -> List[Dict[str, Any]]:
    """Parse and fingerprint-verify every pending-cells line."""
    if not path.exists():
        return []
    records: List[Dict[str, Any]] = []
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path}:{number}: pending line is not valid JSON ({exc})"
            ) from None
        if not isinstance(record, dict) or not all(
            key in record for key in ("cell_key", "fingerprint", "config")
        ):
            raise ConfigurationError(
                f"{path}:{number}: pending line needs cell_key, fingerprint "
                f"and config fields"
            )
        verify_fingerprint(
            str(record["cell_key"]), record["config"], str(record["fingerprint"])
        )
        records.append(record)
    return records


def _prune_pending(path: Path, store: ResultsStore) -> int:
    """Drop pending lines whose cells reached the store; count the leftovers."""
    if not path.exists():
        return 0
    kept: List[str] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
            fingerprint = str(record["fingerprint"])
        except (json.JSONDecodeError, KeyError, TypeError):
            kept.append(line)
            continue
        if store.get(fingerprint) is None:
            kept.append(line)
    if kept:
        path.write_text("\n".join(kept) + "\n", encoding="utf-8")
    else:
        path.unlink()
    return len(kept)


__all__ = [
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_POLL_INTERVAL",
    "QUEUE_DIRNAME",
    "QUEUE_SCHEMA_VERSION",
    "DrainReport",
    "LocalWorkerPool",
    "QueueBackend",
    "WorkQueue",
    "default_worker_id",
    "drain_pending",
    "entry_from_task",
    "merge_outcomes",
    "run_worker",
]
