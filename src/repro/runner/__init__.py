"""Parallel sweep execution with persistent, content-addressed results.

The runner turns a figure's scenario grid into independent
:class:`~repro.runner.cells.SweepCell` units, executes them in-process or
across a :mod:`multiprocessing` pool (:class:`~repro.runner.runner.SweepRunner`),
and memoises every computed result in a sharded JSON-lines
:class:`~repro.runner.store.ResultsStore` keyed by a content hash of the cell
configuration.  Grids are declared with :class:`~repro.runner.grid.GridSpec`
(axis products fanned out over one or more seeds) and reduced across seeds by
the aggregation layer (:func:`~repro.runner.grid.aggregate_cells`: mean ±
bootstrap CI per grid point).  Hybrid grids that evaluate one gateway under
many network conditions factor the expensive event simulation into shared,
cacheable gateway captures (:mod:`repro.runner.capture`).  See
``docs/running.md`` for the CLI, the cache layout and how CI exercises
warm-cache sweeps.
"""

from repro.exceptions import SweepError
from repro.runner.backends import (
    BACKEND_NAMES,
    DrainReport,
    ExecutionBackend,
    ProcessBackend,
    QueueBackend,
    SerialBackend,
    TaskFailure,
    WorkQueue,
    available_cpu_count,
    create_backend,
    default_worker_id,
    drain_pending,
    resolve_jobs,
    run_worker,
)
from repro.runner.bench import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_MAX_REGRESSION,
    RATIO_METRICS,
    BenchComparison,
    BenchResult,
    MetricComparison,
    collect_machine_info,
    compare,
    metric_direction,
    run_bench,
)
from repro.runner.capture import (
    CaptureResult,
    CaptureSpec,
    hybrid_captures_from_gateway,
    run_capture,
)
from repro.runner.cells import (
    DEFAULT_FEATURES,
    KDE_BANDWIDTH_RULES,
    SCHEMA_VERSION,
    CellResult,
    SweepCell,
    run_cell,
)
from repro.runner.grid import (
    SEED_TAG,
    AggregatedCellResult,
    AggregatedSweepReport,
    GridPoint,
    GridSpec,
    aggregate_cells,
    experiment_view,
    mean_and_ci,
    point_bootstrap_rng,
    seed_range,
    split_seed_key,
)
from repro.runner.runner import SweepReport, SweepRunner
from repro.runner.store import CompactionStats, ResultsStore, StoreStats

__all__ = [
    "BACKEND_NAMES",
    "BENCH_SCHEMA_VERSION",
    "DrainReport",
    "ExecutionBackend",
    "ProcessBackend",
    "QueueBackend",
    "SerialBackend",
    "TaskFailure",
    "WorkQueue",
    "available_cpu_count",
    "create_backend",
    "default_worker_id",
    "drain_pending",
    "resolve_jobs",
    "run_worker",
    "BenchComparison",
    "BenchResult",
    "DEFAULT_FEATURES",
    "DEFAULT_MAX_REGRESSION",
    "MetricComparison",
    "RATIO_METRICS",
    "collect_machine_info",
    "compare",
    "metric_direction",
    "run_bench",
    "KDE_BANDWIDTH_RULES",
    "SCHEMA_VERSION",
    "SEED_TAG",
    "AggregatedCellResult",
    "AggregatedSweepReport",
    "CaptureResult",
    "CaptureSpec",
    "CellResult",
    "CompactionStats",
    "GridPoint",
    "GridSpec",
    "ResultsStore",
    "StoreStats",
    "SweepCell",
    "SweepError",
    "SweepReport",
    "SweepRunner",
    "aggregate_cells",
    "experiment_view",
    "hybrid_captures_from_gateway",
    "mean_and_ci",
    "point_bootstrap_rng",
    "run_capture",
    "run_cell",
    "seed_range",
    "split_seed_key",
]
