"""Parallel sweep execution with persistent, content-addressed results.

The runner turns a figure's scenario grid into independent
:class:`~repro.runner.cells.SweepCell` units, executes them in-process or
across a :mod:`multiprocessing` pool (:class:`~repro.runner.runner.SweepRunner`),
and memoises every computed result in a JSON-lines
:class:`~repro.runner.store.ResultsStore` keyed by a content hash of the cell
configuration.  See ``docs/running.md`` for the CLI, the cache layout and how
CI exercises warm-cache sweeps.
"""

from repro.exceptions import SweepError
from repro.runner.cells import (
    DEFAULT_FEATURES,
    SCHEMA_VERSION,
    CellResult,
    SweepCell,
    run_cell,
)
from repro.runner.runner import SweepReport, SweepRunner
from repro.runner.store import ResultsStore

__all__ = [
    "DEFAULT_FEATURES",
    "SCHEMA_VERSION",
    "CellResult",
    "ResultsStore",
    "SweepCell",
    "SweepError",
    "SweepReport",
    "SweepRunner",
    "run_cell",
]
