"""Content addressing shared by sweep cells and gateway captures."""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict


def fingerprint_payload(payload: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON encoding of a configuration dict."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


__all__ = ["fingerprint_payload"]
