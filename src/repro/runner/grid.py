"""First-class scenario grids and multi-seed aggregation.

This module is the declarative layer above :class:`~repro.runner.cells.SweepCell`:

* :class:`GridSpec` — a grid *specification*.  Built either from the
  canonical axis product (``policy × rate-pair × hops × utilization``, via
  :meth:`GridSpec.product`) or from explicit figure-specific points
  (:meth:`GridSpec.from_points`), then fanned out over one or more master
  seeds.  :meth:`GridSpec.cells` expands the spec into the flat cell list the
  :class:`~repro.runner.runner.SweepRunner` schedules.
* the **aggregation layer** — :func:`aggregate_cells` groups a sweep's
  results by *everything but the seed* and reduces each grid point's
  per-seed values to a mean with a percentile-bootstrap confidence interval
  (:func:`repro.stats.bootstrap.bootstrap_ci`).  The paper reports one
  collected run per grid point; its analytical claims are about
  distributions of detection rates, and a confidence band needs repeated
  trials.

Seeding convention: with a single seed, cell keys are the bare point keys
(``fig6/utilization=0.2``) — byte-identical to the historical one-seed-per-
cell layout, so existing stores stay warm and single-seed reports do not
change.  With several seeds, each cell key carries an ``@seed=N`` suffix and
:func:`split_seed_key` recovers the grid point it belongs to.

Bootstrap determinism: the resampling generator is derived from the grid
point's key and the confidence level, never from global state, so aggregated
reports are reproducible and cache-friendly.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.experiments.base import CollectionMode, ScenarioConfig
from repro.padding.policies import PaddingPolicy
from repro.runner.capture import CaptureSpec
from repro.sim.random import seeded_rng
from repro.runner.cells import DEFAULT_FEATURES, CellResult, SweepCell
from repro.stats.bootstrap import bootstrap_ci

#: Separator between a grid-point key and its seed tag in multi-seed sweeps.
SEED_TAG = "@seed="


def seed_range(base_seed: int, count: int) -> Tuple[int, ...]:
    """``count`` consecutive master seeds starting at ``base_seed``."""
    if count < 1:
        raise ConfigurationError(f"seed count {count!r} must be >= 1")
    return tuple(base_seed + i for i in range(count))


def split_seed_key(key: str) -> Tuple[str, Optional[int]]:
    """Split ``"fig6/utilization=0.2@seed=7"`` into its point key and seed."""
    base, tag, seed = key.partition(SEED_TAG)
    if not tag:
        return key, None
    try:
        return base, int(seed)
    except ValueError:
        raise ConfigurationError(f"cell key {key!r} has a malformed seed tag") from None


@dataclass(frozen=True)
class GridPoint:
    """One seed-free point of a grid: a scenario plus its display key.

    ``shared_capture`` marks the point as a two-level hybrid cell: its
    gateway capture is factored into a cacheable
    :class:`~repro.runner.capture.CaptureSpec` shared with every other point
    that has the same gateway configuration and seed offsets.

    ``rate_classes`` marks the point as a Section 6 multi-rate cell
    (analytic grids only); it is forwarded verbatim to the cell, whose
    validation enforces the mode and rate constraints.
    """

    key: str
    scenario: ScenarioConfig
    seed_offsets: Tuple[str, str] = ("train", "test")
    shared_capture: bool = False
    capture_key: Optional[str] = None
    noise_offsets: Optional[Tuple[str, str]] = None
    rate_classes: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not isinstance(self.key, str) or not self.key:
            raise ConfigurationError(f"grid point key={self.key!r} must be a non-empty string")
        if SEED_TAG in self.key:
            raise ConfigurationError(
                f"grid point key {self.key!r} must not contain the seed tag {SEED_TAG!r}"
            )
        object.__setattr__(self, "seed_offsets", tuple(str(o) for o in self.seed_offsets))
        if self.noise_offsets is not None:
            object.__setattr__(
                self, "noise_offsets", tuple(str(o) for o in self.noise_offsets)
            )
        if self.rate_classes is not None:
            object.__setattr__(
                self, "rate_classes", tuple(float(r) for r in self.rate_classes)
            )


def _format_axis_value(value: Any) -> str:
    if isinstance(value, PaddingPolicy):
        return value.name
    if isinstance(value, tuple):
        return "x".join(f"{v:g}" for v in value)
    return repr(value)


@dataclass(frozen=True)
class GridSpec:
    """A declarative sweep grid: points × seeds → :class:`SweepCell` list.

    Attributes
    ----------
    prefix:
        Key prefix shared by every cell, e.g. the figure name.
    points:
        The seed-free grid points (see :meth:`product` and
        :meth:`from_points`).
    sample_sizes, trials, mode, features, entropy_bin_width,
    collect_piat_stats, kde_bandwidth:
        Forwarded to every cell (see :class:`~repro.runner.cells.SweepCell`).
    seeds:
        Master seeds the grid is fanned out over.  One seed keeps the
        historical bare keys; several append ``@seed=N``.
    """

    prefix: str
    points: Tuple[GridPoint, ...]
    sample_sizes: Tuple[int, ...]
    trials: int
    mode: CollectionMode = CollectionMode.SIMULATION
    seeds: Tuple[int, ...] = (2003,)
    features: Tuple[str, ...] = DEFAULT_FEATURES
    entropy_bin_width: Optional[float] = None
    collect_piat_stats: bool = False
    kde_bandwidth: Optional[Any] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(self.points))
        object.__setattr__(self, "sample_sizes", tuple(int(n) for n in self.sample_sizes))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "features", tuple(str(f) for f in self.features))
        object.__setattr__(self, "mode", CollectionMode(self.mode))
        if not self.points:
            raise ConfigurationError("a grid needs at least one point")
        if not self.seeds:
            raise ConfigurationError("a grid needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError(f"duplicate seeds in {self.seeds!r}")
        keys = [point.key for point in self.points]
        if len(set(keys)) != len(keys):
            raise ConfigurationError("duplicate grid point keys")

    # ------------------------------------------------------------ constructors
    @classmethod
    def product(
        cls,
        prefix: str,
        scenario: ScenarioConfig,
        *,
        policies: Optional[Sequence[PaddingPolicy]] = None,
        rate_pairs: Optional[Sequence[Tuple[float, float]]] = None,
        hops: Optional[Sequence[int]] = None,
        utilizations: Optional[Sequence[float]] = None,
        seeds: Sequence[int] = (2003,),
        seed_offsets: Tuple[str, str] = ("train", "test"),
        shared_capture: bool = False,
        **cell_options: Any,
    ) -> "GridSpec":
        """The canonical axis product: policy × rate-pair × hops × utilization.

        Every axis is optional; an omitted axis keeps the base scenario's
        value and contributes no key segment.  Axis values are applied with
        :func:`dataclasses.replace`, so invalid combinations (e.g. cross
        traffic with zero hops) fail loudly at grid-construction time with
        the scenario's own validation message.
        """
        axes: List[Tuple[str, List[Any]]] = []
        if policies is not None:
            axes.append(("policy", list(policies)))
        if rate_pairs is not None:
            axes.append(("rates", [tuple(pair) for pair in rate_pairs]))
        if hops is not None:
            axes.append(("hops", [int(h) for h in hops]))
        if utilizations is not None:
            axes.append(("utilization", [float(u) for u in utilizations]))
        for name, values in axes:
            if not values:
                raise ConfigurationError(f"grid axis {name!r} must be non-empty")

        points: List[GridPoint] = []
        for combo in itertools.product(*(values for _, values in axes)):
            overrides: Dict[str, Any] = {}
            segments: List[str] = []
            for (name, _), value in zip(axes, combo):
                segments.append(f"{name}={_format_axis_value(value)}")
                if name == "policy":
                    overrides["policy"] = value
                elif name == "rates":
                    overrides["low_rate_pps"], overrides["high_rate_pps"] = value
                elif name == "hops":
                    overrides["n_hops"] = value
                else:
                    overrides["cross_utilization"] = value
            key = "/".join([prefix] + segments) if segments else prefix
            # Points sharing one gateway capture must still draw independent
            # network noise: salt the noise streams with the point key.
            noise_offsets = (
                tuple(f"{offset}@{key}" for offset in seed_offsets)
                if shared_capture and segments
                else None
            )
            points.append(
                GridPoint(
                    key=key,
                    scenario=replace(scenario, **overrides) if overrides else scenario,
                    seed_offsets=seed_offsets,
                    shared_capture=shared_capture,
                    noise_offsets=noise_offsets,
                )
            )
        return cls(prefix=prefix, points=tuple(points), seeds=tuple(seeds), **cell_options)

    @classmethod
    def from_points(
        cls,
        prefix: str,
        points: Iterable[GridPoint],
        *,
        seeds: Sequence[int] = (2003,),
        **cell_options: Any,
    ) -> "GridSpec":
        """A grid over explicit, figure-specific points (e.g. fig8's hours)."""
        return cls(prefix=prefix, points=tuple(points), seeds=tuple(seeds), **cell_options)

    # ------------------------------------------------------------- expansion
    def cell_key(self, point_key: str, seed: int) -> str:
        """The cell key of one (point, seed); bare when the grid is single-seed."""
        if len(self.seeds) == 1:
            return point_key
        return f"{point_key}{SEED_TAG}{seed}"

    def point_keys(self) -> List[str]:
        """The seed-free grid point keys, in grid order."""
        return [point.key for point in self.points]

    def cells(self) -> List[SweepCell]:
        """Expand the spec into schedulable cells (seed-major, point order)."""
        cells: List[SweepCell] = []
        hybrid = self.mode is CollectionMode.HYBRID
        for seed in self.seeds:
            for point in self.points:
                capture = None
                if point.shared_capture and hybrid:
                    capture = CaptureSpec(
                        key=point.capture_key or f"{point.key}/capture",
                        scenario=point.scenario,
                        n_intervals=max(self.sample_sizes) * self.trials + 1,
                        seed=seed,
                        seed_offsets=point.seed_offsets,
                    )
                cells.append(
                    SweepCell(
                        key=self.cell_key(point.key, seed),
                        scenario=point.scenario,
                        sample_sizes=self.sample_sizes,
                        trials=self.trials,
                        mode=self.mode,
                        seed=seed,
                        features=self.features,
                        entropy_bin_width=self.entropy_bin_width,
                        seed_offsets=point.seed_offsets,
                        collect_piat_stats=self.collect_piat_stats,
                        capture=capture,
                        noise_offsets=point.noise_offsets if hybrid else None,
                        kde_bandwidth=self.kde_bandwidth,
                        rate_classes=point.rate_classes,
                    )
                )
        return cells

    def aggregate(
        self, report: Mapping[str, CellResult], confidence: Optional[float] = None
    ) -> "AggregatedSweepReport":
        """Group this grid's results by point and reduce across seeds."""
        return aggregate_cells(self.cells(), report, confidence=confidence)


# ----------------------------------------------------------------- aggregation
@dataclass
class AggregatedCellResult:
    """One grid point reduced across seeds.

    Duck-types the fields of :class:`~repro.runner.cells.CellResult` that the
    experiments read (``empirical_detection_rate``,
    ``measured_variance_ratio``, ``measured_means``, ``piat_stats``) so a
    figure's ``assemble`` works identically on raw and aggregated sweeps —
    the point estimates are simply per-seed means.  The ``*_ci`` fields hold
    percentile-bootstrap intervals and are ``None`` unless a confidence level
    was requested and at least two seeds contributed.
    """

    key: str
    seeds: Tuple[int, ...]
    empirical_detection_rate: Dict[str, Dict[int, float]]
    measured_variance_ratio: float
    measured_means: Dict[str, float] = field(default_factory=dict)
    piat_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    detection_rate_ci: Optional[Dict[str, Dict[int, Tuple[float, float]]]] = None
    variance_ratio_ci: Optional[Tuple[float, float]] = None
    confidence: Optional[float] = None

    @property
    def n_seeds(self) -> int:
        """Number of independent seeds behind every point estimate."""
        return len(self.seeds)


@dataclass
class AggregatedSweepReport:
    """Aggregated grid results keyed by seed-free point key."""

    results: Dict[str, AggregatedCellResult]
    confidence: Optional[float] = None

    def __getitem__(self, key: str) -> AggregatedCellResult:
        return self.results[key]

    def __contains__(self, key: str) -> bool:
        return key in self.results

    def __len__(self) -> int:
        return len(self.results)


def experiment_view(
    report: Mapping[str, CellResult],
    grid: GridSpec,
    confidence: Optional[float] = None,
):
    """The view an experiment's ``assemble`` reads its grid points from.

    Single-seed grids read the raw sweep report (bare keys, historical
    byte-identical results); multi-seed grids read the aggregated per-point
    reduction.  Shared by every figure experiment so the seed-handling
    convention lives in one place.
    """
    if len(grid.seeds) > 1:
        return grid.aggregate(report, confidence=confidence)
    return report


def point_bootstrap_rng(point_key: str, confidence: float) -> np.random.Generator:
    """A resampling generator derived from the grid point, not global state.

    Public because every consumer that bootstraps per-point intervals — the
    aggregation layer here and :meth:`repro.store.query.StoreQuery.ci_band`
    — must derive the generator identically, or the same store would serve
    different confidence bands through different code paths.
    """
    digest = hashlib.sha256(f"{point_key}|{confidence}".encode("utf-8")).hexdigest()
    return seeded_rng(int(digest[:16], 16))


def mean_and_ci(
    values: Sequence[float],
    point_key: str,
    confidence: Optional[float],
) -> Tuple[float, Optional[Tuple[float, float]]]:
    """Per-point mean plus the deterministic bootstrap interval (or ``None``).

    The interval is ``None`` when no confidence level was requested or fewer
    than two values contributed.  Resampling uses
    :func:`point_bootstrap_rng`, so equal inputs yield byte-equal bands in
    every consumer.
    """
    array = np.asarray(list(values), dtype=float)
    mean = float(np.mean(array))
    if confidence is None or array.size < 2:
        return mean, None
    result = bootstrap_ci(
        array,
        confidence=confidence,
        rng=point_bootstrap_rng(point_key, confidence),
    )
    return mean, (result.lower, result.upper)


def _seedless_config(cell: SweepCell) -> Dict[str, Any]:
    """The cell configuration with every seed-derived field removed."""
    config = cell.config_dict()
    config.pop("seed", None)
    if "capture" in config:
        config["capture"] = {
            name: value for name, value in config["capture"].items() if name != "seed"
        }
    return config


def aggregate_cells(
    cells: Sequence[SweepCell],
    report: Mapping[str, CellResult],
    confidence: Optional[float] = None,
) -> AggregatedSweepReport:
    """Group cell results by everything-but-seed and reduce each group.

    ``cells`` is the expanded grid the sweep ran; ``report`` maps cell keys
    to results (a :class:`~repro.runner.runner.SweepReport` works directly).
    Cells whose keys share a point (identical up to the ``@seed=`` tag) must
    have configurations identical up to the seed — anything else is a grid
    construction bug and raises loudly rather than averaging apples with
    oranges.
    """
    if confidence is not None and not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence={confidence!r} must lie in (0, 1)")
    groups: Dict[str, List[SweepCell]] = {}
    for cell in cells:
        point_key, _ = split_seed_key(cell.key)
        groups.setdefault(point_key, []).append(cell)

    results: Dict[str, AggregatedCellResult] = {}
    for point_key, members in groups.items():
        reference = _seedless_config(members[0])
        for member in members[1:]:
            if _seedless_config(member) != reference:
                raise ConfigurationError(
                    f"grid point {point_key!r}: cells {members[0].key!r} and "
                    f"{member.key!r} differ in more than the seed; refusing to aggregate"
                )
        seeds = tuple(member.seed for member in members)
        if len(set(seeds)) != len(seeds):
            raise ConfigurationError(
                f"grid point {point_key!r}: duplicate seed in group {seeds!r}"
            )
        member_results = [report[member.key] for member in members]

        rates: Dict[str, Dict[int, float]] = {}
        rate_cis: Dict[str, Dict[int, Tuple[float, float]]] = {}
        for feature in member_results[0].empirical_detection_rate:
            rates[feature] = {}
            rate_cis[feature] = {}
            for n in member_results[0].empirical_detection_rate[feature]:
                values = [r.empirical_detection_rate[feature][n] for r in member_results]
                mean, ci = mean_and_ci(values, f"{point_key}/{feature}/{n}", confidence)
                rates[feature][n] = mean
                if ci is not None:
                    rate_cis[feature][n] = ci

        ratio_mean, ratio_ci = mean_and_ci(
            [r.measured_variance_ratio for r in member_results], f"{point_key}/r", confidence
        )
        means: Dict[str, float] = {}
        for label in member_results[0].measured_means:
            means[label] = float(
                np.mean([r.measured_means[label] for r in member_results])
            )
        piat: Dict[str, Dict[str, float]] = {}
        for label in member_results[0].piat_stats:
            stats = {}
            for name in member_results[0].piat_stats[label]:
                stats[name] = float(
                    np.mean([float(r.piat_stats[label][name]) for r in member_results])
                )
            piat[label] = stats

        has_ci = confidence is not None and len(members) >= 2
        results[point_key] = AggregatedCellResult(
            key=point_key,
            seeds=seeds,
            empirical_detection_rate=rates,
            measured_variance_ratio=ratio_mean,
            measured_means=means,
            piat_stats=piat,
            detection_rate_ci=rate_cis if has_ci else None,
            variance_ratio_ci=ratio_ci if has_ci else None,
            confidence=confidence if has_ci else None,
        )
    return AggregatedSweepReport(results=results, confidence=confidence)


__all__ = [
    "SEED_TAG",
    "AggregatedCellResult",
    "AggregatedSweepReport",
    "GridPoint",
    "GridSpec",
    "aggregate_cells",
    "experiment_view",
    "mean_and_ci",
    "point_bootstrap_rng",
    "seed_range",
    "split_seed_key",
]
