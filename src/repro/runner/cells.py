"""Sweep cells: the schedulable unit of the parallel sweep runner.

A :class:`SweepCell` is one independent point of a figure's scenario grid —
one padded-link scenario evaluated at one master seed.  Executing a cell
(:func:`run_cell`) collects a training and a test capture, mounts the attack
with every requested feature statistic at every requested sample size, and
returns the *empirical* quantities as a :class:`CellResult`.  Everything that
has a closed form (Theorems 1-3, the exact Bayes rates, the variance-ratio
model) is recomputed cheaply by the experiment in the parent process, so a
cell result stays small enough to persist as one JSON line.

Cells are content-addressed: :meth:`SweepCell.fingerprint` hashes every field
that influences the numeric result (the scenario, sample sizes, trials, mode,
seed, features, ...) but *not* the display ``key``, so relabelling a grid
point does not invalidate its cache entry.  Fields added after the first
release (``capture``, ``kde_bandwidth``) enter the hash only when set, so
stores written before they existed stay warm.

A cell may reference a shared gateway capture
(:class:`~repro.runner.capture.CaptureSpec`) — the *two-level* form used by
hybrid grids that evaluate one gateway under many network conditions.  Such a
cell skips the event simulation and applies its scenario's analytic network
noise to the parent capture instead; the runner resolves (and caches) the
parent before scheduling the children.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.adversary.detection import (
    empirical_detection_rate,
    evaluate_attack,
    extract_feature_samples,
    train_classifier,
)
from repro.adversary.features import get_feature
from repro.adversary.multiclass import evaluate_multiclass_attack
from repro.exceptions import AnalysisError, ConfigurationError
from repro.experiments.base import (
    CollectionMode,
    ScenarioConfig,
    collect_labelled_intervals,
    collect_multiclass_intervals,
)
from repro.runner.capture import (
    CaptureResult,
    CaptureSpec,
    gateway_config_dict,
    hybrid_captures_from_gateway,
)
from repro.runner.fingerprint import fingerprint_payload
from repro.stats.kde import silverman_bandwidth
from repro.stats.normality import normality_report

#: Bumped whenever the cell execution or result layout changes in a way that
#: invalidates previously stored results.
SCHEMA_VERSION = 1

#: The paper's three feature statistics, in report order.
DEFAULT_FEATURES: Tuple[str, ...] = ("mean", "variance", "entropy")

#: KDE bandwidth rules accepted by :attr:`SweepCell.kde_bandwidth`.
KDE_BANDWIDTH_RULES: Tuple[str, ...] = ("silverman", "scott")


@dataclass(frozen=True)
class SweepCell:
    """One (scenario, seed) grid point, ready to be scheduled.

    Attributes
    ----------
    key:
        Display label, e.g. ``"fig6/utilization=0.2"``.  Unique within one
        sweep; deliberately excluded from the cache fingerprint.
    scenario:
        The padded-link scenario to capture and attack.
    sample_sizes:
        Adversary sample sizes to evaluate (each >= 2).
    trials:
        Training and test samples per class per sample size.
    mode:
        Capture collection mode.
    seed:
        Master random seed for the cell's captures.
    features:
        Feature-statistic names to evaluate (see
        :func:`repro.adversary.features.get_feature`).
    entropy_bin_width:
        Histogram bin width forwarded to the sample-entropy feature.
    seed_offsets:
        Stream-name tags for the training and test captures; they must
        differ or the adversary would train on its own test data.
    collect_piat_stats:
        Also compute per-class normality statistics of the test capture
        (used by Figure 4(a)).
    capture:
        Optional shared gateway capture this cell is a child of (hybrid mode
        only).  The runner resolves the capture first and injects its result.
    noise_offsets:
        Optional per-cell tags for the hybrid network-noise streams, when
        they must be salted differently from ``seed_offsets`` — grid points
        that share one gateway capture (same ``seed_offsets``) use a
        distinct noise salt per point so their noise draws stay
        statistically independent.  Defaults to ``seed_offsets``.
    kde_bandwidth:
        Optional override for the adversary's KDE bandwidth: a rule name
        (``"silverman"``/``"scott"``) or a float multiplier applied to the
        Silverman bandwidth of the pooled training features.  ``None`` keeps
        the default (per-class Silverman, the paper's estimator).
    rate_classes:
        Optional payload-rate mix for the Section 6 multi-rate extension.
        When set the cell evaluates an m-ary attack over these rates
        (analytic mode only) instead of the binary low/high attack, and the
        result additionally carries the full confusion matrices.  Must hold
        at least three distinct rates whose extremes equal the scenario's
        ``low_rate_pps``/``high_rate_pps``.  Like ``capture`` and
        ``kde_bandwidth`` this field enters the fingerprint only when set,
        so binary cells — and every record in existing stores — are
        unaffected by its existence.
    """

    key: str
    scenario: ScenarioConfig
    sample_sizes: Tuple[int, ...]
    trials: int
    mode: CollectionMode = CollectionMode.SIMULATION
    seed: int = 2003
    features: Tuple[str, ...] = DEFAULT_FEATURES
    entropy_bin_width: Optional[float] = None
    seed_offsets: Tuple[str, str] = ("train", "test")
    collect_piat_stats: bool = False
    capture: Optional[CaptureSpec] = None
    noise_offsets: Optional[Tuple[str, str]] = None
    kde_bandwidth: Optional[Union[str, float]] = None
    rate_classes: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not isinstance(self.key, str) or not self.key:
            raise ConfigurationError(f"key={self.key!r} must be a non-empty string")
        object.__setattr__(self, "sample_sizes", tuple(int(n) for n in self.sample_sizes))
        object.__setattr__(self, "features", tuple(str(f) for f in self.features))
        object.__setattr__(self, "seed_offsets", tuple(str(o) for o in self.seed_offsets))
        try:
            object.__setattr__(self, "mode", CollectionMode(self.mode))
        except ValueError:
            valid = ", ".join(repr(m.value) for m in CollectionMode)
            raise ConfigurationError(
                f"mode={self.mode!r} is not a collection mode; choose one of {valid}"
            ) from None
        if not self.sample_sizes:
            raise ConfigurationError(f"sample_sizes={self.sample_sizes!r} must be non-empty")
        if any(n < 2 for n in self.sample_sizes):
            raise ConfigurationError(
                f"sample_sizes={self.sample_sizes!r} must contain only sizes >= 2"
            )
        if self.trials < 2:
            raise ConfigurationError(f"trials={self.trials!r} must be >= 2")
        if not self.features:
            raise ConfigurationError(f"features={self.features!r} must be non-empty")
        if len(self.seed_offsets) != 2 or self.seed_offsets[0] == self.seed_offsets[1]:
            raise ConfigurationError(
                f"seed_offsets={self.seed_offsets!r} must be two distinct tags"
            )
        if self.noise_offsets is not None:
            object.__setattr__(
                self, "noise_offsets", tuple(str(o) for o in self.noise_offsets)
            )
            if self.mode is not CollectionMode.HYBRID:
                raise ConfigurationError(
                    f"noise_offsets={self.noise_offsets!r} only apply to hybrid mode "
                    f"(the other modes have no separate network-noise stage)"
                )
            if len(self.noise_offsets) != 2 or self.noise_offsets[0] == self.noise_offsets[1]:
                raise ConfigurationError(
                    f"noise_offsets={self.noise_offsets!r} must be two distinct tags"
                )
        if isinstance(self.kde_bandwidth, str):
            if self.kde_bandwidth not in KDE_BANDWIDTH_RULES:
                raise ConfigurationError(
                    f"kde_bandwidth={self.kde_bandwidth!r} is not a bandwidth rule; "
                    f"choose one of {KDE_BANDWIDTH_RULES} or a positive float multiplier"
                )
        elif self.kde_bandwidth is not None and not self.kde_bandwidth > 0.0:
            raise ConfigurationError(
                f"kde_bandwidth={self.kde_bandwidth!r} must be a positive multiplier"
            )
        if self.rate_classes is not None:
            object.__setattr__(
                self, "rate_classes", tuple(float(r) for r in self.rate_classes)
            )
            self._validate_rate_classes(self.rate_classes)
        if self.capture is not None:
            self._validate_capture(self.capture)

    def _validate_rate_classes(self, rates: Tuple[float, ...]) -> None:
        """A multi-rate cell must be analytic and consistent with its scenario."""
        if self.mode is not CollectionMode.ANALYTIC:
            raise ConfigurationError(
                f"cell {self.key!r}: rate_classes require analytic mode "
                f"(the multi-rate extension has no simulated capture path), "
                f"got {self.mode.value!r}"
            )
        if self.capture is not None:
            raise ConfigurationError(
                f"cell {self.key!r}: rate_classes cannot be combined with a "
                f"shared gateway capture"
            )
        if self.kde_bandwidth is not None:
            raise ConfigurationError(
                f"cell {self.key!r}: rate_classes cannot be combined with a "
                f"kde_bandwidth override (the multiclass attack uses the "
                f"paper's per-class Silverman estimator)"
            )
        if len(rates) < 3:
            raise ConfigurationError(
                f"cell {self.key!r}: rate_classes={rates!r} must hold at least "
                f"three rates; use the binary low/high scenario for two"
            )
        if len(set(rates)) != len(rates):
            raise ConfigurationError(
                f"cell {self.key!r}: rate_classes={rates!r} contain duplicates"
            )
        if list(rates) != sorted(rates):
            raise ConfigurationError(
                f"cell {self.key!r}: rate_classes={rates!r} must be sorted "
                f"ascending (the order is fingerprinted)"
            )
        if any(rate <= 0.0 for rate in rates):
            raise ConfigurationError(
                f"cell {self.key!r}: rate_classes={rates!r} must be positive"
            )
        if rates[0] != self.scenario.low_rate_pps or rates[-1] != self.scenario.high_rate_pps:
            raise ConfigurationError(
                f"cell {self.key!r}: rate_classes extremes {rates[0]!r}/{rates[-1]!r} "
                f"must equal the scenario's low/high rates "
                f"{self.scenario.low_rate_pps!r}/{self.scenario.high_rate_pps!r}"
            )

    def _validate_capture(self, capture: CaptureSpec) -> None:
        """A child cell must be consistent with its parent capture."""
        if self.mode is not CollectionMode.HYBRID:
            raise ConfigurationError(
                f"cell {self.key!r}: a shared gateway capture requires hybrid mode, "
                f"got {self.mode.value!r}"
            )
        if capture.seed != self.seed:
            raise ConfigurationError(
                f"cell {self.key!r}: capture seed {capture.seed!r} != cell seed {self.seed!r}"
            )
        if capture.seed_offsets != self.seed_offsets:
            raise ConfigurationError(
                f"cell {self.key!r}: capture seed_offsets {capture.seed_offsets!r} != "
                f"cell seed_offsets {self.seed_offsets!r}"
            )
        if capture.n_intervals < self.intervals_per_class + 1:
            raise ConfigurationError(
                f"cell {self.key!r}: capture holds {capture.n_intervals} intervals per "
                f"class; the cell needs {self.intervals_per_class + 1}"
            )
        if gateway_config_dict(capture.scenario) != gateway_config_dict(self.scenario):
            raise ConfigurationError(
                f"cell {self.key!r}: the capture's gateway configuration differs from "
                f"the cell scenario's (policy/rates/disturbance/packet size/warmup)"
            )

    @property
    def intervals_per_class(self) -> int:
        """Capture length needed for ``trials`` samples of the largest size."""
        return max(self.sample_sizes) * self.trials

    def config_dict(self) -> Dict[str, Any]:
        """The result-affecting configuration as plain JSON-able data.

        Optional fields introduced after the first release are serialised
        only when set, so fingerprints of plain cells — and therefore every
        record in existing stores — are unchanged by their existence.
        """
        scenario = asdict(self.scenario)
        # The policy's name is a display label (report text only); keep it out
        # of the fingerprint so renaming a policy does not cold the cache.
        scenario["policy"].pop("name", None)
        config = {
            "schema": SCHEMA_VERSION,
            "scenario": scenario,
            "sample_sizes": list(self.sample_sizes),
            "trials": self.trials,
            "mode": self.mode.value,
            "seed": self.seed,
            "features": list(self.features),
            "entropy_bin_width": self.entropy_bin_width,
            "seed_offsets": list(self.seed_offsets),
            "collect_piat_stats": self.collect_piat_stats,
        }
        if self.capture is not None:
            config["capture"] = self.capture.config_dict()
        if self.noise_offsets is not None:
            config["noise_offsets"] = list(self.noise_offsets)
        if self.kde_bandwidth is not None:
            config["kde_bandwidth"] = self.kde_bandwidth
        if self.rate_classes is not None:
            config["rate_classes"] = list(self.rate_classes)
        return config

    def fingerprint(self) -> str:
        """Content hash of :meth:`config_dict`; the cell's cache key."""
        return fingerprint_payload(self.config_dict())


@dataclass
class CellResult:
    """The empirical measurements produced by one executed cell.

    ``elapsed_seconds`` is wall-clock bookkeeping only; it is excluded from
    report text so that cached and freshly computed sweeps render byte-for-
    byte identically.
    """

    key: str
    fingerprint: str
    empirical_detection_rate: Dict[str, Dict[int, float]]
    measured_variance_ratio: float
    measured_means: Dict[str, float] = field(default_factory=dict)
    piat_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    confusion: Dict[str, Dict[int, Dict[str, Dict[str, int]]]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    from_cache: bool = False

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-able payload for the results store (sample sizes become strings).

        ``confusion`` (multi-rate cells only) is serialised only when
        non-empty, so records of binary cells are byte-identical to those
        written before the field existed.
        """
        payload = {
            "empirical_detection_rate": {
                feature: {str(n): rate for n, rate in by_n.items()}
                for feature, by_n in self.empirical_detection_rate.items()
            },
            "measured_variance_ratio": self.measured_variance_ratio,
            "measured_means": dict(self.measured_means),
            "piat_stats": {label: dict(stats) for label, stats in self.piat_stats.items()},
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.confusion:
            payload["confusion"] = {
                feature: {
                    str(n): {true: dict(row) for true, row in matrix.items()}
                    for n, matrix in by_n.items()
                }
                for feature, by_n in self.confusion.items()
            }
        return payload

    @classmethod
    def from_json_dict(
        cls,
        key: str,
        fingerprint: str,
        payload: Dict[str, Any],
        from_cache: bool = True,
    ) -> "CellResult":
        """Rebuild a result from a store record (inverse of :meth:`to_json_dict`)."""
        return cls(
            key=key,
            fingerprint=fingerprint,
            empirical_detection_rate={
                feature: {int(n): float(rate) for n, rate in by_n.items()}
                for feature, by_n in payload["empirical_detection_rate"].items()
            },
            measured_variance_ratio=float(payload["measured_variance_ratio"]),
            measured_means={k: float(v) for k, v in payload.get("measured_means", {}).items()},
            piat_stats={
                label: dict(stats) for label, stats in payload.get("piat_stats", {}).items()
            },
            confusion={
                feature: {
                    int(n): {
                        true: {pred: int(count) for pred, count in row.items()}
                        for true, row in matrix.items()
                    }
                    for n, matrix in by_n.items()
                }
                for feature, by_n in payload.get("confusion", {}).items()
            },
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            from_cache=from_cache,
        )


def _measure_detection_rate(
    cell: SweepCell,
    train_intervals: Dict[str, np.ndarray],
    test_intervals: Dict[str, np.ndarray],
    feature,
    sample_size: int,
) -> float:
    """One (feature, sample size) point, honouring the cell's bandwidth override."""
    if cell.kde_bandwidth is None:
        result = evaluate_attack(
            train_intervals,
            test_intervals,
            feature,
            sample_size=sample_size,
            max_samples_per_class=cell.trials,
        )
        return float(result.detection_rate)
    if isinstance(cell.kde_bandwidth, str):
        bandwidth: Union[str, float] = cell.kde_bandwidth
    else:
        # Numeric overrides are multiples of the Silverman bandwidth of the
        # pooled training features — a scale that survives feature rescaling.
        pooled = np.concatenate(
            [
                extract_feature_samples(
                    train_intervals[label], feature, sample_size, max_samples=cell.trials
                )
                for label in sorted(train_intervals)
            ]
        )
        bandwidth = float(cell.kde_bandwidth) * silverman_bandwidth(pooled)
    classifier = train_classifier(
        train_intervals,
        feature,
        sample_size,
        max_samples_per_class=cell.trials,
        bandwidth=bandwidth,
    )
    result = empirical_detection_rate(
        classifier, test_intervals, feature, sample_size, max_samples_per_class=cell.trials
    )
    return float(result.detection_rate)


def _collect_piat_stats(test_intervals: Dict[str, np.ndarray]) -> Dict[str, Dict[str, float]]:
    """Per-class normality statistics of a test capture (Figure 4(a))."""
    piat_stats: Dict[str, Dict[str, float]] = {}
    for label, intervals in test_intervals.items():
        report = normality_report(intervals)
        piat_stats[label] = {
            "mean": float(report.mean),
            "std": float(report.std),
            "qq_rms_deviation": float(report.qq_rms_deviation),
            "looks_normal": bool(report.looks_normal),
        }
    return piat_stats


def _run_multiclass_cell(cell: SweepCell, features: Dict[str, Any], start: float) -> CellResult:
    """The Section 6 multi-rate path: m-ary attack plus confusion matrices.

    The overall (trial-weighted) detection rate lands in
    ``empirical_detection_rate`` exactly like the binary path's, so every
    downstream consumer (aggregation, stores, reports) works unchanged; the
    full ``matrix[true][predicted]`` counts ride along in ``confusion``.
    The variance ratio is measured between the extreme rate classes, which
    by construction equal the scenario's low/high rates.
    """
    train_offset, test_offset = cell.seed_offsets
    assert cell.rate_classes is not None
    train = collect_multiclass_intervals(
        cell.scenario,
        cell.rate_classes,
        cell.intervals_per_class,
        seed=cell.seed,
        seed_offset=train_offset,
    )
    test = collect_multiclass_intervals(
        cell.scenario,
        cell.rate_classes,
        cell.intervals_per_class,
        seed=cell.seed,
        seed_offset=test_offset,
    )

    empirical: Dict[str, Dict[int, float]] = {name: {} for name in features}
    confusion: Dict[str, Dict[int, Dict[str, Dict[str, int]]]] = {name: {} for name in features}
    for name, feature in features.items():
        for n in cell.sample_sizes:
            result = evaluate_multiclass_attack(
                train.intervals,
                test.intervals,
                feature,
                sample_size=n,
                max_samples_per_class=cell.trials,
            )
            empirical[name][n] = float(result.detection_rate)
            confusion[name][n] = {
                true: {pred: int(count) for pred, count in row.items()}
                for true, row in result.confusion.items()
            }

    low_label = f"{cell.rate_classes[0]:g}"
    high_label = f"{cell.rate_classes[-1]:g}"
    low_var = float(np.var(test.intervals[low_label], ddof=1))
    high_var = float(np.var(test.intervals[high_label], ddof=1))
    if low_var <= 0.0:
        raise ConfigurationError(f"cell {cell.key!r}: lowest-rate capture has zero variance")

    return CellResult(
        key=cell.key,
        fingerprint=cell.fingerprint(),
        empirical_detection_rate=empirical,
        measured_variance_ratio=high_var / low_var,
        measured_means={k: float(v) for k, v in test.measured_means().items()},
        piat_stats=_collect_piat_stats(test.intervals) if cell.collect_piat_stats else {},
        confusion=confusion,
        elapsed_seconds=time.perf_counter() - start,
    )


def run_cell(cell: SweepCell, capture: Optional[CaptureResult] = None) -> CellResult:
    """Execute one cell: capture, attack, summarise.

    Pure function of the cell's fields — the same cell always produces the
    same :class:`CellResult` (up to ``elapsed_seconds``), which is what makes
    both the process-pool fan-out and the on-disk cache sound.  A two-level
    cell (``cell.capture`` set) additionally requires the parent capture's
    result; the runner resolves and injects it.
    """
    start = time.perf_counter()
    try:
        features = {
            name: get_feature(name, cell.entropy_bin_width) for name in cell.features
        }
    except AnalysisError as exc:
        raise ConfigurationError(f"cell {cell.key!r}: {exc}") from exc

    if cell.rate_classes is not None:
        return _run_multiclass_cell(cell, features, start)

    train_offset, test_offset = cell.seed_offsets
    if cell.capture is not None:
        if capture is None:
            raise ConfigurationError(
                f"cell {cell.key!r} is a two-level cell; the result of its gateway "
                f"capture {cell.capture.key!r} must be supplied"
            )
        if capture.fingerprint != cell.capture.fingerprint():
            raise ConfigurationError(
                f"cell {cell.key!r}: supplied capture {capture.key!r} does not match "
                f"the cell's capture spec"
            )
        by_offset = hybrid_captures_from_gateway(
            cell.scenario,
            cell.intervals_per_class,
            cell.seed,
            cell.seed_offsets,
            capture,
            noise_offsets=cell.noise_offsets,
        )
        train, test = by_offset[train_offset], by_offset[test_offset]
    else:
        noise_offsets = (
            cell.noise_offsets if cell.noise_offsets is not None else (None, None)
        )
        train = collect_labelled_intervals(
            cell.scenario,
            cell.intervals_per_class,
            mode=cell.mode,
            seed=cell.seed,
            seed_offset=train_offset,
            noise_offset=noise_offsets[0],
        )
        test = collect_labelled_intervals(
            cell.scenario,
            cell.intervals_per_class,
            mode=cell.mode,
            seed=cell.seed,
            seed_offset=test_offset,
            noise_offset=noise_offsets[1],
        )

    empirical: Dict[str, Dict[int, float]] = {name: {} for name in features}
    for name, feature in features.items():
        for n in cell.sample_sizes:
            empirical[name][n] = _measure_detection_rate(
                cell, train.intervals, test.intervals, feature, n
            )

    piat_stats = _collect_piat_stats(test.intervals) if cell.collect_piat_stats else {}

    return CellResult(
        key=cell.key,
        fingerprint=cell.fingerprint(),
        empirical_detection_rate=empirical,
        measured_variance_ratio=float(test.measured_variance_ratio()),
        measured_means={k: float(v) for k, v in test.measured_means().items()},
        piat_stats=piat_stats,
        elapsed_seconds=time.perf_counter() - start,
    )


__all__ = [
    "DEFAULT_FEATURES",
    "KDE_BANDWIDTH_RULES",
    "SCHEMA_VERSION",
    "SweepCell",
    "CellResult",
    "run_cell",
]
