"""The sweep runner: cache partitioning, capture resolution, accounting.

:class:`SweepRunner` executes a grid of :class:`~repro.runner.cells.SweepCell`
objects, delegating *how* cache misses run to a pluggable
:class:`~repro.runner.backends.base.ExecutionBackend` — ``serial`` (inline,
zero pool overhead), ``process`` (a :mod:`multiprocessing` pool with
per-attempt timeouts and recycling) or ``queue`` (a filesystem work queue
drained by ``repro worker`` processes) — and streaming every computed result
into an optional :class:`~repro.runner.store.ResultsStore` so that repeated
sweeps skip the simulation entirely.  Two-level cells (a shared gateway
capture feeding per-scenario children, :mod:`repro.runner.capture`) are
resolved in a first pass: each distinct capture fingerprint is served from
the store or simulated once, then injected into every child that references
it.

Guarantees:

* **Determinism** — a cell is a pure function of its configuration (per-cell
  seeding via :class:`repro.sim.random.RandomStreams`), so the same grid and
  seeds produce bit-identical results on any backend at any ``jobs`` count,
  warm or cold.
* **Loud failure** — a cell that keeps failing (or times out) aborts the
  sweep with a :class:`~repro.exceptions.SweepError` naming the cell and
  carrying the worker traceback; the pool is torn down rather than left to
  hang.
* **Bounded retries** — ``retries=N`` re-runs a failing or timed-out cell up
  to ``N`` extra times before aborting; ``timeout=T`` bounds each attempt's
  wall clock (process backend only — the serial loop cannot reclaim a stuck
  cell in-process, and the queue backend handles stuck workers by lease
  expiry).
* **Single-writer cache** — only the parent process appends to the store, so
  workers never contend for the results file.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ConfigurationError, SweepError
from repro.runner.backends import create_backend
from repro.runner.backends.base import (
    FORKED_CAPTURES,
    Task,
    TaskFailure,
    execute_task,
    task_key,
)
from repro.runner.capture import CaptureResult, CaptureSpec, run_capture
from repro.runner.cells import CellResult, SweepCell, run_cell
from repro.runner.store import ResultsStore

# Historical (pre-backend-extraction) names, kept so existing imports and
# monkeypatch targets stay valid.  ``_FORKED_CAPTURES`` must be the *same*
# dict object as the backends module's — fork copy-on-write sharing and the
# in-process lookup both go through that one instance.
_Task = Task
_CellFailure = TaskFailure
_FORKED_CAPTURES = FORKED_CAPTURES
_task_key = task_key
_execute_task = execute_task


@dataclass
class SweepReport:
    """Outcome of one :meth:`SweepRunner.run` call.

    ``hits`` counts cells served from the persistent store, ``misses`` cells
    actually simulated, and ``deduplicated`` cells that shared a fingerprint
    with another cell in the same sweep and rode along with its result.
    ``capture_hits`` / ``captures_simulated`` account the shared gateway
    captures of two-level cells the same way.
    """

    results: Dict[str, CellResult] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    deduplicated: int = 0
    capture_hits: int = 0
    captures_simulated: int = 0
    elapsed_seconds: float = 0.0

    def __getitem__(self, key: str) -> CellResult:
        return self.results[key]

    def summary(self) -> str:
        """One line of cache accounting, e.g. ``"6 cells, 2 simulated, 4 cache hits"``."""
        line = f"{len(self.results)} cells, {self.misses} simulated, {self.hits} cache hits"
        if self.deduplicated:
            line += f", {self.deduplicated} deduplicated"
        if self.captures_simulated or self.capture_hits:
            line += (
                f", {self.captures_simulated} gateway captures simulated, "
                f"{self.capture_hits} capture cache hits"
            )
        return line


class SweepRunner:
    """Runs sweep cells through an execution backend, with caching.

    Parameters
    ----------
    jobs:
        Worker processes (``process`` backend) or local queue workers
        (``queue`` backend).  ``1`` (the default) runs every cell inline in
        the parent process — no pool, easiest to debug, and the reference
        for the bit-identical-at-any-jobs guarantee.
    store:
        Optional persistent cache.  Cells whose fingerprint is already stored
        are returned from the cache without simulating.  Required by the
        ``queue`` backend (workers resolve shared captures through it).
    mp_context:
        :mod:`multiprocessing` start method.  Defaults to ``"fork"`` on Linux
        (cheap worker startup, and no re-import of ``__main__`` — ``spawn``
        cannot start workers from a parent run off stdin or a REPL) and
        ``"spawn"`` everywhere else, where forking past BLAS/framework
        initialisation is unsafe.
    progress:
        Optional callable invoked with one line per completed cell.
    timeout:
        Optional per-attempt wall-clock bound in seconds (``process`` backend
        only).  A cell (or capture) still running past it counts as a failed
        attempt.  Because a stuck worker cannot be reclaimed, enforcing a
        timeout always uses a worker pool, even at ``jobs=1``.
    retries:
        Extra attempts granted to a failing or timed-out cell before the
        sweep aborts with a :class:`~repro.exceptions.SweepError`.
    backend:
        Execution strategy: ``"process"`` (default, the historical pool),
        ``"serial"`` (inline fast path) or ``"queue"`` (filesystem work
        queue; see ``docs/distributed.md``).
    backend_options:
        Extra keyword options forwarded to the backend factory — the queue
        backend's ``lease_timeout``, ``poll_interval``, ``wait_timeout`` and
        ``spawn_workers``.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultsStore] = None,
        mp_context: Optional[str] = None,
        progress: Optional[Callable[[str], None]] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        backend: str = "process",
        backend_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs={jobs!r} must be >= 1")
        if timeout is not None and not timeout > 0.0:
            raise ConfigurationError(f"timeout={timeout!r} must be positive seconds")
        if retries < 0:
            raise ConfigurationError(f"retries={retries!r} must be >= 0")
        self.jobs = jobs
        self.store = store
        if mp_context is None:
            # fork is only trusted on Linux; macOS lists it as available but
            # forking a parent with initialized BLAS/ObjC state is unsafe
            # (CPython itself switched the macOS default to spawn in 3.8).
            mp_context = "fork" if sys.platform == "linux" else "spawn"
        self._mp_context = mp_context
        self._progress = progress
        self.timeout = timeout
        self.retries = retries
        self.backend_name = backend
        # Built eagerly so a misconfiguration (unknown backend, serial with a
        # timeout, queue without a store) fails at construction, not mid-sweep.
        self._backend = create_backend(
            backend,
            jobs=jobs,
            store=store,
            mp_context=mp_context,
            timeout=timeout,
            retries=retries,
            progress=progress,
            **(backend_options or {}),
        )
        # Accumulated across run() calls so a multi-figure sweep can print one
        # overall summary (the CLI's ``sweep summary:`` line).
        self.cells_seen = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cells_deduplicated = 0
        self.capture_hits = 0
        self.captures_simulated = 0

    # ------------------------------------------------------------------- api
    def run(self, cells: Iterable[SweepCell]) -> SweepReport:
        """Execute every cell and return their results keyed by cell key.

        Results come back in the order the cells were given, regardless of
        the order workers finish in.
        """
        start = time.perf_counter()
        cell_list = list(cells)
        seen_keys = set()
        for cell in cell_list:
            if cell.key in seen_keys:
                raise ConfigurationError(f"duplicate cell key {cell.key!r} in sweep grid")
            seen_keys.add(cell.key)

        # Partition into cache hits and pending work, de-duplicating cells
        # whose configs hash identically (they would produce the same result).
        assignments: Dict[str, str] = {}  # cell key -> fingerprint
        resolved: Dict[str, CellResult] = {}  # fingerprint -> result from store
        pending: Dict[str, SweepCell] = {}  # fingerprint -> first such cell
        for cell in cell_list:
            fingerprint = cell.fingerprint()
            assignments[cell.key] = fingerprint
            if fingerprint in resolved or fingerprint in pending:
                continue
            record = self.store.get(fingerprint) if self.store is not None else None
            if record is not None:
                resolved[fingerprint] = CellResult.from_json_dict(
                    cell.key, fingerprint, record["result"], from_cache=True
                )
                self._report(f"cell {cell.key}: cache hit")
            else:
                pending[fingerprint] = cell
        store_fingerprints = set(resolved)

        captures = self._resolve_captures(list(pending.values()))
        # Forked workers (and the inline path) read captures from the shared
        # module-level map; spawn workers need the payload inside the task.
        # Queue workers ignore both — they rebuild the cell from its config
        # and fetch the capture from the store.
        share_by_fork = self._mp_context == "fork"
        tasks: List[Task] = []
        for cell in pending.values():
            injected = None
            if cell.capture is not None:
                fingerprint = cell.capture.fingerprint()
                if share_by_fork:
                    _FORKED_CAPTURES[fingerprint] = captures[fingerprint][0]
                else:
                    injected = captures[fingerprint][0]
            tasks.append(("cell", cell, injected))

        try:
            for outcome in self._backend.execute(tasks):
                if isinstance(outcome, TaskFailure):
                    raise SweepError(
                        f"sweep cell {outcome.key!r} failed: {outcome.error}\n"
                        f"--- worker traceback ---\n{outcome.worker_traceback}"
                    )
                resolved[outcome.fingerprint] = outcome
                if self.store is not None:
                    self.store.put(
                        outcome.fingerprint,
                        pending[outcome.fingerprint].config_dict(),
                        outcome.to_json_dict(),
                    )
                self._report(
                    f"cell {outcome.key}: simulated in {outcome.elapsed_seconds:.2f}s"
                )
        finally:
            _FORKED_CAPTURES.clear()

        hits = misses = deduplicated = 0
        for cell in cell_list:
            fingerprint = assignments[cell.key]
            if fingerprint in store_fingerprints:
                hits += 1
            elif cell is pending.get(fingerprint):
                misses += 1
            else:
                deduplicated += 1
        run_hits = sum(1 for _, from_cache in captures.values() if from_cache)
        run_captures = sum(1 for _, from_cache in captures.values() if not from_cache)
        self.cells_seen += len(cell_list)
        self.cache_hits += hits
        self.cache_misses += misses
        self.cells_deduplicated += deduplicated
        self.capture_hits += run_hits
        self.captures_simulated += run_captures

        results = {
            cell.key: replace(resolved[assignments[cell.key]], key=cell.key)
            for cell in cell_list
        }
        return SweepReport(
            results=results,
            hits=hits,
            misses=misses,
            deduplicated=deduplicated,
            capture_hits=run_hits,
            captures_simulated=run_captures,
            elapsed_seconds=time.perf_counter() - start,
        )

    def summary(self) -> str:
        """Accumulated accounting across every sweep this runner has run."""
        line = (
            f"sweep summary: {self.cells_seen} cells, {self.cache_misses} simulated, "
            f"{self.cache_hits} cache hits"
        )
        if self.cells_deduplicated:
            line += f", {self.cells_deduplicated} deduplicated"
        if self.captures_simulated or self.capture_hits:
            line += (
                f", {self.captures_simulated} gateway captures simulated, "
                f"{self.capture_hits} capture cache hits"
            )
        return line + f", jobs={self.jobs}, backend={self.backend_name}"

    # -------------------------------------------------------------- internals
    def _resolve_captures(
        self, cells: List[SweepCell]
    ) -> Dict[str, Tuple[CaptureResult, bool]]:
        """Serve or simulate every distinct gateway capture the cells need.

        Returns fingerprint → (result, served_from_store).  Each distinct
        capture is computed at most once per sweep and persisted like a cell
        result (``kind="capture"``), so later sweeps — and other cells of
        this one — reuse it without touching the event simulator.  Captures
        are resolved (and stored) *before* any cell task is dispatched, which
        is what lets queue workers on other hosts find them in the shared
        store.
        """
        specs: Dict[str, CaptureSpec] = {}
        for cell in cells:
            if cell.capture is not None:
                specs.setdefault(cell.capture.fingerprint(), cell.capture)
        if not specs:
            return {}

        resolved: Dict[str, Tuple[CaptureResult, bool]] = {}
        to_run: List[CaptureSpec] = []
        for fingerprint, spec in specs.items():
            record = (
                self.store.get(fingerprint, kind="capture")
                if self.store is not None
                else None
            )
            if record is not None:
                resolved[fingerprint] = (
                    CaptureResult.from_json_dict(
                        spec.key, fingerprint, record["result"], from_cache=True
                    ),
                    True,
                )
                self._report(f"gateway capture {spec.key}: cache hit")
            else:
                to_run.append(spec)

        capture_tasks: List[Task] = [("capture", spec) for spec in to_run]
        for outcome in self._backend.execute(capture_tasks):
            if isinstance(outcome, TaskFailure):
                raise SweepError(
                    f"{outcome.unit} {outcome.key!r} failed: {outcome.error}\n"
                    f"--- worker traceback ---\n{outcome.worker_traceback}"
                )
            resolved[outcome.fingerprint] = (outcome, False)
            if self.store is not None:
                self.store.put(
                    outcome.fingerprint,
                    specs[outcome.fingerprint].config_dict(),
                    outcome.to_json_dict(),
                    kind="capture",
                )
            self._report(
                f"gateway capture {outcome.key}: simulated in {outcome.elapsed_seconds:.2f}s"
            )
        return resolved

    def _report(self, line: str) -> None:
        if self._progress is not None:
            self._progress(line)


# ``run_cell`` / ``run_capture`` are re-exported here on purpose: backends
# resolve them through this module's namespace at call time, which is the
# seam the fault-injection tests monkeypatch.
__all__ = ["SweepRunner", "SweepReport", "run_capture", "run_cell"]
