"""The parallel sweep runner.

:class:`SweepRunner` executes a grid of :class:`~repro.runner.cells.SweepCell`
objects, fanning cache misses out over a :mod:`multiprocessing` worker pool
and streaming every computed result into an optional
:class:`~repro.runner.store.ResultsStore` so that repeated sweeps skip the
simulation entirely.

Guarantees:

* **Determinism** — a cell is a pure function of its configuration (per-cell
  seeding via :class:`repro.sim.random.RandomStreams`), so the same grid and
  seeds produce bit-identical results at any ``jobs`` count, warm or cold.
* **Loud failure** — a cell that raises aborts the sweep with a
  :class:`~repro.exceptions.SweepError` naming the cell and carrying the
  worker traceback; the pool is torn down rather than left to hang.
* **Single-writer cache** — only the parent process appends to the store, so
  workers never contend for the results file.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.exceptions import ConfigurationError, SweepError
from repro.runner.cells import CellResult, SweepCell, run_cell
from repro.runner.store import ResultsStore


@dataclass(frozen=True)
class _CellFailure:
    """Picklable failure marker returned by a worker instead of raising.

    Raising inside ``Pool.imap_unordered`` would surface the exception without
    the cell identity (and an unpicklable exception would deadlock the pool),
    so workers catch everything and let the parent raise a ``SweepError``.
    """

    key: str
    error: str
    worker_traceback: str


def _execute(cell: SweepCell) -> Union[CellResult, _CellFailure]:
    """Pool entry point: run one cell, converting any exception to a marker."""
    try:
        return run_cell(cell)
    except Exception as exc:
        return _CellFailure(
            key=cell.key,
            error=f"{type(exc).__name__}: {exc}",
            worker_traceback=traceback.format_exc(),
        )


@dataclass
class SweepReport:
    """Outcome of one :meth:`SweepRunner.run` call.

    ``hits`` counts cells served from the persistent store, ``misses`` cells
    actually simulated, and ``deduplicated`` cells that shared a fingerprint
    with another cell in the same sweep and rode along with its result.
    """

    results: Dict[str, CellResult] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    deduplicated: int = 0
    elapsed_seconds: float = 0.0

    def __getitem__(self, key: str) -> CellResult:
        return self.results[key]

    def summary(self) -> str:
        """One line of cache accounting, e.g. ``"6 cells, 2 simulated, 4 cache hits"``."""
        line = f"{len(self.results)} cells, {self.misses} simulated, {self.hits} cache hits"
        if self.deduplicated:
            line += f", {self.deduplicated} deduplicated"
        return line


class SweepRunner:
    """Runs sweep cells, in-process or across a worker pool, with caching.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every cell inline in the
        parent process — no pool, easiest to debug, and the reference for the
        bit-identical-at-any-jobs guarantee.
    store:
        Optional persistent cache.  Cells whose fingerprint is already stored
        are returned from the cache without simulating.
    mp_context:
        :mod:`multiprocessing` start method.  Defaults to ``"fork"`` on Linux
        (cheap worker startup, and no re-import of ``__main__`` — ``spawn``
        cannot start workers from a parent run off stdin or a REPL) and
        ``"spawn"`` everywhere else, where forking past BLAS/framework
        initialisation is unsafe.
    progress:
        Optional callable invoked with one line per completed cell.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultsStore] = None,
        mp_context: Optional[str] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs={jobs!r} must be >= 1")
        self.jobs = jobs
        self.store = store
        if mp_context is None:
            # fork is only trusted on Linux; macOS lists it as available but
            # forking a parent with initialized BLAS/ObjC state is unsafe
            # (CPython itself switched the macOS default to spawn in 3.8).
            mp_context = "fork" if sys.platform == "linux" else "spawn"
        self._mp_context = mp_context
        self._progress = progress
        # Accumulated across run() calls so a multi-figure sweep can print one
        # overall summary (the CLI's ``sweep summary:`` line).
        self.cells_seen = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cells_deduplicated = 0

    # ------------------------------------------------------------------- api
    def run(self, cells: Iterable[SweepCell]) -> SweepReport:
        """Execute every cell and return their results keyed by cell key.

        Results come back in the order the cells were given, regardless of
        the order workers finish in.
        """
        start = time.perf_counter()
        cell_list = list(cells)
        seen_keys = set()
        for cell in cell_list:
            if cell.key in seen_keys:
                raise ConfigurationError(f"duplicate cell key {cell.key!r} in sweep grid")
            seen_keys.add(cell.key)

        # Partition into cache hits and pending work, de-duplicating cells
        # whose configs hash identically (they would produce the same result).
        assignments: Dict[str, str] = {}  # cell key -> fingerprint
        resolved: Dict[str, CellResult] = {}  # fingerprint -> result from store
        pending: Dict[str, SweepCell] = {}  # fingerprint -> first such cell
        for cell in cell_list:
            fingerprint = cell.fingerprint()
            assignments[cell.key] = fingerprint
            if fingerprint in resolved or fingerprint in pending:
                continue
            record = self.store.get(fingerprint) if self.store is not None else None
            if record is not None:
                resolved[fingerprint] = CellResult.from_json_dict(
                    cell.key, fingerprint, record["result"], from_cache=True
                )
                self._report(f"cell {cell.key}: cache hit")
            else:
                pending[fingerprint] = cell
        store_fingerprints = set(resolved)

        for outcome in self._compute(list(pending.values())):
            if isinstance(outcome, _CellFailure):
                raise SweepError(
                    f"sweep cell {outcome.key!r} failed: {outcome.error}\n"
                    f"--- worker traceback ---\n{outcome.worker_traceback}"
                )
            resolved[outcome.fingerprint] = outcome
            if self.store is not None:
                self.store.put(
                    outcome.fingerprint,
                    pending[outcome.fingerprint].config_dict(),
                    outcome.to_json_dict(),
                )
            self._report(f"cell {outcome.key}: simulated in {outcome.elapsed_seconds:.2f}s")

        hits = misses = deduplicated = 0
        for cell in cell_list:
            fingerprint = assignments[cell.key]
            if fingerprint in store_fingerprints:
                hits += 1
            elif cell is pending.get(fingerprint):
                misses += 1
            else:
                deduplicated += 1
        self.cells_seen += len(cell_list)
        self.cache_hits += hits
        self.cache_misses += misses
        self.cells_deduplicated += deduplicated

        results = {
            cell.key: replace(resolved[assignments[cell.key]], key=cell.key)
            for cell in cell_list
        }
        return SweepReport(
            results=results,
            hits=hits,
            misses=misses,
            deduplicated=deduplicated,
            elapsed_seconds=time.perf_counter() - start,
        )

    def summary(self) -> str:
        """Accumulated accounting across every sweep this runner has run."""
        line = (
            f"sweep summary: {self.cells_seen} cells, {self.cache_misses} simulated, "
            f"{self.cache_hits} cache hits"
        )
        if self.cells_deduplicated:
            line += f", {self.cells_deduplicated} deduplicated"
        return line + f", jobs={self.jobs}"

    # -------------------------------------------------------------- internals
    def _compute(
        self, cells: List[SweepCell]
    ) -> Iterable[Union[CellResult, _CellFailure]]:
        if not cells:
            return
        if self.jobs == 1 or len(cells) == 1:
            for cell in cells:
                yield _execute(cell)
            return
        context = multiprocessing.get_context(self._mp_context)
        workers = min(self.jobs, len(cells))
        # The context manager terminates the pool on error, so a failing cell
        # aborts the sweep instead of hanging the remaining futures.
        with context.Pool(processes=workers) as pool:
            yield from pool.imap_unordered(_execute, cells)

    def _report(self, line: str) -> None:
        if self._progress is not None:
            self._progress(line)


__all__ = ["SweepRunner", "SweepReport"]
