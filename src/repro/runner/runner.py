"""The parallel sweep runner.

:class:`SweepRunner` executes a grid of :class:`~repro.runner.cells.SweepCell`
objects, fanning cache misses out over a :mod:`multiprocessing` worker pool
and streaming every computed result into an optional
:class:`~repro.runner.store.ResultsStore` so that repeated sweeps skip the
simulation entirely.  Two-level cells (a shared gateway capture feeding
per-scenario children, :mod:`repro.runner.capture`) are resolved in a first
pass: each distinct capture fingerprint is served from the store or simulated
once, then injected into every child that references it.

Guarantees:

* **Determinism** — a cell is a pure function of its configuration (per-cell
  seeding via :class:`repro.sim.random.RandomStreams`), so the same grid and
  seeds produce bit-identical results at any ``jobs`` count, warm or cold.
* **Loud failure** — a cell that keeps failing (or times out) aborts the
  sweep with a :class:`~repro.exceptions.SweepError` naming the cell and
  carrying the worker traceback; the pool is torn down rather than left to
  hang.
* **Bounded retries** — ``retries=N`` re-runs a failing or timed-out cell up
  to ``N`` extra times before aborting; ``timeout=T`` bounds each attempt's
  wall clock.  A timed-out attempt cannot be cancelled cooperatively, so the
  pool is recycled: still-running innocent cells are requeued (at no retry
  cost) and restart in a fresh pool.
* **Single-writer cache** — only the parent process appends to the store, so
  workers never contend for the results file.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError, SweepError
from repro.runner.capture import CaptureResult, CaptureSpec, run_capture
from repro.runner.cells import CellResult, SweepCell, run_cell
from repro.runner.store import ResultsStore

#: A schedulable unit of work: a cell (with its optional injected capture
#: result) or a gateway capture.  Plain tuples keep the pool payload boring
#: and picklable.
_Task = Union[
    Tuple[str, SweepCell, Optional[CaptureResult]],  # ("cell", cell, capture)
    Tuple[str, CaptureSpec],  # ("capture", spec)
]

#: Resolved capture results shared with ``fork``-started workers by
#: copy-on-write inheritance.  A capture payload is a few hundred KB of
#: gateway intervals; embedding it in every child task would re-pickle it
#: once per ``apply_async`` call (24× per network for fig8), so on fork
#: platforms the task carries ``None`` and the worker looks the result up
#: here.  Populated by :meth:`SweepRunner.run` before any pool is created
#: and cleared when the run finishes.  ``spawn`` workers do not inherit
#: parent globals, so there the capture stays embedded in the task.
_FORKED_CAPTURES: Dict[str, CaptureResult] = {}


@dataclass(frozen=True)
class _CellFailure:
    """Picklable failure marker returned by a worker instead of raising.

    Raising inside the pool would surface the exception without the cell
    identity (and an unpicklable exception would deadlock the pool), so
    workers catch everything and let the parent raise a ``SweepError``.
    """

    key: str
    error: str
    worker_traceback: str
    unit: str = "cell"


def _task_key(task: _Task) -> str:
    return task[1].key


def _execute_task(task: _Task) -> Union[CellResult, CaptureResult, _CellFailure]:
    """Pool entry point: run one task, converting any exception to a marker."""
    kind = task[0]
    try:
        if kind == "capture":
            return run_capture(task[1])
        cell, capture = task[1], task[2]
        if capture is None and cell.capture is not None:
            capture = _FORKED_CAPTURES.get(cell.capture.fingerprint())
        return run_cell(cell, capture=capture)
    except Exception as exc:
        return _CellFailure(
            key=_task_key(task),
            error=f"{type(exc).__name__}: {exc}",
            worker_traceback=traceback.format_exc(),
            unit="gateway capture" if kind == "capture" else "cell",
        )


@dataclass
class SweepReport:
    """Outcome of one :meth:`SweepRunner.run` call.

    ``hits`` counts cells served from the persistent store, ``misses`` cells
    actually simulated, and ``deduplicated`` cells that shared a fingerprint
    with another cell in the same sweep and rode along with its result.
    ``capture_hits`` / ``captures_simulated`` account the shared gateway
    captures of two-level cells the same way.
    """

    results: Dict[str, CellResult] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    deduplicated: int = 0
    capture_hits: int = 0
    captures_simulated: int = 0
    elapsed_seconds: float = 0.0

    def __getitem__(self, key: str) -> CellResult:
        return self.results[key]

    def summary(self) -> str:
        """One line of cache accounting, e.g. ``"6 cells, 2 simulated, 4 cache hits"``."""
        line = f"{len(self.results)} cells, {self.misses} simulated, {self.hits} cache hits"
        if self.deduplicated:
            line += f", {self.deduplicated} deduplicated"
        if self.captures_simulated or self.capture_hits:
            line += (
                f", {self.captures_simulated} gateway captures simulated, "
                f"{self.capture_hits} capture cache hits"
            )
        return line


class SweepRunner:
    """Runs sweep cells, in-process or across a worker pool, with caching.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every cell inline in the
        parent process — no pool, easiest to debug, and the reference for the
        bit-identical-at-any-jobs guarantee.
    store:
        Optional persistent cache.  Cells whose fingerprint is already stored
        are returned from the cache without simulating.
    mp_context:
        :mod:`multiprocessing` start method.  Defaults to ``"fork"`` on Linux
        (cheap worker startup, and no re-import of ``__main__`` — ``spawn``
        cannot start workers from a parent run off stdin or a REPL) and
        ``"spawn"`` everywhere else, where forking past BLAS/framework
        initialisation is unsafe.
    progress:
        Optional callable invoked with one line per completed cell.
    timeout:
        Optional per-attempt wall-clock bound in seconds.  A cell (or
        capture) still running past it counts as a failed attempt.  Because a
        stuck worker cannot be reclaimed, enforcing a timeout always uses a
        worker pool, even at ``jobs=1``.
    retries:
        Extra attempts granted to a failing or timed-out cell before the
        sweep aborts with a :class:`~repro.exceptions.SweepError`.
    """

    #: Seconds between polls of outstanding pool results.
    _POLL_INTERVAL = 0.02

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultsStore] = None,
        mp_context: Optional[str] = None,
        progress: Optional[Callable[[str], None]] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs={jobs!r} must be >= 1")
        if timeout is not None and not timeout > 0.0:
            raise ConfigurationError(f"timeout={timeout!r} must be positive seconds")
        if retries < 0:
            raise ConfigurationError(f"retries={retries!r} must be >= 0")
        self.jobs = jobs
        self.store = store
        if mp_context is None:
            # fork is only trusted on Linux; macOS lists it as available but
            # forking a parent with initialized BLAS/ObjC state is unsafe
            # (CPython itself switched the macOS default to spawn in 3.8).
            mp_context = "fork" if sys.platform == "linux" else "spawn"
        self._mp_context = mp_context
        self._progress = progress
        self.timeout = timeout
        self.retries = retries
        # Accumulated across run() calls so a multi-figure sweep can print one
        # overall summary (the CLI's ``sweep summary:`` line).
        self.cells_seen = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cells_deduplicated = 0
        self.capture_hits = 0
        self.captures_simulated = 0

    # ------------------------------------------------------------------- api
    def run(self, cells: Iterable[SweepCell]) -> SweepReport:
        """Execute every cell and return their results keyed by cell key.

        Results come back in the order the cells were given, regardless of
        the order workers finish in.
        """
        start = time.perf_counter()
        cell_list = list(cells)
        seen_keys = set()
        for cell in cell_list:
            if cell.key in seen_keys:
                raise ConfigurationError(f"duplicate cell key {cell.key!r} in sweep grid")
            seen_keys.add(cell.key)

        # Partition into cache hits and pending work, de-duplicating cells
        # whose configs hash identically (they would produce the same result).
        assignments: Dict[str, str] = {}  # cell key -> fingerprint
        resolved: Dict[str, CellResult] = {}  # fingerprint -> result from store
        pending: Dict[str, SweepCell] = {}  # fingerprint -> first such cell
        for cell in cell_list:
            fingerprint = cell.fingerprint()
            assignments[cell.key] = fingerprint
            if fingerprint in resolved or fingerprint in pending:
                continue
            record = self.store.get(fingerprint) if self.store is not None else None
            if record is not None:
                resolved[fingerprint] = CellResult.from_json_dict(
                    cell.key, fingerprint, record["result"], from_cache=True
                )
                self._report(f"cell {cell.key}: cache hit")
            else:
                pending[fingerprint] = cell
        store_fingerprints = set(resolved)

        captures = self._resolve_captures(list(pending.values()))
        # Forked workers (and the inline path) read captures from the shared
        # module-level map; spawn workers need the payload inside the task.
        share_by_fork = self._mp_context == "fork"
        tasks: List[_Task] = []
        for cell in pending.values():
            injected = None
            if cell.capture is not None:
                fingerprint = cell.capture.fingerprint()
                if share_by_fork:
                    _FORKED_CAPTURES[fingerprint] = captures[fingerprint][0]
                else:
                    injected = captures[fingerprint][0]
            tasks.append(("cell", cell, injected))

        try:
            for outcome in self._fanout(tasks):
                if isinstance(outcome, _CellFailure):
                    raise SweepError(
                        f"sweep cell {outcome.key!r} failed: {outcome.error}\n"
                        f"--- worker traceback ---\n{outcome.worker_traceback}"
                    )
                resolved[outcome.fingerprint] = outcome
                if self.store is not None:
                    self.store.put(
                        outcome.fingerprint,
                        pending[outcome.fingerprint].config_dict(),
                        outcome.to_json_dict(),
                    )
                self._report(
                    f"cell {outcome.key}: simulated in {outcome.elapsed_seconds:.2f}s"
                )
        finally:
            _FORKED_CAPTURES.clear()

        hits = misses = deduplicated = 0
        for cell in cell_list:
            fingerprint = assignments[cell.key]
            if fingerprint in store_fingerprints:
                hits += 1
            elif cell is pending.get(fingerprint):
                misses += 1
            else:
                deduplicated += 1
        run_hits = sum(1 for _, from_cache in captures.values() if from_cache)
        run_captures = sum(1 for _, from_cache in captures.values() if not from_cache)
        self.cells_seen += len(cell_list)
        self.cache_hits += hits
        self.cache_misses += misses
        self.cells_deduplicated += deduplicated
        self.capture_hits += run_hits
        self.captures_simulated += run_captures

        results = {
            cell.key: replace(resolved[assignments[cell.key]], key=cell.key)
            for cell in cell_list
        }
        return SweepReport(
            results=results,
            hits=hits,
            misses=misses,
            deduplicated=deduplicated,
            capture_hits=run_hits,
            captures_simulated=run_captures,
            elapsed_seconds=time.perf_counter() - start,
        )

    def summary(self) -> str:
        """Accumulated accounting across every sweep this runner has run."""
        line = (
            f"sweep summary: {self.cells_seen} cells, {self.cache_misses} simulated, "
            f"{self.cache_hits} cache hits"
        )
        if self.cells_deduplicated:
            line += f", {self.cells_deduplicated} deduplicated"
        if self.captures_simulated or self.capture_hits:
            line += (
                f", {self.captures_simulated} gateway captures simulated, "
                f"{self.capture_hits} capture cache hits"
            )
        return line + f", jobs={self.jobs}"

    # -------------------------------------------------------------- internals
    def _resolve_captures(
        self, cells: List[SweepCell]
    ) -> Dict[str, Tuple[CaptureResult, bool]]:
        """Serve or simulate every distinct gateway capture the cells need.

        Returns fingerprint → (result, served_from_store).  Each distinct
        capture is computed at most once per sweep and persisted like a cell
        result (``kind="capture"``), so later sweeps — and other cells of
        this one — reuse it without touching the event simulator.
        """
        specs: Dict[str, CaptureSpec] = {}
        for cell in cells:
            if cell.capture is not None:
                specs.setdefault(cell.capture.fingerprint(), cell.capture)
        if not specs:
            return {}

        resolved: Dict[str, Tuple[CaptureResult, bool]] = {}
        to_run: List[CaptureSpec] = []
        for fingerprint, spec in specs.items():
            record = (
                self.store.get(fingerprint, kind="capture")
                if self.store is not None
                else None
            )
            if record is not None:
                resolved[fingerprint] = (
                    CaptureResult.from_json_dict(
                        spec.key, fingerprint, record["result"], from_cache=True
                    ),
                    True,
                )
                self._report(f"gateway capture {spec.key}: cache hit")
            else:
                to_run.append(spec)

        for outcome in self._fanout([("capture", spec) for spec in to_run]):
            if isinstance(outcome, _CellFailure):
                raise SweepError(
                    f"{outcome.unit} {outcome.key!r} failed: {outcome.error}\n"
                    f"--- worker traceback ---\n{outcome.worker_traceback}"
                )
            resolved[outcome.fingerprint] = (outcome, False)
            if self.store is not None:
                self.store.put(
                    outcome.fingerprint,
                    specs[outcome.fingerprint].config_dict(),
                    outcome.to_json_dict(),
                    kind="capture",
                )
            self._report(
                f"gateway capture {outcome.key}: simulated in {outcome.elapsed_seconds:.2f}s"
            )
        return resolved

    def _fanout(
        self, tasks: List[_Task]
    ) -> Iterator[Union[CellResult, CaptureResult, _CellFailure]]:
        """Execute tasks with bounded retries and an optional per-attempt timeout.

        Yields one terminal outcome per task, in completion order.  Inline
        execution (no pool) is used when there is nothing to parallelise and
        no timeout to enforce; otherwise tasks run under a worker pool with
        at most ``jobs`` in flight, so a per-attempt clock can start the
        moment a task is actually handed to a worker.
        """
        if not tasks:
            return
        attempts: Dict[int, int] = {i: 1 for i in range(len(tasks))}
        queue: deque = deque(enumerate(tasks))
        max_attempts = self.retries + 1

        use_pool = self.timeout is not None or (self.jobs > 1 and len(tasks) > 1)
        if not use_pool:
            while queue:
                index, task = queue.popleft()
                outcome = _execute_task(task)
                if isinstance(outcome, _CellFailure) and attempts[index] < max_attempts:
                    attempts[index] += 1
                    self._report(
                        f"{outcome.unit} {outcome.key}: failed, retrying "
                        f"(attempt {attempts[index]}/{max_attempts})"
                    )
                    queue.append((index, task))
                    continue
                yield outcome
            return

        context = multiprocessing.get_context(self._mp_context)
        while queue:
            workers = min(self.jobs, len(queue))
            pool = context.Pool(processes=workers)
            recycle_pool = False
            try:
                in_flight: Dict[int, Tuple] = {}  # index -> (async result, started, task)
                while queue or in_flight:
                    while queue and len(in_flight) < workers:
                        index, task = queue.popleft()
                        in_flight[index] = (
                            pool.apply_async(_execute_task, (task,)),
                            time.monotonic(),
                            task,
                        )
                    progressed = False
                    for index in [i for i, (a, _, _) in in_flight.items() if a.ready()]:
                        async_result, _, task = in_flight.pop(index)
                        outcome = async_result.get()
                        progressed = True
                        if (
                            isinstance(outcome, _CellFailure)
                            and attempts[index] < max_attempts
                        ):
                            attempts[index] += 1
                            self._report(
                                f"{outcome.unit} {outcome.key}: failed, retrying "
                                f"(attempt {attempts[index]}/{max_attempts})"
                            )
                            queue.append((index, task))
                        else:
                            yield outcome
                    if self.timeout is not None:
                        now = time.monotonic()
                        expired = [
                            i
                            for i, (a, started, _) in in_flight.items()
                            if now - started > self.timeout
                        ]
                        if expired:
                            # The stuck workers cannot be reclaimed: recycle
                            # the whole pool.  Expired tasks are charged an
                            # attempt; innocent in-flight tasks are requeued
                            # free and restart in the fresh pool.
                            for index in expired:
                                _, _, task = in_flight.pop(index)
                                unit = "gateway capture" if task[0] == "capture" else "cell"
                                if attempts[index] < max_attempts:
                                    attempts[index] += 1
                                    self._report(
                                        f"{unit} {_task_key(task)}: timed out after "
                                        f"{self.timeout:g}s, retrying "
                                        f"(attempt {attempts[index]}/{max_attempts})"
                                    )
                                    queue.append((index, task))
                                else:
                                    yield _CellFailure(
                                        key=_task_key(task),
                                        error=(
                                            f"timed out after {self.timeout:g}s "
                                            f"({max_attempts} attempt(s))"
                                        ),
                                        worker_traceback="(worker terminated on timeout)",
                                        unit=unit,
                                    )
                            for index, (_, _, task) in in_flight.items():
                                queue.append((index, task))
                            in_flight.clear()
                            recycle_pool = True
                            break
                    if not progressed and in_flight:
                        time.sleep(self._POLL_INTERVAL)
                if not recycle_pool:
                    return
            finally:
                pool.terminate()
                pool.join()

    def _report(self, line: str) -> None:
        if self._progress is not None:
            self._progress(line)


__all__ = ["SweepRunner", "SweepReport"]
