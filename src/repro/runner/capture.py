"""Two-level sweep cells: a cacheable gateway capture feeding cheap children.

In the ``hybrid`` collection mode the expensive part of a cell is the
event-driven gateway simulation; the analytic (M/D/1) network noise applied
afterwards costs microseconds.  Grids like Figure 8's 24-hour sweep evaluate
the *same* gateway under many different network conditions, so re-simulating
the gateway per grid point repeats identical work once per hour.

This module splits such cells in two:

* :class:`CaptureSpec` — the *parent*: one event-simulated gateway capture
  (both payload rates, both seed offsets), content-addressed by a fingerprint
  over exactly the fields the gateway simulation reads (policy, payload
  rates, disturbance, packet size, warmup, seed, offsets — **not** the hop
  count, link rate or utilization, which only affect the analytic noise).
  Capture results are cached in the :class:`~repro.runner.store.ResultsStore`
  like any other record, so a warm store performs **zero** gateway
  simulations.
* the *children* — ordinary :class:`~repro.runner.cells.SweepCell` objects
  carrying a ``capture`` reference; executing one applies the per-scenario
  network noise to the parent's intervals and mounts the attack.

Determinism contract: a child cell produces **bit-identical** numbers to a
self-contained hybrid cell with the same scenario, seed and seed offsets,
because the noise generators are derived from the same named random streams
(:class:`repro.sim.random.RandomStreams` derives streams from the master seed
and the stream *name* only, never from creation order).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.experiments.base import (
    CollectionMode,
    PaddedStreamCapture,
    ScenarioConfig,
    apply_analytic_network_noise,
    simulate_gateway_capture,
)
from repro.sim.random import RandomStreams
from repro.runner.fingerprint import fingerprint_payload

#: Scenario fields the gateway simulation actually reads.  Everything else
#: (hops, link rate, utilization) only affects the analytic network noise and
#: is deliberately excluded from the capture fingerprint, so one capture
#: serves every network condition of a grid.
GATEWAY_SCENARIO_FIELDS: Tuple[str, ...] = (
    "policy",
    "low_rate_pps",
    "high_rate_pps",
    "disturbance",
    "packet_size_bytes",
    "warmup_time",
)


def gateway_config_dict(scenario: ScenarioConfig) -> Dict[str, Any]:
    """The gateway-affecting subset of a scenario as JSON-able data."""
    full = asdict(scenario)
    subset = {name: full[name] for name in GATEWAY_SCENARIO_FIELDS}
    # The policy name is a display label; renaming must not cold the cache
    # (mirrors SweepCell.config_dict).
    subset["policy"].pop("name", None)
    return subset


@dataclass(frozen=True)
class CaptureSpec:
    """One schedulable gateway capture: the parent of two-level sweep cells.

    Attributes
    ----------
    key:
        Display label (progress lines and failure reports only); excluded
        from the fingerprint.
    scenario:
        The padded-link scenario.  Only the gateway-affecting fields enter
        the fingerprint (see :data:`GATEWAY_SCENARIO_FIELDS`).
    n_intervals:
        Gateway intervals captured per payload rate and seed offset.  Child
        cells may consume any prefix, so a larger capture serves smaller
        children.
    seed:
        Master random seed, shared with the child cells.
    seed_offsets:
        Stream-name tags for the training and test captures.
    """

    key: str
    scenario: ScenarioConfig
    n_intervals: int
    seed: int = 2003
    seed_offsets: Tuple[str, str] = ("train", "test")

    def __post_init__(self) -> None:
        if not isinstance(self.key, str) or not self.key:
            raise ConfigurationError(f"capture key={self.key!r} must be a non-empty string")
        object.__setattr__(self, "seed_offsets", tuple(str(o) for o in self.seed_offsets))
        if self.n_intervals < 3:
            raise ConfigurationError(
                f"n_intervals={self.n_intervals!r} must be >= 3 (children need n+1)"
            )
        if len(self.seed_offsets) != 2 or self.seed_offsets[0] == self.seed_offsets[1]:
            raise ConfigurationError(
                f"seed_offsets={self.seed_offsets!r} must be two distinct tags"
            )

    def config_dict(self) -> Dict[str, Any]:
        """The result-affecting configuration as plain JSON-able data."""
        from repro.runner.cells import SCHEMA_VERSION

        return {
            "schema": SCHEMA_VERSION,
            "kind": "gateway-capture",
            "scenario": gateway_config_dict(self.scenario),
            "n_intervals": self.n_intervals,
            "seed": self.seed,
            "seed_offsets": list(self.seed_offsets),
        }

    def fingerprint(self) -> str:
        """Content hash of :meth:`config_dict`; the capture's cache key."""
        return fingerprint_payload(self.config_dict())


@dataclass
class CaptureResult:
    """The gateway intervals produced by one executed :class:`CaptureSpec`.

    ``intervals`` maps seed offset → class label → gateway-egress PIATs.  The
    JSON payload is a few hundred kilobytes for figure-sized captures — far
    larger than a cell result, but amortised over every child that shares it.
    """

    key: str
    fingerprint: str
    intervals: Dict[str, Dict[str, np.ndarray]]
    elapsed_seconds: float = 0.0
    from_cache: bool = False

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-able payload for the results store."""
        return {
            "intervals": {
                offset: {label: [float(v) for v in values] for label, values in per_label.items()}
                for offset, per_label in self.intervals.items()
            },
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_json_dict(
        cls,
        key: str,
        fingerprint: str,
        payload: Dict[str, Any],
        from_cache: bool = True,
    ) -> "CaptureResult":
        """Rebuild a capture from a store record (inverse of :meth:`to_json_dict`)."""
        return cls(
            key=key,
            fingerprint=fingerprint,
            intervals={
                offset: {
                    label: np.asarray(values, dtype=float)
                    for label, values in per_label.items()
                }
                for offset, per_label in payload["intervals"].items()
            },
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            from_cache=from_cache,
        )


def run_capture(spec: CaptureSpec) -> CaptureResult:
    """Execute one gateway capture: the expensive half of a two-level cell.

    Pure function of the spec's fields, exactly like
    :func:`repro.runner.cells.run_cell` — which is what makes the capture
    cacheable and shareable across workers.
    """
    start = time.perf_counter()
    streams = RandomStreams(seed=spec.seed)
    intervals: Dict[str, Dict[str, np.ndarray]] = {}
    for offset in spec.seed_offsets:
        intervals[offset] = {}
        for label, rate in spec.scenario.rate_labels.items():
            intervals[offset][label] = simulate_gateway_capture(
                spec.scenario,
                rate,
                spec.n_intervals,
                streams,
                label=f"{offset}-{label}",
                with_network=False,
            )
    return CaptureResult(
        key=spec.key,
        fingerprint=spec.fingerprint(),
        intervals=intervals,
        elapsed_seconds=time.perf_counter() - start,
    )


def hybrid_captures_from_gateway(
    scenario: ScenarioConfig,
    n_intervals_per_class: int,
    seed: int,
    seed_offsets: Tuple[str, str],
    capture: CaptureResult,
    noise_offsets: Optional[Tuple[str, str]] = None,
) -> Dict[str, PaddedStreamCapture]:
    """Apply per-scenario analytic network noise to a shared gateway capture.

    Returns one :class:`PaddedStreamCapture` per seed offset.  Bit-identical
    to running :func:`repro.experiments.base.collect_labelled_intervals` in
    hybrid mode with the same ``(scenario, seed, seed_offset,
    noise_offset)``: the gateway intervals are the same simulation output,
    and the noise generator is the same named stream
    (``net-noise-<tag>-<label>``) of the same master seed.  ``noise_offsets``
    salts the noise streams independently of the gateway streams — grid
    points sharing one capture use a per-point salt so their network noise
    stays statistically independent.
    """
    noise_tags = noise_offsets if noise_offsets is not None else seed_offsets
    streams = RandomStreams(seed=seed)
    captures: Dict[str, PaddedStreamCapture] = {}
    for offset, noise_tag in zip(seed_offsets, noise_tags):
        if offset not in capture.intervals:
            raise ConfigurationError(
                f"gateway capture {capture.key!r} holds offsets "
                f"{sorted(capture.intervals)}, not {offset!r}"
            )
        per_label: Dict[str, np.ndarray] = {}
        for label in scenario.rate_labels:
            gateway = capture.intervals[offset].get(label)
            if gateway is None:
                raise ConfigurationError(
                    f"gateway capture {capture.key!r} has no class {label!r}"
                )
            if gateway.size < n_intervals_per_class + 1:
                raise ConfigurationError(
                    f"gateway capture {capture.key!r} holds {gateway.size} intervals; "
                    f"a child needs {n_intervals_per_class + 1}"
                )
            noisy = apply_analytic_network_noise(
                gateway[: n_intervals_per_class + 1],
                scenario,
                streams.get(f"net-noise-{noise_tag}-{label}"),
            )
            per_label[label] = noisy[:n_intervals_per_class]
        captures[offset] = PaddedStreamCapture(
            scenario=scenario, mode=CollectionMode.HYBRID, intervals=per_label
        )
    return captures


__all__ = [
    "GATEWAY_SCENARIO_FIELDS",
    "CaptureSpec",
    "CaptureResult",
    "gateway_config_dict",
    "hybrid_captures_from_gateway",
    "run_capture",
]
