"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError``, ``ValueError`` raised by NumPy,
etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A configuration object contains invalid or inconsistent values."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid internal state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or after the simulation horizon."""


class TrafficError(ReproError):
    """A traffic source or schedule was asked to do something impossible."""


class PaddingError(ReproError):
    """A padding gateway was misconfigured or driven outside its contract."""


class NetworkError(ReproError):
    """A network element (link, router, topology) is invalid."""


class AnalysisError(ReproError):
    """A statistical or analytical computation cannot be carried out."""


class SweepError(ReproError):
    """A sweep cell failed while running under the parallel sweep runner."""


class TrainingError(AnalysisError):
    """The adversary classifier cannot be trained from the supplied data."""


class NotFittedError(AnalysisError):
    """A model was used before being fitted/trained."""


__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SchedulingError",
    "TrafficError",
    "PaddingError",
    "NetworkError",
    "AnalysisError",
    "SweepError",
    "TrainingError",
    "NotFittedError",
]
