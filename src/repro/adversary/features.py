"""Feature statistics computed over a PIAT sample.

Section 3.3 step (1): the adversary selects a statistical feature of the
packet inter-arrival time to use for classification.  The paper studies three
— sample mean, sample variance and sample entropy — and this module adds two
robust dispersion statistics (median absolute deviation and interquartile
range) used by the extension benchmarks to ask whether an adversary could do
better than the paper's feature set under heavy cross traffic.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import AnalysisError
from repro.stats.descriptive import sample_mean, sample_variance
from repro.stats.entropy import moddemeijer_entropy
from repro.units import PAPER_TIMER_INTERVAL_S


class FeatureStatistic:
    """Interface: map a PIAT sample (1-D array of seconds) to one number."""

    #: Short identifier used in result tables ("mean", "variance", ...).
    name: str = "abstract"
    #: Smallest sample size for which the statistic is defined.
    min_sample_size: int = 1

    def compute(self, intervals: np.ndarray) -> float:
        """Value of the statistic on the given sample."""
        raise NotImplementedError

    def _validate(self, intervals: np.ndarray) -> np.ndarray:
        array = np.asarray(intervals, dtype=float)
        if array.ndim != 1:
            raise AnalysisError(f"feature {self.name!r} expects a 1-D sample")
        if array.size < self.min_sample_size:
            raise AnalysisError(
                f"feature {self.name!r} needs at least {self.min_sample_size} intervals, "
                f"got {array.size}"
            )
        return array

    def __call__(self, intervals: np.ndarray) -> float:
        return self.compute(intervals)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"


class MeanFeature(FeatureStatistic):
    """Sample mean of the PIAT sample (equation (17))."""

    name = "mean"
    min_sample_size = 1

    def compute(self, intervals: np.ndarray) -> float:
        return sample_mean(self._validate(intervals))


class VarianceFeature(FeatureStatistic):
    """Unbiased sample variance of the PIAT sample (equation (19))."""

    name = "variance"
    min_sample_size = 2

    def compute(self, intervals: np.ndarray) -> float:
        return sample_variance(self._validate(intervals))


class EntropyFeature(FeatureStatistic):
    """Histogram (Moddemeijer) sample entropy of the PIAT sample (equation (25)).

    Parameters
    ----------
    bin_width:
        Histogram bin width ``delta_h`` in seconds, held constant across an
        experiment.  The default — 1/200 of the paper's 10 ms timer interval,
        i.e. 50 microseconds — resolves the gateway-jitter scale differences
        between the low- and high-rate classes without producing an
        essentially empty histogram at practical sample sizes.
    """

    name = "entropy"
    min_sample_size = 2

    def __init__(self, bin_width: Optional[float] = None) -> None:
        if bin_width is None:
            bin_width = PAPER_TIMER_INTERVAL_S / 200.0
        if bin_width <= 0.0:
            raise AnalysisError("entropy bin_width must be positive")
        self.bin_width = float(bin_width)

    def compute(self, intervals: np.ndarray) -> float:
        return moddemeijer_entropy(self._validate(intervals), self.bin_width)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"EntropyFeature(bin_width={self.bin_width!r})"


class MedianAbsoluteDeviationFeature(FeatureStatistic):
    """Median absolute deviation: a highly outlier-resistant dispersion measure."""

    name = "mad"
    min_sample_size = 2

    def compute(self, intervals: np.ndarray) -> float:
        array = self._validate(intervals)
        return float(np.median(np.abs(array - np.median(array))))


class InterquartileRangeFeature(FeatureStatistic):
    """Interquartile range of the PIAT sample."""

    name = "iqr"
    min_sample_size = 4

    def compute(self, intervals: np.ndarray) -> float:
        array = self._validate(intervals)
        q75, q25 = np.percentile(array, [75.0, 25.0])
        return float(q75 - q25)


def default_features(entropy_bin_width: Optional[float] = None) -> Dict[str, FeatureStatistic]:
    """The paper's three feature statistics, keyed by name."""
    return {
        "mean": MeanFeature(),
        "variance": VarianceFeature(),
        "entropy": EntropyFeature(bin_width=entropy_bin_width),
    }


_EXTRA_FEATURES = {
    "mad": MedianAbsoluteDeviationFeature,
    "iqr": InterquartileRangeFeature,
}


def get_feature(name: str, entropy_bin_width: Optional[float] = None) -> FeatureStatistic:
    """Look up a feature statistic by name (paper features plus extensions)."""
    key = name.strip().lower()
    base = default_features(entropy_bin_width)
    if key in base:
        return base[key]
    if key in _EXTRA_FEATURES:
        return _EXTRA_FEATURES[key]()
    raise AnalysisError(
        f"unknown feature {name!r}; known features: "
        f"{sorted(list(base) + list(_EXTRA_FEATURES))}"
    )


__all__ = [
    "FeatureStatistic",
    "MeanFeature",
    "VarianceFeature",
    "EntropyFeature",
    "MedianAbsoluteDeviationFeature",
    "InterquartileRangeFeature",
    "default_features",
    "get_feature",
]
