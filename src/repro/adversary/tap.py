"""Passive network tap.

The paper's adversary dumps padded traffic with a hardware network analyser
(an Agilent J6841A).  Here the tap is an observer attached either directly to
the sender gateway's output (the adversary's best case — Figures 4 and 5) or
to a hop egress of the unprotected path (Figure 6 and the campus/WAN runs of
Figure 8).  It records only what a passive observer could see: the time at
which each packet passes the observation point.  It never reads packet kinds
or flow identifiers — those fields exist only for simulation bookkeeping, and
keeping the tap blind to them is part of the threat model.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import AnalysisError
from repro.sim.engine import Simulator
from repro.sim.random import derived_rng
from repro.traffic.packet import Packet


class Tap:
    """Records the observation times of packets passing one point on the wire.

    Parameters
    ----------
    simulator:
        Event engine; timestamps are read from its clock at the moment the
        packet passes the tap.
    capture_jitter_std:
        Optional standard deviation (seconds) of measurement noise added to
        every timestamp, modelling an imperfect capture card.  The paper's
        hardware analyser has sub-microsecond accuracy, so the default is 0.
    rng:
        Random stream used when ``capture_jitter_std > 0``.
    name:
        Label used in reports.
    """

    def __init__(
        self,
        simulator: Simulator,
        capture_jitter_std: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        name: str = "tap",
    ) -> None:
        if capture_jitter_std < 0.0:
            raise AnalysisError("capture_jitter_std must be >= 0")
        self.simulator = simulator
        self.capture_jitter_std = float(capture_jitter_std)
        self.rng = rng if rng is not None else derived_rng(f"tap-{name}")
        self.name = name
        self._timestamps: List[float] = []

    # ------------------------------------------------------------------ I/O
    def observe(self, packet: Packet) -> None:
        """Record the passage of one packet (the packet content is ignored)."""
        timestamp = self.simulator.now
        if self.capture_jitter_std > 0.0:
            timestamp += float(self.rng.normal(0.0, self.capture_jitter_std))
        self._timestamps.append(timestamp)

    __call__ = observe

    def __len__(self) -> int:
        return len(self._timestamps)

    def reset(self) -> None:
        """Discard everything captured so far."""
        self._timestamps.clear()

    # ------------------------------------------------------------ extraction
    @property
    def timestamps(self) -> np.ndarray:
        """Capture timestamps in observation order."""
        return np.asarray(self._timestamps, dtype=float)

    def intervals(self, since: Optional[float] = None) -> np.ndarray:
        """Packet inter-arrival times of the captured stream.

        Parameters
        ----------
        since:
            When given, only packets observed at or after this time are used —
            the standard way to discard a warm-up period.
        """
        stamps = self.timestamps
        if since is not None:
            stamps = stamps[stamps >= since]
        if stamps.size < 2:
            return np.empty(0, dtype=float)
        # Capture jitter can occasionally reorder two near-simultaneous
        # observations; a real analyser would still report non-negative
        # inter-arrival times, so sort before differencing.
        if self.capture_jitter_std > 0.0:
            stamps = np.sort(stamps)
        return np.diff(stamps)

    def piat_sample(self, sample_size: int, since: Optional[float] = None) -> np.ndarray:
        """The most recent ``sample_size`` PIATs (what the run-time attack uses).

        Raises
        ------
        AnalysisError
            If fewer than ``sample_size`` intervals have been captured.
        """
        if sample_size < 1:
            raise AnalysisError("sample_size must be >= 1")
        intervals = self.intervals(since=since)
        if intervals.size < sample_size:
            raise AnalysisError(
                f"tap {self.name!r} captured only {intervals.size} intervals; "
                f"{sample_size} requested"
            )
        return intervals[-sample_size:]

    def observed_rate_pps(self) -> float:
        """Average packet rate seen at the tap (sanity check: the padded rate)."""
        stamps = self.timestamps
        if stamps.size < 2:
            raise AnalysisError("need at least two observations to estimate a rate")
        span = float(stamps[-1] - stamps[0])
        if span <= 0.0:
            raise AnalysisError("all observations share one timestamp")
        return (stamps.size - 1) / span


__all__ = ["Tap"]
