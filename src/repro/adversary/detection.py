"""The full attack pipeline and empirical detection-rate measurement.

This module turns raw PIAT captures into the numbers the paper plots:

1. :func:`slice_into_samples` — cut a long captured interval stream into
   samples of the size the adversary will use at run time.
2. :func:`extract_feature_samples` — summarise each sample with a feature
   statistic, producing the labelled training/test feature values.
3. :func:`train_classifier` — off-line training of the KDE Bayes classifier.
4. :func:`empirical_detection_rate` — run-time classification of held-out
   samples and measurement of the detection rate (the paper's security
   metric: the probability that the adversary identifies the payload rate
   correctly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.adversary.bayes import KDEBayesClassifier
from repro.adversary.features import FeatureStatistic
from repro.exceptions import AnalysisError
from repro.stats.bootstrap import BootstrapResult, bootstrap_detection_rate_ci


def slice_into_samples(
    intervals: np.ndarray,
    sample_size: int,
    max_samples: Optional[int] = None,
    overlap: bool = False,
) -> List[np.ndarray]:
    """Cut an interval stream into consecutive samples of ``sample_size``.

    Parameters
    ----------
    intervals:
        Captured PIATs in observation order.
    sample_size:
        Number of intervals per sample (the paper's x-axis in Figure 4(b)).
    max_samples:
        Optional cap on the number of samples returned.
    overlap:
        When ``True``, samples are taken with 50 % overlap, which doubles the
        number of samples extractable from a capture at the price of
        correlation between them.  The experiments default to non-overlapping
        samples.
    """
    array = np.asarray(intervals, dtype=float)
    if array.ndim != 1:
        raise AnalysisError("intervals must be one-dimensional")
    if sample_size < 1:
        raise AnalysisError("sample_size must be >= 1")
    if array.size < sample_size:
        raise AnalysisError(
            f"capture holds {array.size} intervals; cannot form a sample of {sample_size}"
        )
    step = sample_size // 2 if overlap and sample_size > 1 else sample_size
    samples = []
    start = 0
    while start + sample_size <= array.size:
        samples.append(array[start : start + sample_size])
        start += step
        if max_samples is not None and len(samples) >= max_samples:
            break
    return samples


def extract_feature_samples(
    intervals: np.ndarray,
    feature: FeatureStatistic,
    sample_size: int,
    max_samples: Optional[int] = None,
    overlap: bool = False,
) -> np.ndarray:
    """Feature values of consecutive samples cut from an interval stream."""
    samples = slice_into_samples(intervals, sample_size, max_samples=max_samples, overlap=overlap)
    return np.array([feature.compute(sample) for sample in samples], dtype=float)


def train_classifier(
    training_intervals: Mapping[str, np.ndarray],
    feature: FeatureStatistic,
    sample_size: int,
    priors: Optional[Mapping[str, float]] = None,
    max_samples_per_class: Optional[int] = None,
    overlap: bool = False,
    bandwidth="silverman",
) -> KDEBayesClassifier:
    """Off-line training from labelled interval captures.

    ``training_intervals`` maps each class label (payload rate) to a long
    PIAT capture taken while that rate was active — exactly what the paper's
    adversary obtains by reconstructing the padding system in a lab.
    """
    features_per_class: Dict[str, np.ndarray] = {}
    for label, intervals in training_intervals.items():
        values = extract_feature_samples(
            intervals, feature, sample_size, max_samples=max_samples_per_class, overlap=overlap
        )
        if values.size < 2:
            raise AnalysisError(
                f"class {label!r}: only {values.size} training samples of size "
                f"{sample_size} could be formed; capture more traffic"
            )
        features_per_class[str(label)] = values
    classifier = KDEBayesClassifier(bandwidth=bandwidth)
    classifier.fit(features_per_class, priors=priors)
    return classifier


@dataclass
class DetectionResult:
    """Outcome of evaluating the attack on held-out samples.

    Attributes
    ----------
    feature_name:
        Which feature statistic the adversary used.
    sample_size:
        Number of PIATs per classified sample.
    detection_rate:
        Fraction of test samples whose payload rate was identified correctly
        (the paper's security metric).
    per_class_rates:
        Detection rate conditioned on the true class.
    confusion:
        ``confusion[true][predicted]`` counts.
    trials:
        Total number of classified samples.
    correct_flags:
        Per-trial correctness, in evaluation order (used for bootstrap CIs).
    """

    feature_name: str
    sample_size: int
    detection_rate: float
    per_class_rates: Dict[str, float]
    confusion: Dict[str, Dict[str, int]]
    trials: int
    correct_flags: List[bool] = field(default_factory=list, repr=False)

    def confidence_interval(
        self, confidence: float = 0.95, rng: Optional[np.random.Generator] = None
    ) -> BootstrapResult:
        """Bootstrap confidence interval of the detection rate."""
        return bootstrap_detection_rate_ci(self.correct_flags, confidence=confidence, rng=rng)


def empirical_detection_rate(
    classifier: KDEBayesClassifier,
    test_intervals: Mapping[str, np.ndarray],
    feature: FeatureStatistic,
    sample_size: int,
    max_samples_per_class: Optional[int] = None,
    overlap: bool = False,
) -> DetectionResult:
    """Run-time classification of held-out captures and detection-rate measurement."""
    labels = sorted(str(label) for label in test_intervals)
    confusion: Dict[str, Dict[str, int]] = {
        label: {predicted: 0 for predicted in classifier.labels} for label in labels
    }
    correct_flags: List[bool] = []
    for label in labels:
        values = extract_feature_samples(
            test_intervals[label],
            feature,
            sample_size,
            max_samples=max_samples_per_class,
            overlap=overlap,
        )
        if values.size == 0:
            raise AnalysisError(f"class {label!r}: no test samples could be formed")
        for value in values:
            predicted = classifier.classify(float(value))
            confusion[label][predicted] = confusion[label].get(predicted, 0) + 1
            correct_flags.append(predicted == label)
    per_class = {}
    for label in labels:
        total = sum(confusion[label].values())
        per_class[label] = confusion[label].get(label, 0) / total if total else float("nan")
    trials = len(correct_flags)
    rate = float(np.mean(correct_flags)) if trials else float("nan")
    return DetectionResult(
        feature_name=feature.name,
        sample_size=sample_size,
        detection_rate=rate,
        per_class_rates=per_class,
        confusion=confusion,
        trials=trials,
        correct_flags=correct_flags,
    )


def evaluate_attack(
    training_intervals: Mapping[str, np.ndarray],
    test_intervals: Mapping[str, np.ndarray],
    feature: FeatureStatistic,
    sample_size: int,
    priors: Optional[Mapping[str, float]] = None,
    max_samples_per_class: Optional[int] = None,
    overlap: bool = False,
) -> DetectionResult:
    """Convenience wrapper: train on one set of captures, evaluate on another."""
    classifier = train_classifier(
        training_intervals,
        feature,
        sample_size,
        priors=priors,
        max_samples_per_class=max_samples_per_class,
        overlap=overlap,
    )
    return empirical_detection_rate(
        classifier,
        test_intervals,
        feature,
        sample_size,
        max_samples_per_class=max_samples_per_class,
        overlap=overlap,
    )


__all__ = [
    "slice_into_samples",
    "extract_feature_samples",
    "train_classifier",
    "DetectionResult",
    "empirical_detection_rate",
    "evaluate_attack",
]
