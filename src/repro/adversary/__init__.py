"""The traffic-analysis adversary.

Implements the attack of Section 3.3 of the paper.  The adversary taps the
unprotected network between the two gateways, collects samples of the padded
stream's packet inter-arrival times (PIATs), summarises each sample with a
feature statistic (sample mean, sample variance or sample entropy), and uses
Bayes decision rules — trained off-line on labelled samples with Gaussian
kernel density estimates — to decide which payload rate is currently being
sent.

* :mod:`repro.adversary.tap` — passive capture of packet timings at any
  observation point.
* :mod:`repro.adversary.features` — the feature statistics.
* :mod:`repro.adversary.bayes` — KDE-based Bayes classifier (off-line
  training + run-time classification).
* :mod:`repro.adversary.detection` — the full attack pipeline and empirical
  detection-rate measurement.
* :mod:`repro.adversary.multiclass` — confusion matrices and the extension to
  more than two payload rates discussed in Section 6.
"""

from repro.adversary.bayes import KDEBayesClassifier
from repro.adversary.detection import (
    DetectionResult,
    empirical_detection_rate,
    evaluate_attack,
    extract_feature_samples,
    slice_into_samples,
    train_classifier,
)
from repro.adversary.features import (
    EntropyFeature,
    FeatureStatistic,
    InterquartileRangeFeature,
    MeanFeature,
    MedianAbsoluteDeviationFeature,
    VarianceFeature,
    default_features,
    get_feature,
)
from repro.adversary.multiclass import (
    confusion_matrix,
    evaluate_multiclass_attack,
    per_class_detection_rates,
)
from repro.adversary.tap import Tap

__all__ = [
    "Tap",
    "FeatureStatistic",
    "MeanFeature",
    "VarianceFeature",
    "EntropyFeature",
    "MedianAbsoluteDeviationFeature",
    "InterquartileRangeFeature",
    "default_features",
    "get_feature",
    "KDEBayesClassifier",
    "DetectionResult",
    "slice_into_samples",
    "extract_feature_samples",
    "train_classifier",
    "empirical_detection_rate",
    "evaluate_attack",
    "confusion_matrix",
    "per_class_detection_rates",
    "evaluate_multiclass_attack",
]
