"""Multi-rate extension and confusion-matrix utilities.

The paper evaluates the simple two-rate case and notes in Section 6 that the
technique "can be easily extended to multiple [rates] by performing more
off-line training".  The classifier in :mod:`repro.adversary.bayes` is already
label-count agnostic; this module adds the bookkeeping that multi-class
evaluation needs and a high-level driver used by the multi-class benchmark
and example.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.adversary.bayes import KDEBayesClassifier
from repro.adversary.detection import DetectionResult, empirical_detection_rate, train_classifier
from repro.adversary.features import FeatureStatistic
from repro.exceptions import AnalysisError


def sorted_labels(labels: "Sequence[str] | set") -> List[str]:
    """Unique class labels in canonical order: numeric when possible.

    Rate-class labels are numeric strings (``"2"``, ``"5.5"``, ``"10"``);
    lexicographic ordering would place ``"10"`` before ``"2"`` and scramble
    every rendered matrix row.  When every label parses as a number, sort by
    value (ties broken lexicographically, so the order stays total and
    deterministic); otherwise fall back to plain string order.
    """
    unique = sorted(set(map(str, labels)))
    try:
        return sorted(unique, key=float)
    except ValueError:
        return unique


def confusion_matrix(
    true_labels: Sequence[str], predicted_labels: Sequence[str]
) -> Dict[str, Dict[str, int]]:
    """Build ``matrix[true][predicted]`` counts from parallel label sequences.

    Rows and columns are ordered by :func:`sorted_labels` — numerically when
    all labels parse as numbers — so multi-rate matrices read low to high.
    """
    if len(true_labels) != len(predicted_labels):
        raise AnalysisError("true and predicted label sequences must have equal length")
    if not true_labels:
        raise AnalysisError("cannot build a confusion matrix from zero trials")
    labels = sorted_labels(set(map(str, true_labels)) | set(map(str, predicted_labels)))
    matrix: Dict[str, Dict[str, int]] = {t: {p: 0 for p in labels} for t in labels}
    for true, predicted in zip(true_labels, predicted_labels):
        matrix[str(true)][str(predicted)] += 1
    return matrix


def per_class_detection_rates(matrix: Mapping[str, Mapping[str, int]]) -> Dict[str, float]:
    """Per-class detection rate (recall) from a confusion matrix."""
    rates: Dict[str, float] = {}
    for true_label, row in matrix.items():
        total = sum(row.values())
        if total == 0:
            raise AnalysisError(f"class {true_label!r} has zero trials")
        rates[true_label] = row.get(true_label, 0) / total
    return rates


def overall_detection_rate(matrix: Mapping[str, Mapping[str, int]]) -> float:
    """Trial-weighted overall detection rate from a confusion matrix."""
    correct = 0
    total = 0
    for true_label, row in matrix.items():
        correct += row.get(true_label, 0)
        total += sum(row.values())
    if total == 0:
        raise AnalysisError("confusion matrix contains zero trials")
    return correct / total


def random_guessing_rate(n_classes: int, priors: Optional[Sequence[float]] = None) -> float:
    """Lower bound on the detection rate for an adversary with no information.

    With equal priors it is ``1 / m``; with unequal priors the best
    uninformed strategy always guesses the most probable class.
    """
    if n_classes < 2:
        raise AnalysisError("need at least two classes")
    if priors is None:
        return 1.0 / n_classes
    prior_array = np.asarray(list(priors), dtype=float)
    if prior_array.size != n_classes or np.any(prior_array <= 0.0):
        raise AnalysisError("priors must be positive and match n_classes")
    if not np.isclose(prior_array.sum(), 1.0):
        raise AnalysisError("priors must sum to 1")
    return float(prior_array.max())


def evaluate_multiclass_attack(
    training_intervals: Mapping[str, np.ndarray],
    test_intervals: Mapping[str, np.ndarray],
    feature: FeatureStatistic,
    sample_size: int,
    priors: Optional[Mapping[str, float]] = None,
    max_samples_per_class: Optional[int] = None,
) -> DetectionResult:
    """Train and evaluate the attack for an arbitrary number of payload rates.

    Identical to :func:`repro.adversary.detection.evaluate_attack`; it exists
    as a named entry point for the Section 6 extension so that examples and
    benchmarks read naturally, and it validates that the caller really passed
    more than two classes.
    """
    if len(training_intervals) < 3:
        raise AnalysisError(
            "evaluate_multiclass_attack expects more than two payload rates; "
            "use evaluate_attack for the two-rate case"
        )
    classifier: KDEBayesClassifier = train_classifier(
        training_intervals,
        feature,
        sample_size,
        priors=priors,
        max_samples_per_class=max_samples_per_class,
    )
    return empirical_detection_rate(
        classifier,
        test_intervals,
        feature,
        sample_size,
        max_samples_per_class=max_samples_per_class,
    )


__all__ = [
    "sorted_labels",
    "confusion_matrix",
    "per_class_detection_rates",
    "overall_detection_rate",
    "random_guessing_rate",
    "evaluate_multiclass_attack",
]
