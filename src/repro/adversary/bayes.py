"""KDE-based Bayes classifier (off-line training, run-time classification).

Section 3.3 of the paper: during off-line training the adversary reconstructs
the padding system, collects labelled feature samples for every candidate
payload rate, estimates the conditional feature PDFs ``f(s | omega_i)`` with a
Gaussian kernel estimator, and derives Bayes decision rules

``decide omega_i  if  f(s | omega_i) P(omega_i) >= f(s | omega_j) P(omega_j)``
for all ``j`` (equation (2)).

At run time a single feature value computed from a captured PIAT sample is
pushed through the rules.  The classifier below is agnostic to the number of
classes, so the two-rate evaluation and the Section 6 multi-rate extension use
the same code.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import NotFittedError, TrainingError
from repro.stats.kde import GaussianKDE


class KDEBayesClassifier:
    """Bayes decision rules over Gaussian-KDE class-conditional densities.

    Parameters
    ----------
    bandwidth:
        Bandwidth rule or value forwarded to
        :class:`repro.stats.kde.GaussianKDE` ("silverman" by default, the
        estimator referenced by the paper).
    """

    def __init__(self, bandwidth="silverman") -> None:
        self.bandwidth = bandwidth
        self._densities: Dict[str, GaussianKDE] = {}
        self._log_priors: Dict[str, float] = {}
        self._labels: List[str] = []

    # ------------------------------------------------------------- training
    def fit(
        self,
        training_features: Mapping[str, Sequence[float]],
        priors: Optional[Mapping[str, float]] = None,
    ) -> "KDEBayesClassifier":
        """Off-line training.

        Parameters
        ----------
        training_features:
            Mapping from class label (e.g. ``"low"``/``"high"`` or the rate in
            pps) to the labelled feature values collected for that class.
        priors:
            A-priori class probabilities ``P(omega_i)``.  Defaults to equal
            priors, the paper's evaluation setting.  They must sum to 1.

        Returns
        -------
        self, to allow ``classifier = KDEBayesClassifier().fit(...)``.
        """
        if len(training_features) < 2:
            raise TrainingError("need at least two classes to train a classifier")
        labels = [str(label) for label in training_features]
        if len(set(labels)) != len(labels):
            raise TrainingError("duplicate class labels in training data")

        if priors is None:
            prior_map = {label: 1.0 / len(labels) for label in labels}
        else:
            prior_map = {str(label): float(p) for label, p in priors.items()}
            if set(prior_map) != set(labels):
                raise TrainingError("priors must be given for exactly the training classes")
            if any(p <= 0.0 for p in prior_map.values()):
                raise TrainingError("priors must be strictly positive")
            total = sum(prior_map.values())
            if not np.isclose(total, 1.0, atol=1e-9):
                raise TrainingError(f"priors must sum to 1, got {total}")

        densities: Dict[str, GaussianKDE] = {}
        for label, values in training_features.items():
            sample = np.asarray(list(values), dtype=float)
            if sample.size < 2:
                raise TrainingError(
                    f"class {label!r} has only {sample.size} training samples; need >= 2"
                )
            if not np.all(np.isfinite(sample)):
                raise TrainingError(f"class {label!r} contains non-finite feature values")
            densities[str(label)] = GaussianKDE(sample, bandwidth=self.bandwidth)

        self._densities = densities
        self._log_priors = {label: float(np.log(prior_map[label])) for label in labels}
        self._labels = sorted(labels)
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return bool(self._densities)

    @property
    def labels(self) -> List[str]:
        """Class labels known to the classifier (sorted)."""
        self._require_fitted()
        return list(self._labels)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError("classifier has not been trained; call fit() first")

    # --------------------------------------------------------- classification
    def log_posteriors(self, feature_value: float) -> Dict[str, float]:
        """Unnormalised log posteriors ``log f(s|omega) + log P(omega)`` per class."""
        self._require_fitted()
        value = float(feature_value)
        return {
            label: float(self._densities[label].logpdf(value)) + self._log_priors[label]
            for label in self._labels
        }

    def posterior_probabilities(self, feature_value: float) -> Dict[str, float]:
        """Normalised posterior probabilities ``P(omega | s)`` per class."""
        log_posteriors = self.log_posteriors(feature_value)
        values = np.array(list(log_posteriors.values()))
        values -= values.max()
        weights = np.exp(values)
        weights /= weights.sum()
        return {label: float(w) for label, w in zip(log_posteriors.keys(), weights)}

    def classify(self, feature_value: float) -> str:
        """Apply the Bayes decision rule to a single feature value.

        Ties are broken deterministically in favour of the lexicographically
        smallest label, which keeps repeated runs identical.
        """
        log_posteriors = self.log_posteriors(feature_value)
        best_label = None
        best_value = -np.inf
        for label in self._labels:
            value = log_posteriors[label]
            if value > best_value:
                best_label, best_value = label, value
        assert best_label is not None
        return best_label

    def classify_many(self, feature_values: Iterable[float]) -> List[str]:
        """Classify a sequence of feature values."""
        return [self.classify(value) for value in feature_values]

    def decision_threshold(self, label_a: str, label_b: str, grid_points: int = 4001) -> float:
        """Approximate the boundary ``d`` where the two posteriors cross (Figure 2).

        Only meaningful for one-dimensional features with a single crossing,
        which holds for the Gaussian-like feature distributions in this
        problem.  Used by reports to visualise the decision geometry.
        """
        self._require_fitted()
        for label in (label_a, label_b):
            if label not in self._densities:
                raise TrainingError(f"unknown class label {label!r}")
        lows, highs = [], []
        for label in (label_a, label_b):
            grid = self._densities[label].grid(64)
            lows.append(grid[0])
            highs.append(grid[-1])
        grid = np.linspace(min(lows), max(highs), grid_points)
        diff = (
            self._densities[label_a].logpdf(grid) + self._log_priors[label_a]
            - self._densities[label_b].logpdf(grid) - self._log_priors[label_b]
        )
        sign_changes = np.where(np.diff(np.sign(diff)) != 0)[0]
        if sign_changes.size == 0:
            raise TrainingError(
                "posteriors never cross on the evaluation grid; classes may be "
                "perfectly separated or identical"
            )
        index = sign_changes[0]
        return float(0.5 * (grid[index] + grid[index + 1]))


__all__ = ["KDEBayesClassifier"]
