"""repro — reproduction of Fu et al., "Analytical and Empirical Analysis of
Countermeasures to Traffic Analysis Attacks" (ICPP 2003).

The package is organised as a small set of substrates (discrete-event
simulation kernel, traffic sources, link-padding gateways, an unprotected
network model, and a statistics toolbox) on top of which the paper's two
contributions are implemented:

* an **adversary** that recognises the hidden payload traffic rate from the
  packet inter-arrival times of the padded stream
  (:mod:`repro.adversary`), and
* an **analytical framework** giving closed-form detection-rate estimates
  and design guidelines for CIT/VIT link-padding systems
  (:mod:`repro.core`).

The :mod:`repro.experiments` subpackage wires everything together to
regenerate each figure of the paper's evaluation; see ``EXPERIMENTS.md`` at
the repository root for the paper-vs-measured comparison.
"""

from repro._version import __version__

__all__ = ["__version__"]
