"""Traffic substrate: packets, payload sources and rate schedules.

The paper's sender workstation emits *payload* packets at one of a small set
of discrete rates (10 pps or 40 pps in the evaluation).  This subpackage
provides:

* :class:`repro.traffic.packet.Packet` — the unit moved through gateways,
  links and routers.
* :mod:`repro.traffic.sources` — payload generators (constant bit rate,
  Poisson, on/off, Markov-modulated) that push packets into a sink such as a
  padding gateway or a router port.
* :mod:`repro.traffic.schedule` — payload-rate and load schedules, including
  the piecewise-constant two-rate schedule of the evaluation and the diurnal
  profile used for the 24-hour campus/WAN experiments (Figure 8).
* :mod:`repro.traffic.traces` — synthetic trace generation and simple
  (de)serialisation, standing in for the packet captures the authors took
  with a hardware analyser.
"""

from repro.traffic.packet import Packet, PacketKind
from repro.traffic.schedule import (
    ConstantRateSchedule,
    DiurnalProfile,
    PiecewiseConstantSchedule,
    TwoRateSchedule,
)
from repro.traffic.sources import (
    CBRSource,
    MMPPSource,
    OnOffSource,
    PoissonSource,
    TraceReplaySource,
)
from repro.traffic.traces import (
    generate_piat_trace,
    load_trace,
    save_trace,
    trace_from_timestamps,
)

__all__ = [
    "Packet",
    "PacketKind",
    "CBRSource",
    "PoissonSource",
    "OnOffSource",
    "MMPPSource",
    "TraceReplaySource",
    "ConstantRateSchedule",
    "TwoRateSchedule",
    "PiecewiseConstantSchedule",
    "DiurnalProfile",
    "generate_piat_trace",
    "save_trace",
    "load_trace",
    "trace_from_timestamps",
]
