"""Payload and cross-traffic sources.

Every source pushes :class:`~repro.traffic.packet.Packet` objects into a
*sink* — any callable accepting a packet, typically
:meth:`repro.padding.gateway.SenderGateway.accept_payload` or a router input
port.  Sources are built on :class:`repro.sim.process.PeriodicProcess`, so
they start/stop cleanly and draw their inter-packet gaps from their own named
random stream.

The evaluation uses constant-rate payload (the sender emits at 10 or 40 pps);
Poisson, on/off and Markov-modulated sources are provided both as cross
traffic generators and to exercise the padding system under burstier inputs
than the paper's, which several tests and ablation benchmarks do.

RNG-stream contract (relied on by the vectorized simulation kernel)
-------------------------------------------------------------------
:class:`PoissonSource` draws exactly one exponential gap per scheduled
emission, in emission order, from the ``rng`` it was constructed with, and
nothing else touches that stream.  The vectorized capture kernel
(:mod:`repro.sim.kernel`) regenerates the arrival process as one cumulative
sum of batched exponential draws and relies on that one-draw-per-gap
discipline for byte-identical arrival times; for the same reason the source
itself serves its gaps from a :class:`repro.sim.random.ChunkedDraws` buffer
when the rate is constant — same bit stream, a fraction of the numpy call
overhead.  Gaps are floored at ``1e-12`` (an exponential draw can round to
0.0) and that floor is part of the contract — the kernel applies the
identical ``np.maximum``.  Sources with mutable modulation state (on/off,
MMPP) interleave phase draws with gap draws on one stream and therefore
cannot be buffered or vectorized; they always run on the event engine.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.exceptions import TrafficError
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.random import ChunkedDraws, derived_rng
from repro.traffic.packet import Packet, PacketKind
from repro.traffic.schedule import ConstantRateSchedule, RateSchedule
from repro.units import PAPER_PACKET_SIZE_BYTES

PacketSink = Callable[[Packet], None]
RateLike = Union[float, RateSchedule]


def _as_schedule(rate: RateLike) -> RateSchedule:
    if isinstance(rate, RateSchedule):
        return rate
    return ConstantRateSchedule(float(rate))


class TrafficSource:
    """Common machinery for packet sources.

    Parameters
    ----------
    simulator:
        Event engine the source schedules itself on.
    sink:
        Callable receiving each emitted packet.
    rate:
        Either a fixed rate in packets/second or a
        :class:`~repro.traffic.schedule.RateSchedule`.
    rng:
        Random generator for stochastic gap distributions.  Deterministic
        sources ignore it but still accept it for interface uniformity.
    flow_id:
        Label recorded on every emitted packet.
    kind:
        Packet kind to stamp (payload by default; cross-traffic generators
        pass :attr:`PacketKind.CROSS`).
    packet_size_bytes:
        Size stamped on every packet.
    """

    def __init__(
        self,
        simulator: Simulator,
        sink: PacketSink,
        rate: RateLike,
        rng: Optional[np.random.Generator] = None,
        flow_id: str = "payload",
        kind: PacketKind = PacketKind.PAYLOAD,
        packet_size_bytes: int = PAPER_PACKET_SIZE_BYTES,
    ) -> None:
        if not callable(sink):
            raise TrafficError("sink must be callable")
        self.simulator = simulator
        self.sink = sink
        self.schedule = _as_schedule(rate)
        self.rng = rng if rng is not None else derived_rng(f"source-{flow_id}")
        self.flow_id = flow_id
        self.kind = kind
        self.packet_size_bytes = int(packet_size_bytes)
        self.packets_emitted = 0
        self._process = PeriodicProcess(
            simulator,
            interval_fn=self._next_interval,
            action=self._emit,
            name=f"{type(self).__name__}({flow_id})",
        )

    # -- interface -----------------------------------------------------------
    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin emitting packets."""
        self._process.start(initial_delay=initial_delay)

    def stop(self) -> None:
        """Stop emitting packets (idempotent)."""
        self._process.stop()

    @property
    def active(self) -> bool:
        """Whether the source is currently emitting."""
        return self._process.active

    # -- hooks ----------------------------------------------------------------
    def _current_rate(self) -> float:
        rate = self.schedule.rate_at(self.simulator.now)
        if rate < 0.0:
            raise TrafficError(f"schedule returned a negative rate: {rate!r}")
        return rate

    def _next_interval(self) -> float:
        """Delay until the next packet.  Subclasses implement the law."""
        raise NotImplementedError

    def _emit(self, now: float) -> None:
        packet = Packet(
            created_at=now,
            kind=self.kind,
            size_bytes=self.packet_size_bytes,
            flow_id=self.flow_id,
        )
        self.packets_emitted += 1
        self.sink(packet)


class CBRSource(TrafficSource):
    """Constant bit rate source: deterministic gaps of ``1 / rate`` seconds.

    This is the payload model of the paper's evaluation (the sender emits at
    exactly 10 pps or 40 pps).  If the rate schedule momentarily returns 0,
    the source idles by polling the schedule at ``idle_poll_interval``.
    """

    def __init__(self, *args, idle_poll_interval: float = 0.1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if idle_poll_interval <= 0.0:
            raise TrafficError("idle_poll_interval must be positive")
        self.idle_poll_interval = float(idle_poll_interval)

    def _next_interval(self) -> float:
        rate = self._current_rate()
        if rate == 0.0:
            return self.idle_poll_interval
        return 1.0 / rate

    def _emit(self, now: float) -> None:
        # Suppress emission while the schedule says "silent"; the process keeps
        # polling so it wakes up when the schedule turns the flow back on.
        if self._current_rate() == 0.0:
            return
        super()._emit(now)


class PoissonSource(TrafficSource):
    """Poisson process: exponential gaps with the scheduled mean rate."""

    def __init__(self, *args, idle_poll_interval: float = 0.1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if idle_poll_interval <= 0.0:
            raise TrafficError("idle_poll_interval must be positive")
        self.idle_poll_interval = float(idle_poll_interval)
        # With a constant rate the gap distribution never changes, so the
        # draws can be served from a chunked buffer — bit-identical to the
        # scalar calls (see the module docstring) but ~50x cheaper each.
        self._buffered_gaps: Optional[ChunkedDraws] = None
        if isinstance(self.schedule, ConstantRateSchedule):
            rate = self.schedule.rate_at(0.0)
            if rate > 0.0:
                self._buffered_gaps = ChunkedDraws(self.rng, "exponential", (1.0 / rate,))

    def _next_interval(self) -> float:
        rate = self._current_rate()
        if rate == 0.0:
            return self.idle_poll_interval
        if self._buffered_gaps is not None:
            gap = self._buffered_gaps.next()
        else:
            gap = float(self.rng.exponential(1.0 / rate))
        # The exponential can return 0.0 at double precision; nudge it so the
        # periodic-process invariant (strictly positive gaps) holds.
        return max(gap, 1e-12)

    def _emit(self, now: float) -> None:
        if self._current_rate() == 0.0:
            return
        super()._emit(now)


class OnOffSource(TrafficSource):
    """Exponential on/off source.

    During an ON period the source emits Poisson traffic at ``peak`` rate
    (the configured ``rate`` is interpreted as the peak); OFF periods are
    silent.  ON and OFF durations are exponentially distributed with the
    given means.  The long-run average rate is
    ``peak * mean_on / (mean_on + mean_off)``.
    """

    def __init__(
        self,
        simulator: Simulator,
        sink: PacketSink,
        rate: RateLike,
        mean_on_time: float,
        mean_off_time: float,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> None:
        if mean_on_time <= 0 or mean_off_time <= 0:
            raise TrafficError("mean on/off durations must be positive")
        super().__init__(simulator, sink, rate, rng=rng, **kwargs)
        self.mean_on_time = float(mean_on_time)
        self.mean_off_time = float(mean_off_time)
        self._on = True
        self._phase_ends_at = 0.0

    def start(self, initial_delay: Optional[float] = None) -> None:
        self._on = True
        self._phase_ends_at = self.simulator.now + float(self.rng.exponential(self.mean_on_time))
        super().start(initial_delay=initial_delay)

    def _advance_phases(self, now: float) -> None:
        while now >= self._phase_ends_at:
            self._on = not self._on
            mean = self.mean_on_time if self._on else self.mean_off_time
            self._phase_ends_at += float(self.rng.exponential(mean))

    def _next_interval(self) -> float:
        rate = self._current_rate()
        if rate == 0.0:
            return max(self.mean_off_time, 1e-6)
        return max(float(self.rng.exponential(1.0 / rate)), 1e-12)

    def _emit(self, now: float) -> None:
        self._advance_phases(now)
        if not self._on or self._current_rate() == 0.0:
            return
        super()._emit(now)

    @property
    def average_rate_pps(self) -> float:
        """Long-run mean emission rate implied by the on/off parameters."""
        peak = self.schedule.rate_at(0.0)
        duty = self.mean_on_time / (self.mean_on_time + self.mean_off_time)
        return peak * duty


class MMPPSource(TrafficSource):
    """Markov-modulated Poisson process with an arbitrary number of states.

    Parameters
    ----------
    state_rates_pps:
        Emission rate in each modulating state.
    mean_holding_times:
        Mean sojourn time (seconds, exponential) in each state.
    """

    def __init__(
        self,
        simulator: Simulator,
        sink: PacketSink,
        state_rates_pps: Sequence[float],
        mean_holding_times: Sequence[float],
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> None:
        rates = [float(r) for r in state_rates_pps]
        holds = [float(h) for h in mean_holding_times]
        if len(rates) != len(holds) or len(rates) < 2:
            raise TrafficError("need >= 2 states with matching rates and holding times")
        if any(r < 0 for r in rates) or any(h <= 0 for h in holds):
            raise TrafficError("state rates must be >= 0 and holding times > 0")
        super().__init__(simulator, sink, rates[0], rng=rng, **kwargs)
        self.state_rates = rates
        self.mean_holding_times = holds
        self._state = 0
        self._state_ends_at = 0.0

    def start(self, initial_delay: Optional[float] = None) -> None:
        self._state = 0
        self._state_ends_at = self.simulator.now + float(
            self.rng.exponential(self.mean_holding_times[0])
        )
        super().start(initial_delay=initial_delay)

    def _advance_state(self, now: float) -> None:
        while now >= self._state_ends_at:
            self._state = (self._state + 1) % len(self.state_rates)
            self._state_ends_at += float(
                self.rng.exponential(self.mean_holding_times[self._state])
            )

    def _current_rate(self) -> float:
        self._advance_state(self.simulator.now)
        return self.state_rates[self._state]

    def _next_interval(self) -> float:
        rate = self._current_rate()
        if rate == 0.0:
            return max(min(self.mean_holding_times), 1e-3)
        return max(float(self.rng.exponential(1.0 / rate)), 1e-12)

    def _emit(self, now: float) -> None:
        if self._current_rate() == 0.0:
            return
        super()._emit(now)

    @property
    def state(self) -> int:
        """Index of the current modulating state."""
        return self._state


class TraceReplaySource:
    """Replays a recorded list of packet emission timestamps.

    Stands in for feeding captured traces (e.g. from the paper's hardware
    analyser) back into the padding system.  Timestamps are absolute
    simulation times and must be non-decreasing.
    """

    def __init__(
        self,
        simulator: Simulator,
        sink: PacketSink,
        timestamps: Sequence[float],
        flow_id: str = "trace",
        kind: PacketKind = PacketKind.PAYLOAD,
        packet_size_bytes: int = PAPER_PACKET_SIZE_BYTES,
    ) -> None:
        stamps = np.asarray(list(timestamps), dtype=float)
        if stamps.size and np.any(np.diff(stamps) < 0.0):
            raise TrafficError("trace timestamps must be non-decreasing")
        if stamps.size and stamps[0] < simulator.now:
            raise TrafficError("trace starts in the simulator's past")
        self.simulator = simulator
        self.sink = sink
        self.timestamps = stamps
        self.flow_id = flow_id
        self.kind = kind
        self.packet_size_bytes = int(packet_size_bytes)
        self.packets_emitted = 0
        self._started = False

    def start(self) -> None:
        """Schedule every packet in the trace (one bulk heap insertion)."""
        if self._started:
            raise TrafficError("trace replay can only be started once")
        self._started = True
        stamps = [float(s) for s in self.timestamps]
        self.simulator.schedule_batch(
            stamps, self._emit, args_list=[(s,) for s in stamps]
        )

    def _emit(self, when: float) -> None:
        packet = Packet(
            created_at=when,
            kind=self.kind,
            size_bytes=self.packet_size_bytes,
            flow_id=self.flow_id,
        )
        self.packets_emitted += 1
        self.sink(packet)


__all__ = [
    "PacketSink",
    "TrafficSource",
    "CBRSource",
    "PoissonSource",
    "OnOffSource",
    "MMPPSource",
    "TraceReplaySource",
]
