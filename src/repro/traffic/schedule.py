"""Rate schedules: how a source's rate evolves over simulated time.

Schedules answer one question — "what is the target rate at time ``t``?" —
and are shared by payload sources (which alternate between the paper's low
and high rates) and by cross-traffic generators (which follow the diurnal
load profile used to model the campus/WAN experiments of Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import TrafficError
from repro.units import DAY, HOUR


class RateSchedule:
    """Interface: a mapping from simulation time to a non-negative rate."""

    def rate_at(self, time: float) -> float:
        """Target rate (packets per second) at simulation time ``time``."""
        raise NotImplementedError

    def mean_rate(self, start: float, end: float, resolution: int = 1000) -> float:
        """Average rate over ``[start, end]`` computed by dense sampling.

        Subclasses with analytic means override this; the default numeric
        version is good enough for reporting and tests.
        """
        if end <= start:
            raise TrafficError("schedule averaging window must have end > start")
        times = np.linspace(start, end, resolution)
        return float(np.mean([self.rate_at(t) for t in times]))


@dataclass(frozen=True)
class ConstantRateSchedule(RateSchedule):
    """A single fixed rate for the whole run."""

    rate_pps: float

    def __post_init__(self) -> None:
        if self.rate_pps < 0.0:
            raise TrafficError(f"rate must be >= 0, got {self.rate_pps!r}")

    def rate_at(self, time: float) -> float:
        return self.rate_pps

    def mean_rate(self, start: float, end: float, resolution: int = 1000) -> float:
        if end <= start:
            raise TrafficError("schedule averaging window must have end > start")
        return self.rate_pps


class PiecewiseConstantSchedule(RateSchedule):
    """A rate that changes at explicit breakpoints.

    Parameters
    ----------
    breakpoints:
        Sequence of ``(start_time, rate_pps)`` pairs sorted by start time.
        The first start time must be 0; each rate holds until the next
        breakpoint (the last one holds forever).
    """

    def __init__(self, breakpoints: Sequence[Tuple[float, float]]) -> None:
        if not breakpoints:
            raise TrafficError("need at least one (time, rate) breakpoint")
        times = [float(t) for t, _ in breakpoints]
        rates = [float(r) for _, r in breakpoints]
        if times[0] != 0.0:
            raise TrafficError("the first breakpoint must start at time 0")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise TrafficError("breakpoint times must be strictly increasing")
        if any(r < 0.0 for r in rates):
            raise TrafficError("rates must be >= 0")
        self._times = np.asarray(times)
        self._rates = np.asarray(rates)

    def rate_at(self, time: float) -> float:
        if time < 0.0:
            raise TrafficError(f"time must be >= 0, got {time!r}")
        index = int(np.searchsorted(self._times, time, side="right") - 1)
        return float(self._rates[index])

    @property
    def breakpoints(self) -> Sequence[Tuple[float, float]]:
        """The ``(time, rate)`` pairs defining this schedule."""
        return list(zip(self._times.tolist(), self._rates.tolist()))

    def mean_rate(self, start: float, end: float, resolution: int = 1000) -> float:
        if end <= start:
            raise TrafficError("schedule averaging window must have end > start")
        # Exact time-weighted average over the window.
        edges = np.concatenate(([start], self._times[(self._times > start) & (self._times < end)], [end]))
        total = 0.0
        for left, right in zip(edges[:-1], edges[1:]):
            total += self.rate_at(left) * (right - left)
        return total / (end - start)


class TwoRateSchedule(PiecewiseConstantSchedule):
    """The evaluation's payload model: the rate is either low or high.

    The paper treats each classification experiment as "the payload has been
    at one of the two rates for the whole observation window".  For
    end-to-end simulations we alternate between the two rates in blocks of
    ``dwell_time`` seconds, which produces labelled observation windows for
    training and testing.

    Parameters
    ----------
    low_rate_pps, high_rate_pps:
        The two payload rates (10 and 40 pps in the paper).
    dwell_time:
        Length of each constant-rate block in seconds.
    start_high:
        Whether the first block uses the high rate.
    total_time:
        Horizon for which to materialise blocks.
    """

    def __init__(
        self,
        low_rate_pps: float,
        high_rate_pps: float,
        dwell_time: float,
        total_time: float,
        start_high: bool = False,
    ) -> None:
        if low_rate_pps <= 0 or high_rate_pps <= 0:
            raise TrafficError("both payload rates must be positive")
        if high_rate_pps <= low_rate_pps:
            raise TrafficError("high rate must exceed low rate")
        if dwell_time <= 0 or total_time <= 0:
            raise TrafficError("dwell_time and total_time must be positive")
        self.low_rate_pps = float(low_rate_pps)
        self.high_rate_pps = float(high_rate_pps)
        self.dwell_time = float(dwell_time)
        self.total_time = float(total_time)
        breakpoints = []
        t = 0.0
        high = start_high
        while t < total_time:
            breakpoints.append((t, high_rate_pps if high else low_rate_pps))
            t += dwell_time
            high = not high
        super().__init__(breakpoints)

    def label_at(self, time: float) -> str:
        """Return ``"high"`` or ``"low"`` — the ground-truth class at ``time``."""
        return "high" if self.rate_at(time) == self.high_rate_pps else "low"


class DiurnalProfile(RateSchedule):
    """A 24-hour load profile, repeating daily.

    Models the qualitative day/night pattern of campus and Internet cross
    traffic in the Figure 8 experiments: load is lowest in the very early
    morning (~2:00 AM in the paper, where detection rates peaked) and highest
    during business hours.

    Parameters
    ----------
    base_rate_pps:
        Rate corresponding to a multiplier of 1.0.
    hourly_multipliers:
        24 non-negative multipliers, one per hour starting at midnight.
        Intermediate times are linearly interpolated so the profile is
        continuous.
    """

    #: A plausible enterprise/Internet daily shape: quiet at night, ramping
    #: through the morning, peaking mid-afternoon, tailing off in the evening.
    DEFAULT_MULTIPLIERS: Tuple[float, ...] = (
        0.25, 0.18, 0.15, 0.16, 0.20, 0.30,  # 00:00 - 05:00
        0.45, 0.65, 0.85, 1.00, 1.10, 1.15,  # 06:00 - 11:00
        1.10, 1.15, 1.20, 1.15, 1.05, 0.95,  # 12:00 - 17:00
        0.85, 0.75, 0.65, 0.55, 0.42, 0.32,  # 18:00 - 23:00
    )

    def __init__(
        self,
        base_rate_pps: float,
        hourly_multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    ) -> None:
        if base_rate_pps < 0.0:
            raise TrafficError("base rate must be >= 0")
        multipliers = np.asarray(hourly_multipliers, dtype=float)
        if multipliers.shape != (24,):
            raise TrafficError("hourly_multipliers must contain exactly 24 values")
        if np.any(multipliers < 0.0):
            raise TrafficError("multipliers must be >= 0")
        self.base_rate_pps = float(base_rate_pps)
        self._multipliers = multipliers

    def multiplier_at(self, time: float) -> float:
        """Interpolated load multiplier at simulation time ``time``."""
        if time < 0.0:
            raise TrafficError(f"time must be >= 0, got {time!r}")
        hour_of_day = (time % DAY) / HOUR
        lo = int(np.floor(hour_of_day)) % 24
        hi = (lo + 1) % 24
        frac = hour_of_day - np.floor(hour_of_day)
        return float((1.0 - frac) * self._multipliers[lo] + frac * self._multipliers[hi])

    def rate_at(self, time: float) -> float:
        return self.base_rate_pps * self.multiplier_at(time)

    @property
    def peak_rate_pps(self) -> float:
        """The largest hourly rate in the profile."""
        return float(self.base_rate_pps * np.max(self._multipliers))

    @property
    def trough_rate_pps(self) -> float:
        """The smallest hourly rate in the profile."""
        return float(self.base_rate_pps * np.min(self._multipliers))


__all__ = [
    "RateSchedule",
    "ConstantRateSchedule",
    "PiecewiseConstantSchedule",
    "TwoRateSchedule",
    "DiurnalProfile",
]
