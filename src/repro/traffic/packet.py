"""Packet model.

The paper assumes all packets on the padded link have a constant size and are
perfectly encrypted, so an observer can use *only* timing.  The
:class:`Packet` object nevertheless carries a ``kind`` and a ``flow_id`` so
that the simulation itself (and the tests) can distinguish payload from dummy
and from cross traffic — the adversary code never looks at these fields, which
is asserted by tests in ``tests/adversary``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.units import PAPER_PACKET_SIZE_BYTES

_packet_ids = itertools.count()


class PacketKind(enum.Enum):
    """What a packet carries.

    Only the simulation and the evaluation harness may inspect this; the
    adversary model treats every packet on the unprotected link identically
    (packets are assumed perfectly encrypted and of constant size).
    """

    PAYLOAD = "payload"
    DUMMY = "dummy"
    CROSS = "cross"


@dataclass
class Packet:
    """A single packet moving through the simulated system.

    Attributes
    ----------
    created_at:
        Simulation time at which the packet came into existence (payload
        generation time, dummy injection time, or cross-traffic emission
        time).
    kind:
        Payload, dummy (padding) or cross traffic.
    size_bytes:
        Packet size; constant by default per the paper's assumption.
    flow_id:
        Identifier of the generating source (useful when several cross
        traffic sources share a router).
    packet_id:
        Globally unique sequence number, assigned automatically.
    sent_at:
        Time the packet left the sender gateway (set by the gateway).
    received_at:
        Time the packet arrived at its final observation point (set by links
        or the receiver gateway).
    """

    created_at: float
    kind: PacketKind = PacketKind.PAYLOAD
    size_bytes: int = PAPER_PACKET_SIZE_BYTES
    flow_id: str = "payload"
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    sent_at: Optional[float] = None
    received_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes!r}")
        if self.created_at < 0.0:
            raise ValueError(f"creation time must be >= 0, got {self.created_at!r}")

    @property
    def is_dummy(self) -> bool:
        """True when this packet is padding rather than payload/cross traffic."""
        return self.kind is PacketKind.DUMMY

    @property
    def is_payload(self) -> bool:
        """True when this packet carries user data."""
        return self.kind is PacketKind.PAYLOAD

    @property
    def latency(self) -> float:
        """End-to-end latency (receive time minus creation time).

        Raises
        ------
        ValueError
            If the packet has not been received yet.
        """
        if self.received_at is None:
            raise ValueError("packet has not been received yet")
        return self.received_at - self.created_at

    def copy_for_retransmission(self, at_time: float) -> "Packet":
        """Create a fresh packet with the same classification attributes.

        Used by trace replay and by tests; the copy receives a new
        ``packet_id`` so identity-based bookkeeping stays correct.
        """
        return Packet(
            created_at=at_time,
            kind=self.kind,
            size_bytes=self.size_bytes,
            flow_id=self.flow_id,
        )


__all__ = ["Packet", "PacketKind"]
