"""Synthetic traces and trace (de)serialisation.

The original study dumped padded traffic with an Agilent J6841A analyser and
analysed the captures off-line.  In this reproduction, "traces" are simply
arrays of packet arrival timestamps (or of inter-arrival times) produced by
the simulator; this module generates synthetic ones directly from the
analytical PIAT model (useful for unit-testing the adversary without running
the full simulation) and saves/loads them in a small ``.npz`` container.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.exceptions import TrafficError
from repro.sim.random import derived_rng


@dataclass
class Trace:
    """A captured packet-timing trace.

    Attributes
    ----------
    timestamps:
        Absolute packet observation times in seconds, non-decreasing.
    metadata:
        Free-form experiment annotations (payload rate label, padding type,
        tap position, seed, ...).  Stored alongside the data on save.
    """

    timestamps: np.ndarray
    metadata: Dict[str, Union[str, float, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        stamps = np.asarray(self.timestamps, dtype=float)
        if stamps.ndim != 1:
            raise TrafficError("trace timestamps must be one-dimensional")
        if stamps.size >= 2 and np.any(np.diff(stamps) < 0.0):
            raise TrafficError("trace timestamps must be non-decreasing")
        self.timestamps = stamps

    def __len__(self) -> int:
        return int(self.timestamps.size)

    def intervals(self) -> np.ndarray:
        """Packet inter-arrival times (the adversary's raw observable)."""
        if self.timestamps.size < 2:
            return np.empty(0, dtype=float)
        return np.diff(self.timestamps)

    def duration(self) -> float:
        """Observation span in seconds."""
        if self.timestamps.size < 2:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    def mean_rate_pps(self) -> float:
        """Average observed packet rate."""
        duration = self.duration()
        if duration <= 0.0:
            raise TrafficError("trace too short to estimate a rate")
        return (len(self) - 1) / duration


def trace_from_timestamps(
    timestamps: np.ndarray, **metadata: Union[str, float, int]
) -> Trace:
    """Build a :class:`Trace` from raw timestamps plus metadata keywords."""
    return Trace(np.asarray(timestamps, dtype=float), dict(metadata))


def generate_piat_trace(
    n_packets: int,
    mean_interval: float,
    jitter_std: float,
    rng: Optional[np.random.Generator] = None,
    start_time: float = 0.0,
    **metadata: Union[str, float, int],
) -> Trace:
    """Generate a synthetic padded-traffic trace from the Gaussian PIAT model.

    Packet inter-arrival times are drawn i.i.d. from
    ``N(mean_interval, jitter_std^2)`` truncated at a small positive floor —
    exactly the model of Section 4 of the paper (equation (8) with all noise
    terms folded into a single normal).  This is the fastest way to produce
    labelled samples for the adversary's unit tests and for validating the
    closed-form detection-rate formulas without running the event simulator.

    Parameters
    ----------
    n_packets:
        Number of packets (the trace has ``n_packets - 1`` intervals).
    mean_interval:
        Mean PIAT in seconds (``tau``, 10 ms in the paper).
    jitter_std:
        Standard deviation of the PIAT in seconds
        (``sqrt(sigma_T^2 + sigma_gw^2 + sigma_net^2)``).
    rng:
        Random generator; a deterministic derived stream is used when
        omitted, so repeated calls return the same trace.
    start_time:
        Timestamp of the first packet.
    """
    if n_packets < 2:
        raise TrafficError("a trace needs at least two packets")
    if mean_interval <= 0.0:
        raise TrafficError("mean interval must be positive")
    if jitter_std < 0.0:
        raise TrafficError("jitter std must be >= 0")
    generator = rng if rng is not None else derived_rng("piat-trace")
    gaps = generator.normal(mean_interval, jitter_std, size=n_packets - 1)
    # Physical inter-arrival times cannot be negative; clip to a tiny floor.
    gaps = np.maximum(gaps, 1e-9)
    timestamps = start_time + np.concatenate(([0.0], np.cumsum(gaps)))
    meta: Dict[str, Union[str, float, int]] = {
        "mean_interval": float(mean_interval),
        "jitter_std": float(jitter_std),
        "synthetic": 1,
    }
    meta.update(metadata)
    return Trace(timestamps, meta)


def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Persist a trace to ``path`` (``.npz`` with a JSON metadata payload)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        timestamps=trace.timestamps,
        metadata=np.frombuffer(json.dumps(trace.metadata).encode("utf-8"), dtype=np.uint8),
    )
    # ``np.savez`` appends .npz if missing; report the real location.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        candidate = path.with_suffix(path.suffix + ".npz")
        if candidate.exists():
            path = candidate
        else:
            raise TrafficError(f"no trace file at {path}")
    with np.load(path) as data:
        timestamps = np.asarray(data["timestamps"], dtype=float)
        metadata_raw = bytes(data["metadata"].tobytes()) if "metadata" in data else b"{}"
    metadata = json.loads(metadata_raw.decode("utf-8")) if metadata_raw else {}
    return Trace(timestamps, metadata)


__all__ = [
    "Trace",
    "trace_from_timestamps",
    "generate_piat_trace",
    "save_trace",
    "load_trace",
]
