"""Command-line entry point, driven by the experiment registry.

``python -m repro`` (or the ``repro`` console script) is a thin veneer over
:mod:`repro.api`: every subcommand resolves experiments through the registry,
so a newly registered experiment — or a declarative scenario file — is
runnable without touching this module:

```
python -m repro list                          # registered experiments
python -m repro run fig6 --preset fast        # any registered experiment
python -m repro run fig6 --set trials=30 --set utilizations=0.1,0.3
python -m repro run ablation_tap --preset quick
python -m repro run --scenario my_wan.toml --jobs 4   # no Python needed
python -m repro fig4                          # legacy alias of 'run fig4'
python -m repro sweep --preset smoke --jobs 2 --cache-dir .sweep-cache
python -m repro sweep --experiments fig6 ablation_vit --scenario my_wan.toml
python -m repro sweep --preset fast --seeds 5 --ci    # mean ± 95% CI per point
python -m repro cache stats --cache-dir .sweep-cache  # store health counters
python -m repro cache compact --cache-dir .sweep-cache
python -m repro cache index --cache-dir .sweep-cache  # build/refresh the sqlite query index
python -m repro serve --cache-dir .sweep-cache        # JSON HTTP API over the indexed store
python -m repro bench run --pr pr6 --output BENCH_pr6.json
python -m repro bench compare BENCH_new.json BENCH_pr6.json --max-regression 0.2
```

Every run accepts ``--jobs`` (worker processes for independent grid cells),
``--cache-dir`` (a persistent :class:`repro.runner.ResultsStore`; re-running
the same grid against the same cache directory performs zero simulations),
``--seeds N`` (fan every grid point out over ``N`` consecutive master seeds
and report per-point means) and ``--ci`` (add a bootstrap confidence interval
column; needs ``--seeds`` >= 2 — rejected at argument-parse time otherwise).
``--set key=value`` overrides any field of the preset's configuration
dataclass; anything richer is done in Python against :mod:`repro.api`.

The legacy per-figure spellings (``repro fig4`` … ``repro fig8``) are aliases
of ``repro run <figure>`` and print byte-identical reports.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Sequence

from repro._version import __version__
from repro.api import (
    DEFAULT_SEED,
    PRESETS,
    ScenarioExperiment,
    ScenarioSpec,
    describe_experiment,
    get_experiment,
    list_experiments,
    parse_set_options,
    run_experiment,
)
from repro.exceptions import ConfigurationError, ReproError
from repro.runner import (
    BACKEND_NAMES,
    DEFAULT_MAX_REGRESSION,
    BenchResult,
    ResultsStore,
    SweepRunner,
    compare,
    resolve_jobs,
    run_bench,
    seed_range,
)
from repro.runner.backends.queue import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_POLL_INTERVAL,
)

#: Confidence level of the ``--ci`` bootstrap bands.
CI_CONFIDENCE = 0.95

#: Preset used when ``--preset`` is not given.
DEFAULT_PRESET = "fast"

#: The historical per-figure subcommands, kept as aliases of ``run <name>``.
LEGACY_FIGURES = ("fig4", "fig5", "fig6", "fig8")


def _parse_jobs_option(value: str):
    """``--jobs`` accepts a worker count or the literal ``auto``."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{value!r} is not an integer or 'auto'"
        ) from None


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    # Sentinel defaults (resolved in main) so scenario files can tell an
    # explicit --seed/--preset apart from the absent flag: a scenario keeps
    # its own seed unless the user explicitly overrides it, and --preset is
    # rejected there instead of being silently swallowed.
    parser.add_argument(
        "--preset",
        choices=PRESETS,
        default=None,
        help=f"fidelity/run-time preset (default: {DEFAULT_PRESET})",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help=f"master random seed (default: {DEFAULT_SEED}; an explicit value "
        "also overrides a scenario file's run.seed)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="N",
        help="run every grid point at N consecutive master seeds (starting at "
        "--seed) and report the per-point mean (default: 1, the historical "
        "single-seed layout)",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        # argparse %-formats help strings, so the percent sign is doubled.
        help=f"add a {CI_CONFIDENCE:.0%}".replace("%", "%%")
        + " bootstrap confidence interval per grid point (needs --seeds >= 2)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--jobs",
        type=_parse_jobs_option,
        default=1,
        metavar="N|auto",
        help="worker processes for independent sweep cells; 'auto' sizes to "
        "the CPUs actually available to this process (default: 1)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="process",
        help="execution backend: 'process' (worker pool, the default), "
        "'serial' (inline, no pool/pickle overhead — fastest for warm or "
        "small sweeps) or 'queue' (filesystem work queue under --cache-dir, "
        "executed by --jobs local workers and any external 'repro worker' "
        "processes; docs/distributed.md)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persist cell results under this directory; repeated runs with the "
        "same grid skip the simulation entirely",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures of Fu et al., ICPP 2003 (link-padding countermeasures).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    names = list_experiments()
    subcommands = parser.add_subparsers(
        dest="command",
        metavar="command",
        required=True,
        help="'run' any registered experiment or scenario file, 'list' the "
        "registry, 'sweep' several experiments at once, 'cache' for store "
        "maintenance, or a legacy figure alias",
    )

    subcommands.add_parser(
        "list", help="list the registered experiments and their summaries"
    )

    run_parser = subcommands.add_parser(
        "run",
        help="run one registered experiment (or a --scenario TOML file)",
    )
    run_parser.add_argument(
        "experiment",
        nargs="?",
        choices=names,
        metavar="EXPERIMENT",
        help=f"a registered experiment: {', '.join(names)}",
    )
    run_parser.add_argument(
        "--scenario",
        type=Path,
        default=None,
        metavar="FILE",
        help="run a declarative scenario file (TOML) instead of a registered "
        "experiment; the report ends with the sweep's cache accounting line",
    )
    run_parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one field of the preset's configuration (repeatable); "
        "tuples are comma-separated, e.g. --set utilizations=0.1,0.3",
    )
    _add_common_options(run_parser)

    for name in LEGACY_FIGURES:
        figure_parser = subcommands.add_parser(
            name, help=f"regenerate {name} of the paper (alias of 'run {name}')"
        )
        _add_common_options(figure_parser)

    sweep = subcommands.add_parser(
        "sweep",
        help="run several experiment grids through one parallel sweep runner",
    )
    _add_common_options(sweep)
    sweep.add_argument(
        "--experiments",
        "--figures",
        dest="figures",
        nargs="+",
        choices=names,
        default=list(LEGACY_FIGURES),
        metavar="NAME",
        help="registered experiments to pool into the sweep "
        f"(default: {' '.join(LEGACY_FIGURES)})",
    )
    sweep.add_argument(
        "--scenario",
        dest="scenarios",
        action="append",
        type=Path,
        default=[],
        metavar="FILE_OR_DIR",
        help="also pool the cells of a declarative scenario file, or of every "
        "*.toml inside a scenario directory (repeatable)",
    )

    bench = subcommands.add_parser(
        "bench",
        help="measure hot-path performance; write/compare BENCH_<pr>.json artifacts",
    )
    bench_sub = bench.add_subparsers(
        dest="bench_command",
        metavar="action",
        required=True,
        help="'run' the benchmark suite or 'compare' two artifacts",
    )
    bench_run = bench_sub.add_parser(
        "run", help="time the capture kernels, event engine and a quick sweep"
    )
    bench_run.add_argument(
        "--pr",
        default="local",
        help="label recorded in the artifact (e.g. pr6; default: local)",
    )
    bench_run.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the machine-readable artifact here (e.g. BENCH_pr6.json)",
    )
    bench_run.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="after running, compare against this committed artifact and exit "
        "non-zero on regression",
    )
    bench_run.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        metavar="FRAC",
        help="tolerated relative regression per metric for --baseline "
        f"(default: {DEFAULT_MAX_REGRESSION})",
    )
    bench_run.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless the vectorized kernel beats the event engine by at "
        "least this factor (CI uses 3; the target is 10)",
    )
    bench_run.add_argument(
        "--metric",
        dest="metrics",
        action="append",
        default=[],
        metavar="NAME",
        help="restrict the --baseline comparison to these metrics (repeatable; "
        "default: the machine-independent ratio metrics)",
    )
    bench_run.add_argument(
        "--repeats", type=int, default=3, help="timing repeats, best-of (default: 3)"
    )
    bench_run.add_argument(
        "--intervals",
        type=int,
        default=4000,
        help="intervals per class in the capture benchmark (default: 4000)",
    )
    bench_run.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help=f"master seed (default: {DEFAULT_SEED})"
    )
    bench_compare = bench_sub.add_parser(
        "compare", help="diff two benchmark artifacts with direction-aware tolerances"
    )
    bench_compare.add_argument("current", type=Path, help="the fresh BENCH json")
    bench_compare.add_argument("baseline", type=Path, help="the committed BENCH json")
    bench_compare.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        metavar="FRAC",
        help=f"tolerated relative regression per metric (default: {DEFAULT_MAX_REGRESSION})",
    )
    bench_compare.add_argument(
        "--metric",
        dest="metrics",
        action="append",
        default=[],
        metavar="NAME",
        help="compare only these metrics (repeatable; default: every shared metric)",
    )

    check = subcommands.add_parser(
        "check",
        help="run the static determinism analysis (RNG discipline, wall-clock, "
        "ordering, schema drift, protocol conformance; docs/determinism.md)",
    )
    check.add_argument(
        "--root",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory containing the repro/ package to check "
        "(default: this installation's own source tree)",
    )
    check.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="justified-suppressions file (default: analysis-baseline.toml "
        "next to the checked root)",
    )
    check.add_argument(
        "--no-baseline",
        action="store_true",
        help="report raw findings, ignoring any baseline (CI uses this on "
        "doctored trees to prove the rules still fire)",
    )
    check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="human-readable text or machine-readable JSON (default: text)",
    )
    check.add_argument(
        "--rule",
        dest="rules",
        action="append",
        default=[],
        metavar="ID",
        help="restrict the run to these rule ids (repeatable, e.g. --rule RNG001)",
    )
    check.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and their contracts, then exit",
    )

    cache = subcommands.add_parser(
        "cache",
        help="maintain a persistent results store",
    )
    cache.add_argument(
        "action",
        choices=("compact", "stats", "index"),
        help="compact: drop superseded duplicate records and fold a legacy "
        "flat results.jsonl into the sharded layout (also refreshes an "
        "existing sqlite index); stats: report record/shard counts, store "
        "size and schema versions; index: build or incrementally refresh "
        "the store's sqlite query index (index.sqlite, used by 'repro serve')",
    )
    cache.add_argument(
        "--cache-dir",
        type=Path,
        required=True,
        help="the results store to maintain",
    )

    worker = subcommands.add_parser(
        "worker",
        help="run a pull-based queue worker against a shared results store "
        "(claims work from <cache-dir>/queue/ until stopped; "
        "docs/distributed.md)",
    )
    worker.add_argument(
        "--cache-dir",
        type=Path,
        required=True,
        help="the results store whose queue/ directory this worker drains; "
        "must be the same directory (or mount) the sweep parent uses",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="stable identifier for heartbeat and lease files "
        "(default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--poll-interval",
        type=float,
        default=DEFAULT_POLL_INTERVAL,
        metavar="SEC",
        help=f"seconds to sleep when the queue is empty (default: {DEFAULT_POLL_INTERVAL})",
    )
    worker.add_argument(
        "--lease-timeout",
        type=float,
        default=DEFAULT_LEASE_TIMEOUT,
        metavar="SEC",
        help="heartbeat silence after which a sibling worker is presumed dead "
        f"and its leases are stolen (default: {DEFAULT_LEASE_TIMEOUT:g}; must "
        "match the sweep parent's setting)",
    )
    worker.add_argument(
        "--max-idle",
        type=float,
        default=None,
        metavar="SEC",
        help="exit after this many seconds without claimable work "
        "(default: run until interrupted)",
    )
    worker.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="exit after executing N queue entries (default: unlimited)",
    )

    queue_cmd = subcommands.add_parser(
        "queue",
        help="inspect or drain the filesystem work queue of a results store "
        "('drain' turns the pending_cells.jsonl backlog from POST /enqueue "
        "into computed, cached cells; docs/distributed.md)",
    )
    queue_cmd.add_argument(
        "action",
        choices=("drain", "status"),
        help="drain: queue every pending cell (fingerprint-verified) and "
        "merge worker results into the store; status: print queue counters",
    )
    queue_cmd.add_argument(
        "--cache-dir",
        type=Path,
        required=True,
        help="the results store whose queue (and pending_cells.jsonl) to use",
    )
    queue_cmd.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="local worker processes to spawn for the drain (default: 0 — "
        "rely on externally started 'repro worker' processes)",
    )
    queue_cmd.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="extra attempts granted to a failing cell before the drain "
        "aborts (default: 0)",
    )
    queue_cmd.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="abort the drain if entries are still outstanding after this "
        "many seconds (default: wait forever; set this when relying on "
        "external workers so an empty fleet fails loudly)",
    )
    queue_cmd.add_argument(
        "--lease-timeout",
        type=float,
        default=DEFAULT_LEASE_TIMEOUT,
        metavar="SEC",
        help="heartbeat silence after which a worker is presumed dead and its "
        f"leases are requeued (default: {DEFAULT_LEASE_TIMEOUT:g})",
    )

    serve = subcommands.add_parser(
        "serve",
        help="serve an indexed results store over a read-only JSON HTTP API "
        "(GET /experiments, /points, /point/<key>, /report/<name>; "
        "POST /enqueue; docs/serving.md)",
    )
    serve.add_argument(
        "--cache-dir",
        type=Path,
        required=True,
        help="the results store to serve; its sqlite index is built "
        "automatically when missing",
    )
    serve.add_argument(
        "--host",
        default=None,
        help="interface to bind (default: loopback only)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port to listen on (default: 8321; 0 picks a free port)",
    )
    return parser


def _validate_args(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """Cross-option validation, reported as argparse errors (exit code 2).

    Doing this at parse time means ``repro run fig8 --ci`` fails in
    milliseconds with usage text instead of deep inside the experiment.
    """
    if getattr(args, "seeds", 1) < 1:
        parser.error(f"--seeds {args.seeds} must be >= 1")
    if getattr(args, "ci", False) and args.seeds < 2:
        parser.error(
            "--ci requires --seeds >= 2: a confidence interval needs repeated "
            "trials per grid point"
        )
    if args.command == "run":
        if (args.experiment is None) == (args.scenario is None):
            parser.error(
                "exactly one of EXPERIMENT or --scenario FILE is required "
                "(see 'repro list' for registered experiments)"
            )
        if args.scenario is not None and args.overrides:
            parser.error(
                "--set overrides apply to registered experiments only; edit "
                "the scenario file instead"
            )
        if args.scenario is not None and args.preset is not None:
            parser.error(
                "--preset applies to registered experiments only; a scenario "
                "file's [run] table is its configuration (--seed and --seeds "
                "do apply)"
            )


def _render_list() -> str:
    names = list_experiments()
    width = max(len(name) for name in names)
    lines = ["registered experiments (repro run <name> [--preset ...]):", ""]
    lines += [f"  {name.ljust(width)}  {describe_experiment(name)}" for name in names]
    lines += [
        "",
        f"presets: {', '.join(PRESETS)}",
        "scenario files: repro run --scenario FILE.toml (see docs/api.md)",
    ]
    return "\n".join(lines)


def _run_bench_command(args: argparse.Namespace) -> int:
    """``repro bench run`` / ``repro bench compare``; returns the exit code.

    Handled outside the generic report plumbing because ``--output`` here
    names the JSON artifact (not a text report) and a regression must map to
    a non-zero exit code for CI, not to usage error 2.
    """
    from repro.runner import RATIO_METRICS

    if args.bench_command == "compare":
        comparison = compare(
            BenchResult.load(args.current),
            BenchResult.load(args.baseline),
            max_regression=args.max_regression,
            metrics=args.metrics or None,
        )
        print(comparison.to_text())
        return 0 if comparison.ok else 1

    result = run_bench(
        args.pr,
        seed=args.seed,
        capture_intervals=args.intervals,
        repeats=args.repeats,
    )
    print(result.to_text())
    if args.output is not None:
        result.save(args.output)
        print(f"benchmark artifact written to {args.output}")
    exit_code = 0
    if args.min_speedup is not None:
        speedup = result.metrics["cold_capture_speedup"]
        if speedup < args.min_speedup:
            print(
                f"FAIL: cold_capture_speedup {speedup:.2f}x is below the "
                f"required {args.min_speedup:g}x",
                file=sys.stderr,
            )
            exit_code = 1
        else:
            print(f"speedup gate passed: {speedup:.2f}x >= {args.min_speedup:g}x")
    if args.baseline is not None:
        comparison = compare(
            result,
            BenchResult.load(args.baseline),
            max_regression=args.max_regression,
            metrics=args.metrics or list(RATIO_METRICS),
        )
        print(comparison.to_text())
        if not comparison.ok:
            exit_code = 1
    return exit_code


def _run_check_command(args: argparse.Namespace) -> int:
    """``repro check``; returns the exit code (0 clean, 1 findings).

    Handled outside the generic report plumbing because findings must map
    to exit code 1 for CI (2 stays reserved for usage/configuration
    errors, matching the rest of the CLI).
    """
    from repro.analysis import all_rules
    from repro.analysis.checker import run_check

    if args.list_rules:
        rules = all_rules()
        width = max(len(rule.rule_id) for rule in rules)
        lines = ["registered determinism rules (docs/determinism.md):", ""]
        lines += [f"  {rule.rule_id.ljust(width)}  {rule.title}" for rule in rules]
        print("\n".join(lines))
        return 0
    report = run_check(
        root=args.root,
        baseline_path=args.baseline,
        use_baseline=not args.no_baseline,
        rule_filter=args.rules or None,
    )
    print(report.to_json() if args.format == "json" else report.to_text())
    return report.exit_code


def _run_cache_command(args: argparse.Namespace) -> str:
    from repro.store import StoreIndex

    store = ResultsStore(args.cache_dir)
    if args.action == "index":
        return f"cache index: {StoreIndex(args.cache_dir).refresh()}"
    if args.action == "compact":
        report = f"cache compact: {store.compact()}"
        index = StoreIndex(args.cache_dir)
        if index.path.exists():
            # Compaction rewrites shard files; an existing index would be
            # stale (every rewritten file re-scans), so refresh it in the
            # same maintenance pass.
            report += f"\ncache index: {index.refresh()}"
        return report
    return f"cache stats: {store.stats()}"


def _run_worker_command(args: argparse.Namespace) -> int:
    """``repro worker``; blocks until stopped, idle-timeout or task budget."""
    from repro.runner.backends.queue import run_worker

    try:
        executed = run_worker(
            args.cache_dir,
            worker_id=args.worker_id,
            poll_interval=args.poll_interval,
            lease_timeout=args.lease_timeout,
            max_idle=args.max_idle,
            max_tasks=args.max_cells,
            progress=print,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        return 0
    print(f"worker done: {executed} task(s) executed")
    return 0


def _run_queue_command(args: argparse.Namespace) -> int:
    """``repro queue drain`` / ``repro queue status``."""
    from repro.runner.backends.queue import WorkQueue, drain_pending

    store = ResultsStore(args.cache_dir)
    if args.action == "status":
        counters = WorkQueue(store.root).status(args.lease_timeout)
        print(
            "queue status: "
            + ", ".join(f"{name}={value}" for name, value in counters.items())
        )
        return 0
    report = drain_pending(
        store.root,
        workers=args.workers,
        retries=args.retries,
        timeout=args.timeout,
        lease_timeout=args.lease_timeout,
        progress=print,
    )
    print(f"queue drain: {report}")
    return 0


def _run_serve_command(args: argparse.Namespace) -> int:
    """``repro serve``; blocks until interrupted (returns 0 on Ctrl-C)."""
    from repro.store import DEFAULT_HOST, DEFAULT_PORT, StoreIndex, create_server

    index = StoreIndex(args.cache_dir)
    if not index.path.exists():
        print(f"cache index: {index.refresh()}")
    server = create_server(
        args.cache_dir,
        host=args.host if args.host is not None else DEFAULT_HOST,
        port=args.port if args.port is not None else DEFAULT_PORT,
    )
    host, port = server.server_address[:2]
    print(f"serving {args.cache_dir} on http://{host}:{port} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
    return 0


def _load_scenario(path: Path, explicit_seed: Optional[int]) -> ScenarioExperiment:
    """A scenario experiment from a file, honouring an explicit ``--seed``.

    Scenario files own their run settings, so the spec's ``run.seed`` wins
    unless the user explicitly passed ``--seed`` on the command line.
    """
    spec = ScenarioSpec.from_toml(path)
    if explicit_seed is not None:
        spec = replace(spec, seed=explicit_seed)
    return ScenarioExperiment(spec)


def _expand_scenario_paths(paths: Sequence[Path]) -> List[Path]:
    """Scenario arguments with directories expanded to their ``*.toml`` files.

    A directory is a *scenario suite*: every ``*.toml`` inside pools into
    the sweep, in sorted filename order so the combined report is stable
    across filesystems.
    """
    expanded: List[Path] = []
    for path in paths:
        if path.is_dir():
            found = sorted(path.glob("*.toml"))
            if not found:
                raise ConfigurationError(
                    f"scenario directory {str(path)!r} contains no *.toml files"
                )
            expanded.extend(found)
        else:
            expanded.append(path)
    return expanded


def _scenario_seeds(experiment: ScenarioExperiment, count: int):
    """A scenario's multi-seed fan-out, based on its own (resolved) seed."""
    if count > 1:
        return seed_range(experiment.spec.seed, count)
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the CLI; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate_args(parser, args)
    try:
        if args.command == "list":
            report = _render_list()
        elif args.command == "bench":
            return _run_bench_command(args)
        elif args.command == "check":
            return _run_check_command(args)
        elif args.command == "cache":
            report = _run_cache_command(args)
        elif args.command == "serve":
            return _run_serve_command(args)
        elif args.command == "worker":
            return _run_worker_command(args)
        elif args.command == "queue":
            return _run_queue_command(args)
        else:
            preset = args.preset if args.preset is not None else DEFAULT_PRESET
            seed = args.seed if args.seed is not None else DEFAULT_SEED
            seeds = seed_range(seed, args.seeds) if args.seeds > 1 else None
            confidence = CI_CONFIDENCE if args.ci else None
            store = ResultsStore(args.cache_dir) if args.cache_dir is not None else None
            runner = SweepRunner(
                jobs=resolve_jobs(args.jobs), store=store, backend=args.backend
            )

            if args.command == "sweep":
                # One combined runner call: every selected experiment's cells
                # share the worker pool, so e.g. fig4's single cell runs
                # alongside fig8's 24-hour grid instead of serialising per
                # experiment.  Each experiment keeps its own seed base — the
                # CLI seed for registered experiments, the spec's run.seed
                # for scenario files (unless --seed was given explicitly) —
                # so the --seeds fan-out never silently reseeds a scenario.
                pooled: List = [
                    (get_experiment(name, preset, seed), seeds)
                    for name in args.figures
                ]
                for path in _expand_scenario_paths(args.scenarios):
                    experiment = _load_scenario(path, args.seed)
                    pooled.append((experiment, _scenario_seeds(experiment, args.seeds)))
                all_cells = [
                    cell
                    for experiment, its_seeds in pooled
                    for cell in experiment.cells(its_seeds)
                ]
                combined = runner.run(all_cells)
                reports = [
                    experiment.assemble(
                        combined, seeds=its_seeds, confidence=confidence
                    ).to_text()
                    for experiment, its_seeds in pooled
                ]
                report = "\n\n".join(reports) + "\n\n" + runner.summary()
            elif args.command == "run" and args.scenario is not None:
                experiment = _load_scenario(args.scenario, args.seed)
                outcome = run_experiment(
                    experiment,
                    runner=runner,
                    seeds=_scenario_seeds(experiment, args.seeds),
                    confidence=confidence,
                )
                report = outcome.to_text() + "\n" + runner.summary()
            else:
                # 'run NAME' and the legacy figure aliases share one code
                # path, which is what keeps their reports byte-identical.
                name = args.experiment if args.command == "run" else args.command
                overrides = parse_set_options(getattr(args, "overrides", []))
                experiment = get_experiment(
                    name, preset, seed, overrides=overrides or None
                )
                outcome = run_experiment(
                    experiment,
                    runner=runner,
                    seeds=seeds,
                    confidence=confidence,
                    preset=preset,
                    overrides=overrides,
                )
                report = outcome.to_text()
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2

    print(report)
    output = getattr(args, "output", None)
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(report)
        print(f"report written to {output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())


__all__ = [
    "build_parser",
    "main",
    "CI_CONFIDENCE",
    "DEFAULT_PRESET",
    "LEGACY_FIGURES",
    "PRESETS",
]
