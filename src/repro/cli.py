"""Command-line entry point: regenerate any of the paper's figures.

``python -m repro <figure> [options]`` runs one experiment with a
configuration scaled by ``--preset`` and prints the regenerated rows:

```
python -m repro fig4                   # full event simulation, paper-like sizes
python -m repro fig5 --preset quick    # small/fast configuration
python -m repro fig6 --preset fast     # hybrid network model, full sweep
python -m repro fig8 --seed 7 --output fig8.txt
```

The CLI is a thin veneer over :mod:`repro.experiments`; anything beyond
preset/seed/output selection is done in Python against the ``Fig*Config``
dataclasses directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from repro._version import __version__
from repro.experiments import (
    CollectionMode,
    Fig4Config,
    Fig4Experiment,
    Fig5Config,
    Fig5Experiment,
    Fig6Config,
    Fig6Experiment,
    Fig8Config,
    Fig8Experiment,
)

#: Presets trade fidelity against run time.  ``paper`` uses full event
#: simulation with figure-like sample sizes; ``fast`` switches the network to
#: the hybrid/analytic models; ``quick`` additionally shrinks the sweeps so
#: every figure finishes in a few seconds (used by the CLI tests).
PRESETS = ("paper", "fast", "quick")


def _fig4_config(preset: str, seed: int) -> Fig4Config:
    if preset == "paper":
        return Fig4Config(seed=seed)
    if preset == "fast":
        return Fig4Config(trials=20, mode=CollectionMode.ANALYTIC, seed=seed)
    return Fig4Config(
        sample_sizes=(50, 200, 1000), trials=10, mode=CollectionMode.ANALYTIC, seed=seed
    )


def _fig5_config(preset: str, seed: int) -> Fig5Config:
    if preset == "paper":
        return Fig5Config(seed=seed)
    if preset == "fast":
        return Fig5Config(trials=12, mode=CollectionMode.ANALYTIC, seed=seed)
    return Fig5Config(
        sigma_t_values=(0.0, 1e-4, 1e-3),
        sample_size=500,
        trials=8,
        mode=CollectionMode.ANALYTIC,
        seed=seed,
    )


def _fig6_config(preset: str, seed: int) -> Fig6Config:
    if preset == "paper":
        return Fig6Config(seed=seed)
    if preset == "fast":
        return Fig6Config(trials=15, mode=CollectionMode.HYBRID, seed=seed)
    return Fig6Config(
        utilizations=(0.05, 0.4),
        sample_size=400,
        trials=8,
        mode=CollectionMode.HYBRID,
        seed=seed,
    )


def _fig8_config(preset: str, seed: int) -> Fig8Config:
    if preset == "paper":
        return Fig8Config(seed=seed)
    if preset == "fast":
        return Fig8Config(trials=15, mode=CollectionMode.HYBRID, seed=seed)
    return Fig8Config(
        hours=(2, 14),
        sample_size=400,
        trials=8,
        mode=CollectionMode.HYBRID,
        seed=seed,
    )


_FIGURES: Dict[str, Callable[[str, int], object]] = {
    "fig4": lambda preset, seed: Fig4Experiment(_fig4_config(preset, seed)).run(),
    "fig5": lambda preset, seed: Fig5Experiment(_fig5_config(preset, seed)).run(),
    "fig6": lambda preset, seed: Fig6Experiment(_fig6_config(preset, seed)).run(),
    "fig8": lambda preset, seed: Fig8Experiment(_fig8_config(preset, seed)).run(),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate a figure of Fu et al., ICPP 2003 (link-padding countermeasures).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "figure",
        choices=sorted(_FIGURES),
        help="which evaluation figure to regenerate",
    )
    parser.add_argument(
        "--preset",
        choices=PRESETS,
        default="fast",
        help="fidelity/run-time preset (default: fast)",
    )
    parser.add_argument("--seed", type=int, default=2003, help="master random seed")
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the report to this file",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the CLI; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    result = _FIGURES[args.figure](args.preset, args.seed)
    report = result.to_text()
    print(report)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(report)
        print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())


__all__ = ["build_parser", "main", "PRESETS"]
