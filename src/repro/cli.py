"""Command-line entry point: regenerate the paper's figures, serially or swept.

``python -m repro <figure> [options]`` runs one experiment with a
configuration scaled by ``--preset`` and prints the regenerated rows;
``python -m repro sweep`` runs several figure grids through the parallel
sweep runner in one go; ``python -m repro cache`` maintains a persistent
results store:

```
python -m repro fig4                        # full event simulation, paper-like sizes
python -m repro fig5 --preset quick         # small/fast configuration
python -m repro fig6 --preset fast --jobs 4 # hybrid sweep across 4 worker processes
python -m repro fig8 --seed 7 --output fig8.txt
python -m repro sweep --preset smoke --jobs 2 --cache-dir .sweep-cache
python -m repro sweep --figures fig6 fig8 --preset fast --jobs 8
python -m repro sweep --preset fast --seeds 5 --ci        # mean ± 95% CI per grid point
python -m repro cache compact --cache-dir .sweep-cache    # drop superseded records
```

Every figure command accepts ``--jobs`` (worker processes for independent
grid cells), ``--cache-dir`` (a persistent :class:`repro.runner.ResultsStore`;
re-running the same grid against the same cache directory performs zero
simulations), ``--seeds N`` (fan every grid point out over ``N`` consecutive
master seeds and report per-point means) and ``--ci`` (add a bootstrap
confidence interval column; needs ``--seeds`` >= 2).  The CLI is otherwise a
thin veneer over :mod:`repro.experiments`; anything beyond preset/seed/output
selection is done in Python against the ``Fig*Config`` dataclasses directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from repro._version import __version__
from repro.exceptions import ConfigurationError, ReproError
from repro.experiments import (
    CollectionMode,
    Fig4Config,
    Fig4Experiment,
    Fig5Config,
    Fig5Experiment,
    Fig6Config,
    Fig6Experiment,
    Fig8Config,
    Fig8Experiment,
)
from repro.runner import ResultsStore, SweepRunner, seed_range

#: Presets trade fidelity against run time.  ``paper`` uses full event
#: simulation with figure-like sample sizes; ``fast`` switches the network to
#: the hybrid/analytic models; ``quick`` additionally shrinks the sweeps so
#: every figure finishes in a few seconds (used by the CLI tests); ``smoke``
#: is a tiny all-analytic grid used by the CI smoke job to exercise the sweep
#: runner and its cache end-to-end in seconds.
PRESETS = ("paper", "fast", "quick", "smoke")

#: Confidence level of the ``--ci`` bootstrap bands.
CI_CONFIDENCE = 0.95


def _fig4_config(preset: str, seed: int) -> Fig4Config:
    if preset == "paper":
        return Fig4Config(seed=seed)
    if preset == "fast":
        return Fig4Config(trials=20, mode=CollectionMode.ANALYTIC, seed=seed)
    if preset == "quick":
        return Fig4Config(
            sample_sizes=(50, 200, 1000), trials=10, mode=CollectionMode.ANALYTIC, seed=seed
        )
    return Fig4Config(
        sample_sizes=(50, 200), trials=6, mode=CollectionMode.ANALYTIC, seed=seed
    )


def _fig5_config(preset: str, seed: int) -> Fig5Config:
    if preset == "paper":
        return Fig5Config(seed=seed)
    if preset == "fast":
        return Fig5Config(trials=12, mode=CollectionMode.ANALYTIC, seed=seed)
    if preset == "quick":
        return Fig5Config(
            sigma_t_values=(0.0, 1e-4, 1e-3),
            sample_size=500,
            trials=8,
            mode=CollectionMode.ANALYTIC,
            seed=seed,
        )
    return Fig5Config(
        sigma_t_values=(0.0, 1e-3),
        sample_size=200,
        trials=6,
        mode=CollectionMode.ANALYTIC,
        seed=seed,
    )


def _fig6_config(preset: str, seed: int) -> Fig6Config:
    if preset == "paper":
        return Fig6Config(seed=seed)
    if preset == "fast":
        return Fig6Config(trials=15, mode=CollectionMode.HYBRID, seed=seed)
    if preset == "quick":
        return Fig6Config(
            utilizations=(0.05, 0.4),
            sample_size=400,
            trials=8,
            mode=CollectionMode.HYBRID,
            seed=seed,
        )
    return Fig6Config(
        utilizations=(0.05, 0.3),
        sample_size=200,
        trials=6,
        mode=CollectionMode.ANALYTIC,
        seed=seed,
    )


def _fig8_config(preset: str, seed: int) -> Fig8Config:
    if preset == "paper":
        return Fig8Config(seed=seed)
    if preset == "fast":
        return Fig8Config(trials=15, mode=CollectionMode.HYBRID, seed=seed)
    if preset == "quick":
        return Fig8Config(
            hours=(2, 14),
            sample_size=400,
            trials=8,
            mode=CollectionMode.HYBRID,
            seed=seed,
        )
    return Fig8Config(
        hours=(2, 14),
        sample_size=200,
        trials=6,
        mode=CollectionMode.ANALYTIC,
        seed=seed,
    )


#: Experiment factories keyed by figure name.  Each returned experiment
#: exposes ``cells(seeds)`` / ``run(runner, seeds, confidence)`` /
#: ``assemble(report, seeds, confidence)`` so the sweep subcommand can pool
#: every figure's cells into one combined runner call.
_FIGURES: Dict[str, Callable[[str, int], object]] = {
    "fig4": lambda preset, seed: Fig4Experiment(_fig4_config(preset, seed)),
    "fig5": lambda preset, seed: Fig5Experiment(_fig5_config(preset, seed)),
    "fig6": lambda preset, seed: Fig6Experiment(_fig6_config(preset, seed)),
    "fig8": lambda preset, seed: Fig8Experiment(_fig8_config(preset, seed)),
}


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        choices=PRESETS,
        default="fast",
        help="fidelity/run-time preset (default: fast)",
    )
    parser.add_argument("--seed", type=int, default=2003, help="master random seed")
    parser.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="N",
        help="run every grid point at N consecutive master seeds (starting at "
        "--seed) and report the per-point mean (default: 1, the historical "
        "single-seed layout)",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        # argparse %-formats help strings, so the percent sign is doubled.
        help=f"add a {CI_CONFIDENCE:.0%}".replace("%", "%%")
        + " bootstrap confidence interval per grid point (needs --seeds >= 2)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent sweep cells (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persist cell results under this directory; repeated runs with the "
        "same grid skip the simulation entirely",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures of Fu et al., ICPP 2003 (link-padding countermeasures).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subcommands = parser.add_subparsers(
        dest="figure",
        metavar="figure",
        required=True,
        help="which evaluation figure to regenerate, 'sweep' for several at "
        "once, or 'cache' for store maintenance",
    )
    for name in sorted(_FIGURES):
        figure_parser = subcommands.add_parser(
            name, help=f"regenerate {name} of the paper"
        )
        _add_common_options(figure_parser)
    sweep = subcommands.add_parser(
        "sweep",
        help="run several figure grids through the parallel sweep runner",
    )
    _add_common_options(sweep)
    sweep.add_argument(
        "--figures",
        nargs="+",
        choices=sorted(_FIGURES),
        default=sorted(_FIGURES),
        metavar="FIG",
        help="figures to include in the sweep (default: all)",
    )
    cache = subcommands.add_parser(
        "cache",
        help="maintain a persistent results store",
    )
    cache.add_argument(
        "action",
        choices=("compact",),
        help="compact: drop superseded duplicate records and fold a legacy "
        "flat results.jsonl into the sharded layout",
    )
    cache.add_argument(
        "--cache-dir",
        type=Path,
        required=True,
        help="the results store to maintain",
    )
    return parser


def _run_cache_command(args: argparse.Namespace) -> str:
    store = ResultsStore(args.cache_dir)
    stats = store.compact()
    return f"cache compact: {stats}"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the CLI; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.figure == "cache":
            report = _run_cache_command(args)
        else:
            if args.seeds < 1:
                raise ConfigurationError(f"--seeds {args.seeds} must be >= 1")
            if args.ci and args.seeds < 2:
                raise ConfigurationError(
                    "--ci needs --seeds >= 2: a confidence interval requires "
                    "repeated trials per grid point"
                )
            seeds = seed_range(args.seed, args.seeds) if args.seeds > 1 else None
            confidence = CI_CONFIDENCE if args.ci else None
            store = ResultsStore(args.cache_dir) if args.cache_dir is not None else None
            runner = SweepRunner(jobs=args.jobs, store=store)

            if args.figure == "sweep":
                # One combined runner call: every selected figure's cells share
                # the worker pool, so e.g. fig4's single cell runs alongside
                # fig8's 24-hour grid instead of serialising per figure.
                experiments = [
                    _FIGURES[name](args.preset, args.seed) for name in args.figures
                ]
                all_cells = [
                    cell for experiment in experiments for cell in experiment.cells(seeds)
                ]
                combined = runner.run(all_cells)
                reports = [
                    experiment.assemble(combined, seeds=seeds, confidence=confidence).to_text()
                    for experiment in experiments
                ]
                report = "\n\n".join(reports) + "\n\n" + runner.summary()
            else:
                result = _FIGURES[args.figure](args.preset, args.seed).run(
                    runner=runner, seeds=seeds, confidence=confidence
                )
                report = result.to_text()
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2

    print(report)
    output = getattr(args, "output", None)
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(report)
        print(f"report written to {output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())


__all__ = ["build_parser", "main", "CI_CONFIDENCE", "PRESETS"]
