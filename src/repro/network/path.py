"""End-to-end unprotected path: a chain of routers with per-hop cross traffic.

``UnprotectedPath`` wires together the elements of :mod:`repro.network` into
the topology of the paper's Figure 1/3/7: the padded stream enters at hop 0,
traverses every router in order (sharing each output link with that hop's
cross traffic), and leaves the last hop into an exit sink (the receiver
gateway, usually with the adversary's tap in front of it).

Observers can be registered at any hop egress, which is how the experiment
harness places the adversary's tap "right at the output of the sender
gateway" (hop 0 ingress side) or "right in front of the receiver gateway"
(last hop egress), matching the vantage points studied in the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import NetworkError
from repro.network.crosstraffic import CrossTrafficGenerator
from repro.network.link import Demux, Link, NullSink, PacketSink
from repro.network.router import Router
from repro.sim.engine import Simulator
from repro.traffic.packet import Packet
from repro.traffic.schedule import RateSchedule
from repro.units import PAPER_PACKET_SIZE_BYTES

Observer = Callable[[Packet], None]
RateLike = Union[float, RateSchedule]


class _HopEgress:
    """Forwards padded packets at a hop egress through observers, then onward."""

    def __init__(self, downstream: PacketSink) -> None:
        self.downstream = downstream
        self.observers: List[Observer] = []

    def __call__(self, packet: Packet) -> None:
        for observer in self.observers:
            observer(packet)
        self.downstream(packet)


class UnprotectedPath:
    """A chain of ``n_hops`` routers between the two security gateways.

    Parameters
    ----------
    simulator:
        Event engine.
    exit_sink:
        Final consumer of the padded stream (typically the receiver gateway).
    n_hops:
        Number of store-and-forward routers on the path (0 is allowed and
        models a tap directly at the sender gateway's output).
    link_rate_bps:
        Output-link capacity of every router (scalar) or one value per hop.
    propagation_delay:
        One-way propagation delay per hop in seconds.
    router_buffer_packets:
        Router buffer size (``None`` = unbounded).
    packet_size_bytes:
        Nominal packet size used for utilization bookkeeping.
    name:
        Label used in reports.
    """

    def __init__(
        self,
        simulator: Simulator,
        exit_sink: PacketSink,
        n_hops: int = 1,
        link_rate_bps: Union[float, Sequence[float]] = 80e6,
        propagation_delay: float = 0.5e-3,
        router_buffer_packets: Optional[int] = None,
        packet_size_bytes: int = PAPER_PACKET_SIZE_BYTES,
        name: str = "path",
    ) -> None:
        if n_hops < 0:
            raise NetworkError("n_hops must be >= 0")
        if not callable(exit_sink):
            raise NetworkError("exit_sink must be callable")
        if np.isscalar(link_rate_bps):
            rates = [float(link_rate_bps)] * n_hops
        else:
            rates = [float(r) for r in link_rate_bps]
            if len(rates) != n_hops:
                raise NetworkError(
                    f"expected {n_hops} link rates, got {len(rates)}"
                )
        self.simulator = simulator
        self.exit_sink = exit_sink
        self.n_hops = int(n_hops)
        self.link_rates_bps = rates
        self.packet_size_bytes = int(packet_size_bytes)
        self.name = name

        self.routers: List[Router] = []
        self.demuxes: List[Demux] = []
        self.cross_sinks: List[NullSink] = []
        self._egresses: List[_HopEgress] = []
        self._cross_generators: Dict[int, List[CrossTrafficGenerator]] = {}

        # Build the chain from the exit backwards so each hop knows its
        # downstream neighbour at construction time.
        downstream: PacketSink = exit_sink
        for hop in reversed(range(n_hops)):
            egress = _HopEgress(downstream)
            cross_sink = NullSink(f"{name}-hop{hop}-cross-dst")
            demux = Demux(padded_sink=egress, cross_sink=cross_sink)
            link = Link(
                simulator,
                sink=demux,
                propagation_delay=propagation_delay,
                rate_bps=None,
                name=f"{name}-hop{hop}-link",
            )
            router = Router(
                simulator,
                output=link,
                output_rate_bps=rates[hop],
                max_queue_packets=router_buffer_packets,
                name=f"{name}-router{hop}",
            )
            self.routers.insert(0, router)
            self.demuxes.insert(0, demux)
            self.cross_sinks.insert(0, cross_sink)
            self._egresses.insert(0, egress)
            downstream = router.receive
        self._entry: PacketSink = downstream

    # --------------------------------------------------------------- wiring
    @property
    def entry(self) -> PacketSink:
        """Sink the sender gateway's output should be connected to."""
        return self._entry

    def add_observer(self, hop_index: int, observer: Observer) -> None:
        """Observe the padded stream at the egress of ``hop_index``.

        Hop indices run 0..n_hops-1; the egress of the last hop is the point
        "right in front of the receiver gateway" used in the campus/WAN
        experiments.  For a tap at the sender gateway's output, observe the
        gateway directly instead of using this method.
        """
        if self.n_hops == 0:
            raise NetworkError("a zero-hop path has no router egress to observe")
        if not 0 <= hop_index < self.n_hops:
            raise NetworkError(
                f"hop_index must be in [0, {self.n_hops - 1}], got {hop_index}"
            )
        if not callable(observer):
            raise NetworkError("observer must be callable")
        self._egresses[hop_index].observers.append(observer)

    # --------------------------------------------------------- cross traffic
    def attach_cross_traffic(
        self,
        hop_index: int,
        rate: RateLike,
        rng: Optional[np.random.Generator] = None,
        process: str = "poisson",
        flow_id: Optional[str] = None,
    ) -> CrossTrafficGenerator:
        """Attach (and return, not yet started) a cross-traffic source at a hop."""
        if not 0 <= hop_index < self.n_hops:
            raise NetworkError(
                f"hop_index must be in [0, {self.n_hops - 1}], got {hop_index}"
            )
        generator = CrossTrafficGenerator(
            self.simulator,
            self.routers[hop_index].receive,
            rate=rate,
            rng=rng,
            process=process,
            packet_size_bytes=self.packet_size_bytes,
            flow_id=flow_id or f"{self.name}-cross-hop{hop_index}",
        )
        self._cross_generators.setdefault(hop_index, []).append(generator)
        return generator

    def start_cross_traffic(self) -> None:
        """Start every attached cross-traffic generator."""
        for generators in self._cross_generators.values():
            for generator in generators:
                generator.start()

    def stop_cross_traffic(self) -> None:
        """Stop every attached cross-traffic generator."""
        for generators in self._cross_generators.values():
            for generator in generators:
                generator.stop()

    @property
    def cross_generators(self) -> List[CrossTrafficGenerator]:
        """All attached cross-traffic generators in hop order."""
        result: List[CrossTrafficGenerator] = []
        for hop in sorted(self._cross_generators):
            result.extend(self._cross_generators[hop])
        return result

    # ------------------------------------------------------------ statistics
    def padded_packets_delivered(self) -> int:
        """Padded-stream packets that reached the exit sink side of the last hop."""
        if self.n_hops == 0:
            raise NetworkError("a zero-hop path does not track deliveries")
        return self.demuxes[-1].padded_packets

    def total_drops(self) -> int:
        """Packets dropped at any router on the path."""
        return sum(router.packets_dropped for router in self.routers)

    def hop_utilizations(self) -> List[float]:
        """Measured output-port utilization of every router."""
        return [router.measured_utilization() for router in self.routers]


__all__ = ["UnprotectedPath"]
