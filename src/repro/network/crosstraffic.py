"""Cross-traffic generation.

In the laboratory experiment (Figure 6) a workstation in subnet C sends
traffic through the shared router toward subnet D; the x-axis of the figure
is the resulting utilization of the shared output link.  In the campus and
WAN experiments (Figure 8) the cross traffic is whatever the campus/Internet
carries, which rises and falls over the day.

This module provides both: constant-utilization generators for the Figure 6
sweep and diurnal-profile generators for the Figure 8 runs.  Cross traffic is
Poisson by default (aggregated traffic from many independent sources), with a
CBR option for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import NetworkError
from repro.sim.engine import Simulator
from repro.traffic.packet import PacketKind
from repro.traffic.schedule import DiurnalProfile, RateSchedule
from repro.traffic.sources import CBRSource, PacketSink, PoissonSource, TrafficSource
from repro.units import PAPER_PACKET_SIZE_BYTES, rate_for_utilization


def cross_traffic_rate_for_utilization(
    target_utilization: float,
    link_rate_bps: float,
    packet_size_bytes: int = PAPER_PACKET_SIZE_BYTES,
    padded_rate_pps: float = 0.0,
) -> float:
    """Cross-traffic packet rate that drives a shared link to ``target_utilization``.

    The padded stream itself consumes part of the link; its contribution
    (``padded_rate_pps`` packets/s of the same size) is subtracted so that the
    *total* utilization, padded plus cross, matches the target — mirroring how
    the paper reports "link utilization" on the Figure 6 x-axis.

    Raises
    ------
    NetworkError
        If the padded stream alone already exceeds the target utilization.
    """
    if not 0.0 <= target_utilization < 1.0:
        raise NetworkError("target utilization must lie in [0, 1)")
    total_rate = rate_for_utilization(target_utilization, packet_size_bytes, link_rate_bps)
    cross_rate = total_rate - padded_rate_pps
    if cross_rate < 0.0:
        raise NetworkError(
            "padded traffic alone exceeds the requested utilization "
            f"({padded_rate_pps:.1f} pps > {total_rate:.1f} pps)"
        )
    return cross_rate


class CrossTrafficGenerator:
    """A cross-traffic source attached to a router's input.

    Parameters
    ----------
    simulator:
        Event engine.
    sink:
        Where cross packets are injected — normally ``router.receive``.
    rate:
        Packet rate in packets/second, or any
        :class:`~repro.traffic.schedule.RateSchedule` (e.g. a
        :class:`~repro.traffic.schedule.DiurnalProfile`).
    rng:
        Random stream for the arrival process.
    process:
        ``"poisson"`` (default) or ``"cbr"``.
    packet_size_bytes:
        Size of cross packets (defaults to the padded packet size so that
        utilization arithmetic matches the paper's setup).
    flow_id:
        Label stamped on generated packets.
    """

    def __init__(
        self,
        simulator: Simulator,
        sink: PacketSink,
        rate: Union[float, RateSchedule],
        rng: Optional[np.random.Generator] = None,
        process: str = "poisson",
        packet_size_bytes: int = PAPER_PACKET_SIZE_BYTES,
        flow_id: str = "cross",
    ) -> None:
        process = process.lower()
        if process not in ("poisson", "cbr"):
            raise NetworkError(f"unknown cross-traffic process {process!r}")
        source_cls = PoissonSource if process == "poisson" else CBRSource
        self.process = process
        self.source: TrafficSource = source_cls(
            simulator,
            sink,
            rate=rate,
            rng=rng,
            flow_id=flow_id,
            kind=PacketKind.CROSS,
            packet_size_bytes=packet_size_bytes,
        )

    def start(self) -> None:
        """Begin injecting cross traffic."""
        self.source.start()

    def stop(self) -> None:
        """Stop injecting cross traffic."""
        self.source.stop()

    @property
    def packets_emitted(self) -> int:
        """Number of cross packets injected so far."""
        return self.source.packets_emitted


def attach_diurnal_cross_traffic(
    simulator: Simulator,
    sink: PacketSink,
    peak_utilization: float,
    link_rate_bps: float,
    rng: Optional[np.random.Generator] = None,
    packet_size_bytes: int = PAPER_PACKET_SIZE_BYTES,
    hourly_multipliers=DiurnalProfile.DEFAULT_MULTIPLIERS,
    flow_id: str = "diurnal-cross",
) -> CrossTrafficGenerator:
    """Create (and return, not yet started) a day-shaped cross-traffic source.

    ``peak_utilization`` is the utilization the cross traffic alone reaches at
    the profile's busiest hour; other hours scale down according to
    ``hourly_multipliers``.
    """
    if not 0.0 <= peak_utilization < 1.0:
        raise NetworkError("peak utilization must lie in [0, 1)")
    multipliers = np.asarray(hourly_multipliers, dtype=float)
    peak_multiplier = float(np.max(multipliers))
    if peak_multiplier <= 0.0:
        raise NetworkError("diurnal profile must have at least one positive hour")
    peak_rate = rate_for_utilization(peak_utilization, packet_size_bytes, link_rate_bps)
    base_rate = peak_rate / peak_multiplier
    profile = DiurnalProfile(base_rate_pps=base_rate, hourly_multipliers=multipliers)
    return CrossTrafficGenerator(
        simulator,
        sink,
        rate=profile,
        rng=rng,
        process="poisson",
        packet_size_bytes=packet_size_bytes,
        flow_id=flow_id,
    )


__all__ = [
    "cross_traffic_rate_for_utilization",
    "CrossTrafficGenerator",
    "attach_diurnal_cross_traffic",
]
