"""The unprotected internetwork between the two security gateways.

The padded stream leaves GW1, traverses one or more store-and-forward routers
whose output links are shared with uncontrolled *cross traffic*, and reaches
GW2.  Queueing behind cross traffic perturbs the padded stream's packet
inter-arrival times; this is the ``delta_net`` term of the paper's model and
the mechanism behind the Figure 6 (lab cross traffic) and Figure 8
(campus/WAN) results.

* :mod:`repro.network.link` — propagation/serialisation links and simple
  sinks (null, counting, kind-based demultiplexer).
* :mod:`repro.network.router` — a FIFO output-queued router.
* :mod:`repro.network.crosstraffic` — cross-traffic generators parameterised
  by target link utilization or by a diurnal load profile.
* :mod:`repro.network.path` — wiring helpers that chain routers into an
  end-to-end unprotected path with per-hop cross traffic.
* :mod:`repro.network.topology` — the paper's three evaluation environments
  (laboratory, campus, wide-area) as ready-made presets, plus a
  :mod:`networkx` view of each topology.
* :mod:`repro.network.delay_models` — analytic M/M/1 and M/D/1 waiting-time
  moments used to predict ``sigma_net`` without running the simulator.
"""

from repro.network.crosstraffic import (
    CrossTrafficGenerator,
    attach_diurnal_cross_traffic,
    cross_traffic_rate_for_utilization,
)
from repro.network.delay_models import (
    md1_waiting_time_moments,
    mg1_waiting_time_moments,
    mm1_waiting_time_moments,
    path_piat_variance,
    piat_variance_from_waiting,
)
from repro.network.link import CountingSink, Demux, Link, NullSink
from repro.network.path import UnprotectedPath
from repro.network.router import Router
from repro.network.topology import (
    TopologySpec,
    build_path,
    campus_topology,
    lab_topology,
    topology_graph,
    wan_topology,
)

__all__ = [
    "Link",
    "NullSink",
    "CountingSink",
    "Demux",
    "Router",
    "CrossTrafficGenerator",
    "attach_diurnal_cross_traffic",
    "cross_traffic_rate_for_utilization",
    "UnprotectedPath",
    "TopologySpec",
    "lab_topology",
    "campus_topology",
    "wan_topology",
    "build_path",
    "topology_graph",
    "mm1_waiting_time_moments",
    "md1_waiting_time_moments",
    "mg1_waiting_time_moments",
    "piat_variance_from_waiting",
    "path_piat_variance",
]
