"""Evaluation topologies: laboratory, campus network and wide-area network.

The paper evaluates three environments (Figures 3 and 7):

* **Laboratory** — GW1 and GW2 connected by a single Marconi ESR-5000
  router; a workstation in subnet C generates controllable cross traffic
  that shares the router's outgoing link (Figures 4–6).
* **Campus** — the padded stream traverses the Texas A&M campus network,
  modelled here as a short chain of enterprise routers with a moderate
  diurnal load (Figure 8(a)).
* **WAN** — the Ohio State → Texas A&M Internet path, "over 15 routers",
  modelled as a long chain with heavier diurnal load (Figure 8(b)).

A :class:`TopologySpec` captures the knobs (hop count, link rates, cross
load), :func:`build_path` turns it into a wired
:class:`~repro.network.path.UnprotectedPath`, and :func:`topology_graph`
returns a :mod:`networkx` view for inspection and documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx
import numpy as np

from repro.exceptions import NetworkError
from repro.network.crosstraffic import cross_traffic_rate_for_utilization
from repro.network.link import PacketSink
from repro.network.path import UnprotectedPath
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.traffic.schedule import DiurnalProfile
from repro.units import PAPER_PACKET_SIZE_BYTES, PAPER_TIMER_INTERVAL_S, rate_for_utilization


@dataclass(frozen=True)
class TopologySpec:
    """Declarative description of an unprotected-path topology.

    Attributes
    ----------
    name:
        Topology label ("lab", "campus", "wan", or custom).
    n_hops:
        Number of routers between the gateways.
    link_rate_bps:
        Output-link capacity of each router.
    propagation_delay:
        Per-hop propagation delay (seconds).
    cross_utilization:
        Constant cross-traffic utilization applied at every hop.  Ignored
        when ``diurnal_peak_utilization`` is set.
    diurnal_peak_utilization:
        If set, cross traffic follows the default diurnal profile and reaches
        this utilization at the busiest hour of the day.
    packet_size_bytes:
        Packet size used for utilization arithmetic.
    padded_rate_pps:
        Rate of the padded stream sharing each link (the paper's 100 pps for
        a 10 ms timer); used so "utilization" means *total* link utilization.
    """

    name: str
    n_hops: int
    link_rate_bps: float = 80e6
    propagation_delay: float = 0.5e-3
    cross_utilization: float = 0.0
    diurnal_peak_utilization: Optional[float] = None
    packet_size_bytes: int = PAPER_PACKET_SIZE_BYTES
    padded_rate_pps: float = 1.0 / PAPER_TIMER_INTERVAL_S

    def __post_init__(self) -> None:
        if self.n_hops < 0:
            raise NetworkError("n_hops must be >= 0")
        if self.link_rate_bps <= 0:
            raise NetworkError("link_rate_bps must be positive")
        if not 0.0 <= self.cross_utilization < 1.0:
            raise NetworkError("cross_utilization must lie in [0, 1)")
        if self.diurnal_peak_utilization is not None and not (
            0.0 <= self.diurnal_peak_utilization < 1.0
        ):
            raise NetworkError("diurnal_peak_utilization must lie in [0, 1)")

    @property
    def hop_service_time(self) -> float:
        """Serialisation time of one padded packet at each hop (seconds)."""
        return self.packet_size_bytes * 8.0 / self.link_rate_bps

    def cross_rate_pps(self) -> float:
        """Constant cross-traffic rate per hop implied by ``cross_utilization``."""
        if self.cross_utilization == 0.0:
            return 0.0
        return cross_traffic_rate_for_utilization(
            self.cross_utilization,
            self.link_rate_bps,
            self.packet_size_bytes,
            padded_rate_pps=self.padded_rate_pps,
        )


def lab_topology(cross_utilization: float = 0.0, link_rate_bps: float = 80e6) -> TopologySpec:
    """The laboratory setup of Figure 3: one shared router.

    ``cross_utilization`` is the *total* utilization of the shared outgoing
    link (padded stream plus subnet-C cross traffic), matching the x-axis of
    Figure 6.  The default 80 Mbit/s link rate is a calibration choice: it
    makes one hop's queueing jitter at 40 % utilization a few times larger
    than the gateway's own jitter, which reproduces the Figure 6 shape
    (see DESIGN.md, "Calibration targets").
    """
    return TopologySpec(
        name="lab",
        n_hops=1,
        link_rate_bps=link_rate_bps,
        cross_utilization=cross_utilization,
    )


def campus_topology(
    peak_utilization: float = 0.15, n_hops: int = 3, link_rate_bps: float = 80e6
) -> TopologySpec:
    """A medium-size enterprise (campus) network: a short, lightly loaded chain."""
    return TopologySpec(
        name="campus",
        n_hops=n_hops,
        link_rate_bps=link_rate_bps,
        diurnal_peak_utilization=peak_utilization,
    )


def wan_topology(
    peak_utilization: float = 0.25, n_hops: int = 15, link_rate_bps: float = 80e6
) -> TopologySpec:
    """The Ohio State → Texas A&M Internet path: 15 routers, heavier load."""
    return TopologySpec(
        name="wan",
        n_hops=n_hops,
        link_rate_bps=link_rate_bps,
        diurnal_peak_utilization=peak_utilization,
    )


def build_path(
    spec: TopologySpec,
    simulator: Simulator,
    exit_sink: PacketSink,
    streams: Optional[RandomStreams] = None,
) -> UnprotectedPath:
    """Materialise a :class:`TopologySpec` into a wired, cross-loaded path.

    Cross-traffic generators are attached (one per hop) but not started;
    call :meth:`UnprotectedPath.start_cross_traffic` when the experiment
    begins so that warm-up handling stays in the caller's hands.
    """
    streams = streams if streams is not None else RandomStreams(seed=None)
    path = UnprotectedPath(
        simulator,
        exit_sink=exit_sink,
        n_hops=spec.n_hops,
        link_rate_bps=spec.link_rate_bps,
        propagation_delay=spec.propagation_delay,
        packet_size_bytes=spec.packet_size_bytes,
        name=spec.name,
    )
    for hop in range(spec.n_hops):
        rng = streams.get(f"{spec.name}-cross-hop{hop}")
        if spec.diurnal_peak_utilization is not None:
            peak_rate = rate_for_utilization(
                spec.diurnal_peak_utilization, spec.packet_size_bytes, spec.link_rate_bps
            )
            peak_cross = max(peak_rate - spec.padded_rate_pps, 0.0)
            multipliers = np.asarray(DiurnalProfile.DEFAULT_MULTIPLIERS)
            base = peak_cross / float(np.max(multipliers))
            profile = DiurnalProfile(base_rate_pps=base, hourly_multipliers=multipliers)
            path.attach_cross_traffic(hop, profile, rng=rng)
        elif spec.cross_utilization > 0.0:
            path.attach_cross_traffic(hop, spec.cross_rate_pps(), rng=rng)
    return path


def topology_graph(spec: TopologySpec) -> nx.DiGraph:
    """A :mod:`networkx` view of the topology for inspection and docs.

    Nodes: the sender subnet/gateway, each router, the receiver gateway and
    subnet, plus one cross-traffic source/destination pair per loaded hop.
    Edges carry ``link_rate_bps`` attributes.
    """
    graph = nx.DiGraph(name=spec.name)
    graph.add_node("subnet-A", role="protected-subnet")
    graph.add_node("GW1", role="sender-gateway")
    graph.add_node("GW2", role="receiver-gateway")
    graph.add_node("subnet-B", role="protected-subnet")
    graph.add_edge("subnet-A", "GW1", link_rate_bps=spec.link_rate_bps)
    previous = "GW1"
    loaded = spec.cross_utilization > 0.0 or spec.diurnal_peak_utilization is not None
    for hop in range(spec.n_hops):
        router = f"router-{hop}"
        graph.add_node(router, role="router")
        graph.add_edge(previous, router, link_rate_bps=spec.link_rate_bps)
        if loaded:
            src = f"cross-src-{hop}"
            dst = f"cross-dst-{hop}"
            graph.add_node(src, role="cross-source")
            graph.add_node(dst, role="cross-destination")
            graph.add_edge(src, router, link_rate_bps=spec.link_rate_bps)
            graph.add_edge(router, dst, link_rate_bps=spec.link_rate_bps)
        previous = router
    graph.add_edge(previous, "GW2", link_rate_bps=spec.link_rate_bps)
    graph.add_edge("GW2", "subnet-B", link_rate_bps=spec.link_rate_bps)
    return graph


__all__ = [
    "TopologySpec",
    "lab_topology",
    "campus_topology",
    "wan_topology",
    "build_path",
    "topology_graph",
]
