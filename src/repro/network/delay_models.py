"""Analytic queueing-delay models for ``sigma_net``.

The closed-form detection-rate formulas of Section 4 need the variance that
the unprotected network adds to the padded stream's packet inter-arrival
times (``sigma_net^2`` in equation (10)).  Running the event simulator gives
the empirical value; this module predicts it from queueing theory so that the
analytical and empirical halves of the reproduction can be compared without
circular calibration.

The per-hop model is an M/G/1 queue: cross traffic arrives (approximately)
Poisson at rate ``lambda``, every packet needs a deterministic or general
service time ``S`` on the output link, and the padded packet's waiting time
``W`` follows the Pollaczek–Khinchine formulas.  The PIAT perturbation of two
consecutive padded packets is ``W_{i+1} - W_i``; treating consecutive waits
as independent gives ``Var = 2 Var(W)`` per hop, and hops are summed along
the path (independence across routers).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import AnalysisError


def _check_inputs(utilization: float, service_time: float) -> None:
    if not 0.0 <= utilization < 1.0:
        raise AnalysisError(f"utilization must lie in [0, 1), got {utilization!r}")
    if service_time <= 0.0:
        raise AnalysisError(f"service time must be positive, got {service_time!r}")


def mg1_waiting_time_moments(
    utilization: float,
    service_time: float,
    service_scv: float,
    service_third_moment: float,
) -> Tuple[float, float]:
    """Mean and variance of the M/G/1 waiting time (Pollaczek–Khinchine).

    Parameters
    ----------
    utilization:
        Offered load ``rho = lambda * E[S]`` in ``[0, 1)``.
    service_time:
        Mean service time ``E[S]`` in seconds.
    service_scv:
        Squared coefficient of variation of the service time
        (``Var(S)/E[S]^2``): 0 for deterministic, 1 for exponential.
    service_third_moment:
        ``E[S^3]`` in seconds cubed.

    Returns
    -------
    (mean, variance) of the queueing delay ``W`` (excluding the packet's own
    service time).
    """
    _check_inputs(utilization, service_time)
    if service_scv < 0.0:
        raise AnalysisError("service SCV must be >= 0")
    if service_third_moment < 0.0:
        raise AnalysisError("E[S^3] must be >= 0")
    if utilization == 0.0:
        return 0.0, 0.0
    lam = utilization / service_time
    second_moment = (service_scv + 1.0) * service_time**2
    mean_wait = lam * second_moment / (2.0 * (1.0 - utilization))
    second_moment_wait = (
        2.0 * mean_wait**2 + lam * service_third_moment / (3.0 * (1.0 - utilization))
    )
    variance = second_moment_wait - mean_wait**2
    return float(mean_wait), float(max(variance, 0.0))


def md1_waiting_time_moments(utilization: float, service_time: float) -> Tuple[float, float]:
    """Mean and variance of the M/D/1 waiting time (deterministic service).

    This matches the paper's setting: all packets have the same size, so the
    service time on a given link is a constant.
    """
    return mg1_waiting_time_moments(
        utilization,
        service_time,
        service_scv=0.0,
        service_third_moment=service_time**3,
    )


def mm1_waiting_time_moments(utilization: float, service_time: float) -> Tuple[float, float]:
    """Mean and variance of the M/M/1 waiting time (exponential service)."""
    # Exponential service: E[S^2] = 2 s^2 (SCV = 1), E[S^3] = 6 s^3.
    return mg1_waiting_time_moments(
        utilization,
        service_time,
        service_scv=1.0,
        service_third_moment=6.0 * service_time**3,
    )


def piat_variance_from_waiting(waiting_variance: float) -> float:
    """PIAT variance contributed by one hop with waiting-time variance ``Var(W)``.

    The inter-arrival perturbation between consecutive padded packets at a
    hop's egress is ``W_{i+1} - W_i``; with (approximately) independent waits
    its variance is ``2 Var(W)``.
    """
    if waiting_variance < 0.0:
        raise AnalysisError("waiting-time variance must be >= 0")
    return 2.0 * float(waiting_variance)


def path_piat_variance(
    utilizations: Sequence[float],
    service_times: Sequence[float],
    model: str = "md1",
) -> float:
    """``sigma_net^2`` accumulated along a multi-hop unprotected path.

    Parameters
    ----------
    utilizations:
        Per-hop output-link utilization (cross traffic plus padded stream).
    service_times:
        Per-hop service time of one padded packet (seconds).
    model:
        ``"md1"`` (deterministic service, the paper's constant packet size) or
        ``"mm1"`` (exponential service, a pessimistic bound).

    Returns
    -------
    float
        Total PIAT variance added by the path, i.e. the ``sigma_net^2`` to
        plug into the variance-ratio formula (16).
    """
    utilizations = list(utilizations)
    service_times = list(service_times)
    if len(utilizations) != len(service_times):
        raise AnalysisError("utilizations and service_times must have equal length")
    model = model.lower()
    if model == "md1":
        moments = md1_waiting_time_moments
    elif model == "mm1":
        moments = mm1_waiting_time_moments
    else:
        raise AnalysisError(f"unknown delay model {model!r}; use 'md1' or 'mm1'")
    total = 0.0
    for rho, service in zip(utilizations, service_times):
        _, variance = moments(rho, service)
        total += piat_variance_from_waiting(variance)
    return float(total)


def equivalent_sigma_net(
    utilizations: Sequence[float],
    service_times: Sequence[float],
    model: str = "md1",
) -> float:
    """Standard deviation form of :func:`path_piat_variance` (seconds)."""
    return float(np.sqrt(path_piat_variance(utilizations, service_times, model=model)))


__all__ = [
    "mg1_waiting_time_moments",
    "md1_waiting_time_moments",
    "mm1_waiting_time_moments",
    "piat_variance_from_waiting",
    "path_piat_variance",
    "equivalent_sigma_net",
]
