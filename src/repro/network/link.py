"""Links and elementary packet sinks."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.exceptions import NetworkError
from repro.sim.engine import Simulator
from repro.traffic.packet import Packet, PacketKind
from repro.units import serialization_delay

PacketSink = Callable[[Packet], None]


class Link:
    """A point-to-point link with propagation delay and optional capacity.

    Serialisation (transmission) delay is usually modelled inside the
    upstream :class:`~repro.network.router.Router`, which owns the output
    queue.  A :class:`Link` therefore defaults to pure propagation delay; a
    capacity can be given for links fed directly by a gateway (no router in
    front) so that back-to-back packets cannot overlap on the wire.

    Parameters
    ----------
    simulator:
        Event engine.
    sink:
        Downstream packet consumer.
    propagation_delay:
        One-way latency in seconds.
    rate_bps:
        Optional link capacity in bits per second; when given, packets are
        serialised FIFO before propagating.
    name:
        Label used in reports and errors.
    """

    def __init__(
        self,
        simulator: Simulator,
        sink: PacketSink,
        propagation_delay: float = 0.0,
        rate_bps: Optional[float] = None,
        name: str = "link",
    ) -> None:
        if not callable(sink):
            raise NetworkError(f"{name}: sink must be callable")
        if propagation_delay < 0.0:
            raise NetworkError(f"{name}: propagation delay must be >= 0")
        if rate_bps is not None and rate_bps <= 0.0:
            raise NetworkError(f"{name}: rate_bps must be positive or None")
        self.simulator = simulator
        self.sink = sink
        self.propagation_delay = float(propagation_delay)
        self.rate_bps = rate_bps
        self.name = name
        self.packets_carried = 0
        self._wire_free_at = 0.0

    def send(self, packet: Packet) -> None:
        """Accept a packet for transmission toward the sink."""
        self.packets_carried += 1
        now = self.simulator.now
        if self.rate_bps is None:
            depart = now
        else:
            start = max(now, self._wire_free_at)
            depart = start + float(serialization_delay(packet.size_bytes, self.rate_bps))
            self._wire_free_at = depart
        arrival = depart + self.propagation_delay
        if arrival <= now:
            self.sink(packet)
        else:
            self.simulator.schedule_at(arrival, self.sink, packet)

    __call__ = send


class NullSink:
    """Discards every packet (counts them); the destination of cross traffic."""

    def __init__(self, name: str = "null") -> None:
        self.name = name
        self.packets_discarded = 0

    def __call__(self, packet: Packet) -> None:
        self.packets_discarded += 1


class CountingSink:
    """Stores received packets and per-kind counts; handy in tests."""

    def __init__(self, keep_packets: bool = True, name: str = "sink") -> None:
        self.name = name
        self.keep_packets = keep_packets
        self.packets: List[Packet] = []
        self.counts: Dict[PacketKind, int] = {kind: 0 for kind in PacketKind}

    def __call__(self, packet: Packet) -> None:
        self.counts[packet.kind] += 1
        if self.keep_packets:
            self.packets.append(packet)

    @property
    def total(self) -> int:
        """Total number of packets received."""
        return sum(self.counts.values())

    def arrival_times(self) -> List[float]:
        """Reception-order creation timestamps of the stored packets."""
        return [p.created_at for p in self.packets]


class Demux:
    """Splits a packet stream by kind: padded stream vs. cross traffic.

    At each router's egress the padded stream continues toward GW2 while
    cross traffic peels off toward its own destination.  The demultiplexer
    performs that split using only simulation-level ground truth (the packet
    ``kind``); the adversary never sees or needs this object.
    """

    def __init__(self, padded_sink: PacketSink, cross_sink: Optional[PacketSink] = None) -> None:
        if not callable(padded_sink):
            raise NetworkError("padded_sink must be callable")
        if cross_sink is not None and not callable(cross_sink):
            raise NetworkError("cross_sink must be callable or None")
        self.padded_sink = padded_sink
        self.cross_sink = cross_sink if cross_sink is not None else NullSink("cross-destination")
        self.padded_packets = 0
        self.cross_packets = 0

    def __call__(self, packet: Packet) -> None:
        if packet.kind is PacketKind.CROSS:
            self.cross_packets += 1
            self.cross_sink(packet)
        else:
            self.padded_packets += 1
            self.padded_sink(packet)


__all__ = ["Link", "NullSink", "CountingSink", "Demux", "PacketSink"]
