"""A FIFO output-queued store-and-forward router.

This is the substrate behind ``delta_net``: the padded stream shares the
router's output link with cross traffic, so a padded packet arriving while
the output port is busy waits in the FIFO queue.  The waiting time depends on
how much cross traffic happens to be in front of it, which perturbs the
padded stream's inter-arrival times exactly as congestion at the Marconi
router (Figure 6) or the campus/Internet routers (Figure 8) did in the
paper's testbed.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.exceptions import NetworkError
from repro.sim.engine import Simulator
from repro.sim.monitor import CounterMonitor, TimeSeriesMonitor
from repro.traffic.packet import Packet, PacketKind
from repro.units import serialization_delay

PacketSink = Callable[[Packet], None]


class Router:
    """Single-output-port router with a FIFO queue.

    Parameters
    ----------
    simulator:
        Event engine.
    output:
        Downstream sink (a :class:`~repro.network.link.Link`, a
        :class:`~repro.network.link.Demux`, the adversary's tap, ...).
    output_rate_bps:
        Capacity of the output link; the service time of a packet is its
        serialisation delay at this rate.
    max_queue_packets:
        Buffer size; packets arriving to a full buffer are dropped (tail
        drop) and counted.  ``None`` means unbounded.
    processing_delay:
        Fixed per-packet forwarding latency added before a packet joins the
        output queue (lookup/switching time).
    name:
        Label used in reports.
    """

    def __init__(
        self,
        simulator: Simulator,
        output: PacketSink,
        output_rate_bps: float = 100e6,
        max_queue_packets: Optional[int] = None,
        processing_delay: float = 0.0,
        name: str = "router",
    ) -> None:
        if not callable(output):
            raise NetworkError(f"{name}: output must be callable")
        if output_rate_bps <= 0.0:
            raise NetworkError(f"{name}: output_rate_bps must be positive")
        if max_queue_packets is not None and max_queue_packets <= 0:
            raise NetworkError(f"{name}: max_queue_packets must be positive or None")
        if processing_delay < 0.0:
            raise NetworkError(f"{name}: processing_delay must be >= 0")
        self.simulator = simulator
        self.output = output
        self.output_rate_bps = float(output_rate_bps)
        self.max_queue_packets = max_queue_packets
        self.processing_delay = float(processing_delay)
        self.name = name

        self._queue: Deque[Packet] = deque()
        self._busy = False
        self.counters = CounterMonitor()
        self.queue_monitor = TimeSeriesMonitor(f"{name}-queue-depth")
        self._busy_time = 0.0
        self._service_started_at: Optional[float] = None

    # ------------------------------------------------------------- data path
    def receive(self, packet: Packet) -> None:
        """Entry point: a packet arrives on any of the router's input ports."""
        self.counters.increment("received")
        if packet.kind is PacketKind.CROSS:
            self.counters.increment("received_cross")
        else:
            self.counters.increment("received_padded")
        if self.processing_delay > 0.0:
            self.simulator.schedule(self.processing_delay, self._enqueue, packet)
        else:
            self._enqueue(packet)

    __call__ = receive

    def _enqueue(self, packet: Packet) -> None:
        if self.max_queue_packets is not None and len(self._queue) >= self.max_queue_packets:
            self.counters.increment("dropped")
            return
        self._queue.append(packet)
        self.queue_monitor.record(self.simulator.now, len(self._queue))
        if not self._busy:
            self._start_service()

    def _start_service(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue[0]
        service_time = float(serialization_delay(packet.size_bytes, self.output_rate_bps))
        self._service_started_at = self.simulator.now
        self.simulator.schedule(service_time, self._finish_service)

    def _finish_service(self) -> None:
        if self._service_started_at is not None:
            self._busy_time += self.simulator.now - self._service_started_at
            self._service_started_at = None
        packet = self._queue.popleft()
        self.queue_monitor.record(self.simulator.now, len(self._queue))
        self.counters.increment("forwarded")
        self.output(packet)
        self._start_service()

    # ------------------------------------------------------------ statistics
    @property
    def queue_depth(self) -> int:
        """Number of packets currently waiting or in service."""
        return len(self._queue)

    @property
    def packets_forwarded(self) -> int:
        """Packets transmitted on the output link so far."""
        return self.counters.get("forwarded")

    @property
    def packets_dropped(self) -> int:
        """Packets lost to buffer overflow so far."""
        return self.counters.get("dropped")

    def measured_utilization(self, over_time: Optional[float] = None) -> float:
        """Fraction of time the output port has been busy.

        Parameters
        ----------
        over_time:
            Observation window; defaults to the current simulation time.
        """
        horizon = self.simulator.now if over_time is None else float(over_time)
        if horizon <= 0.0:
            raise NetworkError("cannot compute utilization over a zero-length window")
        busy = self._busy_time
        if self._service_started_at is not None:
            busy += self.simulator.now - self._service_started_at
        return min(busy / horizon, 1.0)

    def service_time_for(self, packet_size_bytes: int) -> float:
        """Serialisation delay of a packet of the given size on the output port."""
        return float(serialization_delay(packet_size_bytes, self.output_rate_bps))


__all__ = ["Router"]
