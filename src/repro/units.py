"""Units and conversion helpers used throughout the library.

The simulation clock runs in **seconds** (floating point).  The paper quotes
timer intervals in milliseconds (10 ms), payload rates in packets per second
(10 pps, 40 pps) and link speeds in packets per second or bits per second.
These helpers keep conversions explicit and centralised so that magic
constants do not leak into the substrate code.

All functions are pure and vectorised: they accept scalars or NumPy arrays
and return the same shape.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, int, np.ndarray]

#: Number of seconds in one millisecond.
MS = 1e-3
#: Number of seconds in one microsecond.
US = 1e-6
#: Number of seconds in one minute.
MINUTE = 60.0
#: Number of seconds in one hour.
HOUR = 3600.0
#: Number of seconds in one day (the Figure 8 observation window).
DAY = 86400.0

#: Default padded-traffic timer interval used by the paper (10 ms).
PAPER_TIMER_INTERVAL_S = 10.0 * MS
#: Low payload rate used by the paper (packets per second).
PAPER_LOW_RATE_PPS = 10.0
#: High payload rate used by the paper (packets per second).
PAPER_HIGH_RATE_PPS = 40.0
#: Constant packet size assumed by the paper (bytes).  The adversary cannot
#: use packet sizes, but link serialisation delays still need one.
PAPER_PACKET_SIZE_BYTES = 512


def ms_to_s(value_ms: ArrayLike) -> ArrayLike:
    """Convert milliseconds to seconds."""
    return np.multiply(value_ms, MS)


def s_to_ms(value_s: ArrayLike) -> ArrayLike:
    """Convert seconds to milliseconds."""
    return np.divide(value_s, MS)


def us_to_s(value_us: ArrayLike) -> ArrayLike:
    """Convert microseconds to seconds."""
    return np.multiply(value_us, US)


def s_to_us(value_s: ArrayLike) -> ArrayLike:
    """Convert seconds to microseconds."""
    return np.divide(value_s, US)


def pps_to_interval(rate_pps: ArrayLike) -> ArrayLike:
    """Convert a packet rate (packets/second) to a mean inter-arrival time.

    Raises
    ------
    ValueError
        If ``rate_pps`` is not strictly positive.
    """
    rate = np.asarray(rate_pps, dtype=float)
    if np.any(rate <= 0.0):
        raise ValueError(f"packet rate must be > 0, got {rate_pps!r}")
    result = 1.0 / rate
    return float(result) if np.isscalar(rate_pps) or result.ndim == 0 else result


def interval_to_pps(interval_s: ArrayLike) -> ArrayLike:
    """Convert a mean inter-arrival time (seconds) to a packet rate."""
    interval = np.asarray(interval_s, dtype=float)
    if np.any(interval <= 0.0):
        raise ValueError(f"interval must be > 0, got {interval_s!r}")
    result = 1.0 / interval
    return float(result) if np.isscalar(interval_s) or result.ndim == 0 else result


def bytes_to_bits(num_bytes: ArrayLike) -> ArrayLike:
    """Convert a byte count to a bit count."""
    return np.multiply(num_bytes, 8)


def serialization_delay(packet_size_bytes: ArrayLike, link_rate_bps: float) -> ArrayLike:
    """Time (seconds) to serialise a packet onto a link of ``link_rate_bps``.

    Raises
    ------
    ValueError
        If the link rate is not strictly positive.
    """
    if link_rate_bps <= 0.0:
        raise ValueError(f"link rate must be > 0 bps, got {link_rate_bps!r}")
    return np.divide(bytes_to_bits(packet_size_bytes), link_rate_bps)


def utilization(offered_load_pps: float, packet_size_bytes: float, link_rate_bps: float) -> float:
    """Fraction of a link's capacity consumed by a packet stream.

    Parameters
    ----------
    offered_load_pps:
        Aggregate packet rate offered to the link.
    packet_size_bytes:
        Per-packet size in bytes.
    link_rate_bps:
        Link capacity in bits per second.
    """
    if offered_load_pps < 0.0:
        raise ValueError("offered load must be >= 0")
    return float(offered_load_pps * serialization_delay(packet_size_bytes, link_rate_bps))


def rate_for_utilization(target_utilization: float, packet_size_bytes: float, link_rate_bps: float) -> float:
    """Packet rate that drives a link to ``target_utilization``.

    This is the inverse of :func:`utilization` and is used by the Figure 6
    cross-traffic sweep to hit the utilization values on the x-axis.
    """
    if not 0.0 <= target_utilization:
        raise ValueError("target utilization must be >= 0")
    per_packet = serialization_delay(packet_size_bytes, link_rate_bps)
    return float(target_utilization / per_packet)


__all__ = [
    "MS",
    "US",
    "MINUTE",
    "HOUR",
    "DAY",
    "PAPER_TIMER_INTERVAL_S",
    "PAPER_LOW_RATE_PPS",
    "PAPER_HIGH_RATE_PPS",
    "PAPER_PACKET_SIZE_BYTES",
    "ms_to_s",
    "s_to_ms",
    "us_to_s",
    "s_to_us",
    "pps_to_interval",
    "interval_to_pps",
    "bytes_to_bits",
    "serialization_delay",
    "utilization",
    "rate_for_utilization",
]
