"""Declarative scenarios: define a padded-link sweep in a file, not a module.

A :class:`ScenarioSpec` is the data-only description of a scenario grid —
a base :class:`~repro.experiments.base.ScenarioConfig` plus the canonical
axes (``policies × rate_pairs × hops × utilizations``) and the run settings
(sample sizes, trials, collection mode, seed).  It loads from a plain dict
(:meth:`ScenarioSpec.from_dict`) or a TOML file
(:meth:`ScenarioSpec.from_toml`), so a brand-new scenario needs no Python:

.. code-block:: toml

    name = "my_wan"
    title = "CIT on a loaded 5-hop WAN path"

    [base]
    policy = "cit"            # or "vit:1e-4", or {kind="VIT", sigma_t=1e-4}
    n_hops = 5
    link_rate_bps = 80e6

    [grid]
    utilizations = [0.1, 0.3, 0.5]

    [run]
    mode = "hybrid"
    sample_sizes = [1000]
    trials = 10

    # repro run --scenario my_wan.toml --jobs 4 --cache-dir .sweep-cache

Instead of the ``[grid]`` product, a scenario may enumerate its points
explicitly as ``[[points]]`` tables — each names a key and overrides any
``[base]`` field, compiling through
:meth:`~repro.runner.grid.GridSpec.from_points`:

.. code-block:: toml

    [[points]]
    key = "lan"
    n_hops = 0

    [[points]]
    key = "wan-loaded"
    n_hops = 15
    cross_utilization = 0.4

A directory of scenario files is a *scenario suite*:
``repro sweep --scenario DIR/`` pools the cells of every ``*.toml`` inside.

:class:`ScenarioExperiment` wraps a spec as a first-class
:class:`~repro.api.protocol.Experiment`: its cells pool into any sweep, it
caches into the same results store, and it aggregates across seeds like the
figure experiments.  The result reports the empirical detection rate per
(grid point, feature, sample size) against the closed-form theorem where
the paper provides one.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.registry import DEFAULT_SEED
from repro.core.theorems import (
    detection_rate_entropy,
    detection_rate_mean,
    detection_rate_variance,
)
from repro.exceptions import ConfigurationError
from repro.experiments.base import CollectionMode, ScenarioConfig, resolve_seeds
from repro.experiments.report import (
    format_table,
    render_experiment_report,
    seed_suffix,
    with_ci_column,
)
from repro.padding.policies import PaddingPolicy, cit_policy, vit_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.runner import GridSpec, SweepCell, SweepRunner

try:  # Python 3.11+; 3.10 installs the tomli backport (see pyproject.toml).
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on Python 3.10
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ImportError:
        _toml = None

#: Whether a TOML parser is available (guards :meth:`ScenarioSpec.from_toml`).
TOML_AVAILABLE = _toml is not None

#: Feature statistics evaluated by default (the paper's three).
_DEFAULT_FEATURES: Tuple[str, ...] = ("mean", "variance", "entropy")

#: ScenarioConfig fields a scenario file's ``[base]`` table may set.
_BASE_FIELDS: Tuple[str, ...] = (
    "policy",
    "low_rate_pps",
    "high_rate_pps",
    "n_hops",
    "link_rate_bps",
    "cross_utilization",
    "packet_size_bytes",
    "warmup_time",
)

_GRID_KEYS: Tuple[str, ...] = ("policies", "rate_pairs", "hops", "utilizations")
_RUN_KEYS: Tuple[str, ...] = (
    "sample_sizes",
    "trials",
    "mode",
    "seed",
    "features",
    "entropy_bin_width",
)


def parse_policy(value: Union[str, Mapping[str, Any], PaddingPolicy]) -> PaddingPolicy:
    """A padding policy from its scenario-file spelling.

    Strings: ``"cit"``, ``"cit:<tau>"``, ``"vit:<sigma_t>"`` or
    ``"vit:<sigma_t>:<tau>"`` (seconds).  Tables: ``kind`` (``"CIT"`` /
    ``"VIT"``) plus the :class:`~repro.padding.policies.PaddingPolicy`
    keyword fields (``mean_interval``, ``sigma_t``, ``family``, ``name``).
    """
    if isinstance(value, PaddingPolicy):
        return value
    if isinstance(value, str):
        parts = [part.strip() for part in value.split(":")]
        kind = parts[0].lower()
        try:
            if kind == "cit" and len(parts) == 1:
                return cit_policy()
            if kind == "cit" and len(parts) == 2:
                return cit_policy(float(parts[1]))
            if kind == "vit" and len(parts) == 2:
                return vit_policy(sigma_t=float(parts[1]))
            if kind == "vit" and len(parts) == 3:
                return vit_policy(sigma_t=float(parts[1]), mean_interval=float(parts[2]))
        except ValueError:
            raise ConfigurationError(
                f"policy spec {value!r} has a non-numeric parameter"
            ) from None
        raise ConfigurationError(
            f"policy spec {value!r} is not 'cit', 'cit:<tau>', 'vit:<sigma_t>' "
            f"or 'vit:<sigma_t>:<tau>'"
        )
    if isinstance(value, Mapping):
        table = dict(value)
        kind = str(table.pop("kind", "")).upper()
        unknown = set(table) - {"mean_interval", "sigma_t", "family", "name"}
        if unknown:
            raise ConfigurationError(
                f"policy table has unknown keys {sorted(unknown)}"
            )
        if kind == "CIT":
            table.pop("family", None)
            if table.pop("sigma_t", 0.0):
                raise ConfigurationError("a CIT policy table must not set sigma_t")
            return cit_policy(**table)
        if kind == "VIT":
            if "sigma_t" not in table:
                raise ConfigurationError("a VIT policy table needs sigma_t")
            return vit_policy(**table)
        raise ConfigurationError(
            f"policy table kind must be 'CIT' or 'VIT', got {kind or '(missing)'!r}"
        )
    raise ConfigurationError(f"cannot parse a padding policy from {value!r}")


def _policy_to_dict(policy: PaddingPolicy) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "kind": policy.kind,
        "mean_interval": policy.mean_interval,
        "name": policy.name,
    }
    if policy.kind == "VIT":
        entry["sigma_t"] = policy.sigma_t
        entry["family"] = policy.family
    return entry


@dataclass(frozen=True)
class ScenarioPoint:
    """One explicit grid point: a display key plus ``[base]``-field overrides.

    The file-level counterpart of :class:`~repro.runner.grid.GridPoint` —
    a ``[[points]]`` table carries a ``key`` and any subset of the
    ``[base]`` fields; the point's scenario is the base with those fields
    replaced.  Overrides are stored as a sorted ``(field, value)`` tuple so
    the spec stays hashable and two specs listing the same overrides in a
    different order compare equal.
    """

    key: str
    overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.key, str) or not self.key:
            raise ConfigurationError(
                f"a [[points]] entry needs a non-empty string key, got {self.key!r}"
            )
        if "@" in self.key or "/" in self.key:
            raise ConfigurationError(
                f"point key {self.key!r} must not contain '/' or '@' "
                f"(it becomes one cell-key segment)"
            )
        if isinstance(self.overrides, Mapping):
            pairs = tuple(self.overrides.items())
        else:
            pairs = tuple((str(name), value) for name, value in self.overrides)
        unknown = sorted({name for name, _ in pairs} - set(_BASE_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"[[points]] entry {self.key!r} has unknown keys {unknown}; "
                f"valid keys: {', '.join(_BASE_FIELDS)}"
            )
        if len({name for name, _ in pairs}) != len(pairs):
            raise ConfigurationError(
                f"[[points]] entry {self.key!r} repeats an override field"
            )
        parsed = tuple(
            (name, parse_policy(value) if name == "policy" else value)
            for name, value in sorted(pairs)
        )
        object.__setattr__(self, "overrides", parsed)

    def scenario(self, base: ScenarioConfig) -> ScenarioConfig:
        """The point's scenario: ``base`` with the overrides applied."""
        return replace(base, **dict(self.overrides))

    def to_dict(self) -> Dict[str, Any]:
        """The ``[[points]]`` table as plain data (inverse of parsing)."""
        entry: Dict[str, Any] = {"key": self.key}
        for name, value in self.overrides:
            entry[name] = _policy_to_dict(value) if name == "policy" else value
        return entry


@dataclass(frozen=True)
class ScenarioSpec:
    """A data-only scenario grid: base scenario × axes × run settings.

    Attributes mirror the scenario-file schema (see the module docstring).
    An omitted axis keeps the base scenario's value and contributes no key
    segment, exactly like :meth:`repro.runner.grid.GridSpec.product`.
    """

    name: str
    title: str = ""
    description: str = ""
    base: ScenarioConfig = field(default_factory=ScenarioConfig)
    policies: Optional[Tuple[PaddingPolicy, ...]] = None
    rate_pairs: Optional[Tuple[Tuple[float, float], ...]] = None
    hops: Optional[Tuple[int, ...]] = None
    utilizations: Optional[Tuple[float, ...]] = None
    points: Optional[Tuple[ScenarioPoint, ...]] = None
    sample_sizes: Tuple[int, ...] = (1000,)
    trials: int = 10
    mode: CollectionMode = CollectionMode.ANALYTIC
    seed: int = DEFAULT_SEED
    features: Tuple[str, ...] = _DEFAULT_FEATURES
    entropy_bin_width: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        if "@" in self.name or "/" in self.name:
            raise ConfigurationError(
                f"scenario name {self.name!r} must not contain '/' or '@' "
                f"(it prefixes every cell key)"
            )
        object.__setattr__(self, "mode", CollectionMode(self.mode))
        if self.policies is not None:
            object.__setattr__(
                self, "policies", tuple(parse_policy(p) for p in self.policies)
            )
        if self.rate_pairs is not None:
            object.__setattr__(
                self,
                "rate_pairs",
                tuple(tuple(float(r) for r in pair) for pair in self.rate_pairs),
            )
        if self.hops is not None:
            object.__setattr__(self, "hops", tuple(int(h) for h in self.hops))
        if self.utilizations is not None:
            object.__setattr__(
                self, "utilizations", tuple(float(u) for u in self.utilizations)
            )
        if self.points is not None:
            parsed_points: List[ScenarioPoint] = []
            for entry in self.points:
                if isinstance(entry, ScenarioPoint):
                    parsed_points.append(entry)
                elif isinstance(entry, Mapping):
                    table = dict(entry)
                    parsed_points.append(
                        ScenarioPoint(
                            key=table.pop("key", None),
                            overrides=tuple(table.items()),
                        )
                    )
                else:
                    raise ConfigurationError(
                        f"a [[points]] entry must be a table, got {entry!r}"
                    )
            if not parsed_points:
                raise ConfigurationError("[[points]] must list at least one point")
            object.__setattr__(self, "points", tuple(parsed_points))
            declared_axes = [
                axis for axis in _GRID_KEYS if getattr(self, axis) is not None
            ]
            if declared_axes:
                raise ConfigurationError(
                    f"a scenario declares either [grid] axes or explicit "
                    f"[[points]] tables, not both (got axes {declared_axes} "
                    f"alongside {len(parsed_points)} points)"
                )
            seen_keys = set()
            for point in parsed_points:
                if point.key in seen_keys:
                    raise ConfigurationError(
                        f"[[points]] keys must be unique; {point.key!r} appears twice"
                    )
                seen_keys.add(point.key)
        object.__setattr__(self, "sample_sizes", tuple(int(n) for n in self.sample_sizes))
        object.__setattr__(self, "features", tuple(str(f) for f in self.features))
        # Grid construction re-validates everything scenario-level; fail the
        # obviously wrong run settings here with direct messages.
        if not self.sample_sizes:
            raise ConfigurationError("sample_sizes must be non-empty")
        if self.trials < 2:
            raise ConfigurationError("trials must be >= 2")

    # ------------------------------------------------------------ file formats
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a spec from the plain-data scenario-file layout."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"a scenario document must be a table, got {data!r}")
        payload = dict(data)
        name = payload.pop("name", None)
        if not name:
            raise ConfigurationError("scenario file: top-level 'name' is required")
        title = str(payload.pop("title", ""))
        description = str(payload.pop("description", ""))
        base_table = dict(payload.pop("base", {}) or {})
        grid_table = dict(payload.pop("grid", {}) or {})
        points_list = payload.pop("points", None)
        run_table = dict(payload.pop("run", {}) or {})
        if payload:
            raise ConfigurationError(
                f"scenario file: unknown top-level keys {sorted(payload)}; "
                f"expected name/title/description, the base/grid/run tables "
                f"and optional [[points]] tables"
            )

        unknown = set(base_table) - set(_BASE_FIELDS)
        if unknown:
            raise ConfigurationError(
                f"scenario [base] has unknown keys {sorted(unknown)}; "
                f"valid keys: {', '.join(_BASE_FIELDS)}"
            )
        if "policy" in base_table:
            base_table["policy"] = parse_policy(base_table["policy"])
        base = ScenarioConfig(**base_table)

        unknown = set(grid_table) - set(_GRID_KEYS)
        if unknown:
            raise ConfigurationError(
                f"scenario [grid] has unknown keys {sorted(unknown)}; "
                f"valid axes: {', '.join(_GRID_KEYS)}"
            )
        unknown = set(run_table) - set(_RUN_KEYS)
        if unknown:
            raise ConfigurationError(
                f"scenario [run] has unknown keys {sorted(unknown)}; "
                f"valid keys: {', '.join(_RUN_KEYS)}"
            )
        kwargs: Dict[str, Any] = {}
        if "policies" in grid_table:
            kwargs["policies"] = tuple(parse_policy(p) for p in grid_table["policies"])
        for axis in ("rate_pairs", "hops", "utilizations"):
            if axis in grid_table:
                kwargs[axis] = tuple(grid_table[axis])
        if points_list is not None:
            if not isinstance(points_list, Sequence) or isinstance(points_list, str):
                raise ConfigurationError(
                    f"scenario 'points' must be an array of tables "
                    f"([[points]]), got {points_list!r}"
                )
            kwargs["points"] = tuple(points_list)
        for key, value in run_table.items():
            kwargs[key] = tuple(value) if key in ("sample_sizes", "features") else value
        return cls(
            name=str(name), title=title, description=description, base=base, **kwargs
        )

    @classmethod
    def from_toml(cls, path: Union[str, Path]) -> "ScenarioSpec":
        """Load a scenario file (``repro run --scenario my_wan.toml``)."""
        if _toml is None:  # pragma: no cover - Python 3.10 without tomli
            raise ConfigurationError(
                "reading TOML scenario files needs Python >= 3.11 (tomllib) "
                "or the 'tomli' package; build the spec with "
                "ScenarioSpec.from_dict instead"
            )
        path = Path(path)
        if not path.is_file():
            raise ConfigurationError(f"scenario file {str(path)!r} does not exist")
        try:
            with path.open("rb") as handle:
                data = _toml.load(handle)
        except _toml.TOMLDecodeError as exc:
            raise ConfigurationError(
                f"scenario file {str(path)!r} is not valid TOML: {exc}"
            ) from None
        return cls.from_dict(data)

    def to_dict(self) -> Dict[str, Any]:
        """The spec as plain data (inverse of :meth:`from_dict`)."""
        base: Dict[str, Any] = {
            "policy": _policy_to_dict(self.base.policy),
            "low_rate_pps": self.base.low_rate_pps,
            "high_rate_pps": self.base.high_rate_pps,
            "n_hops": self.base.n_hops,
            "link_rate_bps": self.base.link_rate_bps,
            "cross_utilization": self.base.cross_utilization,
            "packet_size_bytes": self.base.packet_size_bytes,
            "warmup_time": self.base.warmup_time,
        }
        grid: Dict[str, Any] = {}
        if self.policies is not None:
            grid["policies"] = [_policy_to_dict(p) for p in self.policies]
        if self.rate_pairs is not None:
            grid["rate_pairs"] = [list(pair) for pair in self.rate_pairs]
        if self.hops is not None:
            grid["hops"] = list(self.hops)
        if self.utilizations is not None:
            grid["utilizations"] = list(self.utilizations)
        run: Dict[str, Any] = {
            "sample_sizes": list(self.sample_sizes),
            "trials": self.trials,
            "mode": self.mode.value,
            "seed": self.seed,
            "features": list(self.features),
        }
        if self.entropy_bin_width is not None:
            run["entropy_bin_width"] = self.entropy_bin_width
        document: Dict[str, Any] = {"name": self.name}
        if self.title:
            document["title"] = self.title
        if self.description:
            document["description"] = self.description
        document["base"] = base
        if grid:
            document["grid"] = grid
        if self.points is not None:
            document["points"] = [point.to_dict() for point in self.points]
        document["run"] = run
        return document

    # ------------------------------------------------------------------- grid
    def grid(self, seeds: Optional[Sequence[int]] = None) -> "GridSpec":
        """The spec compiled into a grid: axis product or explicit points."""
        from repro.runner import GridPoint, GridSpec

        if self.points is not None:
            return GridSpec.from_points(
                self.name,
                [
                    GridPoint(
                        key=f"{self.name}/{point.key}",
                        scenario=point.scenario(self.base),
                    )
                    for point in self.points
                ],
                seeds=resolve_seeds(self.seed, seeds),
                sample_sizes=self.sample_sizes,
                trials=self.trials,
                mode=self.mode,
                features=self.features,
                entropy_bin_width=self.entropy_bin_width,
            )
        return GridSpec.product(
            self.name,
            self.base,
            policies=list(self.policies) if self.policies is not None else None,
            rate_pairs=list(self.rate_pairs) if self.rate_pairs is not None else None,
            hops=list(self.hops) if self.hops is not None else None,
            utilizations=(
                list(self.utilizations) if self.utilizations is not None else None
            ),
            seeds=resolve_seeds(self.seed, seeds),
            sample_sizes=self.sample_sizes,
            trials=self.trials,
            mode=self.mode,
            features=self.features,
            entropy_bin_width=self.entropy_bin_width,
        )


@dataclass
class ScenarioResult:
    """Empirical vs theoretical detection rates for a declarative scenario."""

    spec: ScenarioSpec
    empirical_detection_rate: Dict[str, Dict[str, Dict[int, float]]]
    theoretical_detection_rate: Dict[str, Dict[str, Dict[int, float]]]
    variance_ratios: Dict[str, float]
    empirical_ci: Optional[Dict[str, Dict[str, Dict[int, Tuple[float, float]]]]] = None
    n_seeds: int = 1
    confidence: Optional[float] = None

    def _point_label(self, point_key: str) -> str:
        prefix = f"{self.spec.name}/"
        if point_key.startswith(prefix):
            return point_key[len(prefix):]
        return "(base)" if point_key == self.spec.name else point_key

    def rows(self):
        """(point, feature, sample size, r, empirical, theorem) rows."""
        for point_key in self.empirical_detection_rate:
            for feature, by_n in sorted(self.empirical_detection_rate[point_key].items()):
                for n, empirical in sorted(by_n.items()):
                    yield (
                        self._point_label(point_key),
                        feature,
                        n,
                        self.variance_ratios[point_key],
                        empirical,
                        self.theoretical_detection_rate[point_key][feature][n],
                    )

    def to_text(self) -> str:
        title = self.spec.title or f"Scenario {self.spec.name}"
        section = "detection rate per grid point" + seed_suffix(self.n_seeds)
        headers = ["point", "feature", "sample size", "r", "empirical", "theorem"]
        rows = self.rows()
        if self.empirical_ci is not None:
            label_to_key = {
                self._point_label(key): key for key in self.empirical_detection_rate
            }
            headers, rows = with_ci_column(
                headers,
                rows,
                5,
                self.confidence,
                lambda row: self.empirical_ci.get(label_to_key[row[0]], {})
                .get(row[1], {})
                .get(row[2]),
            )
        sections = [(section, format_table(headers, rows))]
        if self.spec.description:
            sections.insert(0, ("about", self.spec.description))
        return render_experiment_report(title, sections)


class ScenarioExperiment:
    """A declarative scenario as a first-class :class:`Experiment`."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.name = spec.name

    @property
    def config(self) -> ScenarioSpec:
        """The spec doubles as the experiment's typed configuration."""
        return self.spec

    def describe(self) -> str:
        """One-line summary shown by ``repro list`` and ``Experiment.describe``."""
        return self.spec.title or self.spec.description or (
            f"declarative scenario {self.spec.name!r}"
        )

    def cells(self, seeds: Optional[Sequence[int]] = None) -> "List[SweepCell]":
        """One sweep-runner cell per (grid point, seed)."""
        return self.grid(seeds).cells()

    def grid(self, seeds: Optional[Sequence[int]] = None) -> "GridSpec":
        """The spec's grid (see :meth:`ScenarioSpec.grid`)."""
        return self.spec.grid(seeds)

    def run(
        self,
        runner: "Optional[SweepRunner]" = None,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> ScenarioResult:
        from repro.runner import SweepRunner

        runner = runner if runner is not None else SweepRunner()
        return self.assemble(runner.run(self.cells(seeds)), seeds=seeds, confidence=confidence)

    def assemble(
        self,
        report: Any,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> ScenarioResult:
        """Build the scenario result from a sweep report containing its cells."""
        from repro.runner import experiment_view

        spec = self.spec
        resolved = resolve_seeds(spec.seed, seeds)
        grid = self.grid(resolved)
        view = experiment_view(report, grid, confidence=confidence)
        empirical: Dict[str, Dict[str, Dict[int, float]]] = {}
        theoretical: Dict[str, Dict[str, Dict[int, float]]] = {}
        empirical_ci: Dict[str, Dict[str, Dict[int, Tuple[float, float]]]] = {}
        ratios: Dict[str, float] = {}
        has_ci = False
        result_confidence: Optional[float] = None
        for point in grid.points:
            cell = view[point.key]
            cell_ci = getattr(cell, "detection_rate_ci", None)
            r = point.scenario.variance_ratio()
            ratios[point.key] = r
            empirical[point.key] = {name: {} for name in spec.features}
            theoretical[point.key] = {name: {} for name in spec.features}
            empirical_ci[point.key] = {name: {} for name in spec.features}
            for name in spec.features:
                for n in spec.sample_sizes:
                    empirical[point.key][name][n] = cell.empirical_detection_rate[name][n]
                    if cell_ci is not None:
                        empirical_ci[point.key][name][n] = cell_ci[name][n]
                        has_ci = True
                        result_confidence = getattr(cell, "confidence", None)
                    if name == "mean":
                        theoretical[point.key][name][n] = detection_rate_mean(r)
                    elif name == "variance":
                        theoretical[point.key][name][n] = detection_rate_variance(r, n)
                    elif name == "entropy":
                        theoretical[point.key][name][n] = detection_rate_entropy(r, n)
                    else:
                        # Extension features have no closed form in the paper.
                        theoretical[point.key][name][n] = float("nan")
        return ScenarioResult(
            spec=spec,
            empirical_detection_rate=empirical,
            theoretical_detection_rate=theoretical,
            variance_ratios=ratios,
            empirical_ci=empirical_ci if has_ci else None,
            n_seeds=len(resolved),
            confidence=result_confidence,
        )


__all__ = [
    "TOML_AVAILABLE",
    "ScenarioExperiment",
    "ScenarioPoint",
    "ScenarioResult",
    "ScenarioSpec",
    "parse_policy",
]
