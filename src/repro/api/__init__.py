"""The public experiment API: protocol, registry, results, and scenario files.

This package is the stable surface for defining and running evaluations:

* :class:`~repro.api.protocol.Experiment` — the formal protocol every
  experiment satisfies (``name`` / ``describe()`` / ``cells(seeds)`` /
  ``assemble(report, seeds, confidence)`` / ``run``).
* the **registry** — :func:`~repro.api.registry.register_experiment`
  publishes an experiment under a name;
  :func:`~repro.api.registry.get_experiment` builds one from a preset plus
  ``--set``-style overrides; :func:`~repro.api.registry.list_experiments`
  enumerates them.  The paper's figures (``fig4``–``fig8``), the three
  ablations and the population experiment are pre-registered on import.
* :class:`~repro.api.protocol.ExperimentResult` — a typed wrapper around
  one executed experiment: rendered tables, raw cell results, and full
  provenance (preset, seeds, confidence, cell fingerprints).
* **scenario files** — :class:`~repro.api.scenario.ScenarioSpec` defines a
  brand-new scenario grid in a dict or TOML file and
  :class:`~repro.api.scenario.ScenarioExperiment` runs it like any
  registered experiment (``repro run --scenario my_wan.toml``).

Quick tour:

.. code-block:: python

    from repro.api import get_experiment, list_experiments, run_experiment

    list_experiments()
    # ['ablation_estimators', ..., 'fig4', 'fig5', 'fig6', 'fig8']

    experiment = get_experiment("fig6", preset="fast", overrides={"trials": 30})
    outcome = run_experiment(experiment, seeds=range(2003, 2008), confidence=0.95)
    print(outcome.to_text())          # the figure's report, mean ± CI per point
    outcome.provenance()              # seeds, preset, cell fingerprints, ...

See ``docs/api.md`` for the scenario-file schema and a worked example.
"""

from repro.api.protocol import Experiment, ExperimentResult, run_experiment
from repro.api.registry import (
    DEFAULT_SEED,
    PRESETS,
    ExperimentDefinition,
    apply_overrides,
    describe_experiment,
    experiment_definition,
    get_experiment,
    list_experiments,
    parse_set_options,
    register_experiment,
)
from repro.api.scenario import (
    TOML_AVAILABLE,
    ScenarioExperiment,
    ScenarioPoint,
    ScenarioResult,
    ScenarioSpec,
    parse_policy,
)

# Importing the definition modules is what populates the registry.
from repro.api import ablations as _ablations  # noqa: F401
from repro.api import figures as _figures  # noqa: F401
from repro.api import population as _population  # noqa: F401

__all__ = [
    "DEFAULT_SEED",
    "PRESETS",
    "TOML_AVAILABLE",
    "Experiment",
    "ExperimentDefinition",
    "ExperimentResult",
    "ScenarioExperiment",
    "ScenarioPoint",
    "ScenarioResult",
    "ScenarioSpec",
    "apply_overrides",
    "describe_experiment",
    "experiment_definition",
    "get_experiment",
    "list_experiments",
    "parse_policy",
    "parse_set_options",
    "register_experiment",
    "run_experiment",
]
