"""Registry definitions for the ablation experiments.

Registering the ablations makes them runnable from the CLI for the first
time (``repro run ablation_tap --preset fast``) and lets ``repro sweep``
pool their cells with the figures'.  The ``paper`` presets reproduce the
historical benchmark settings; ``fast`` keeps the full grids on cheaper
collection modes; ``quick``/``smoke`` shrink the grids to seconds for CLI
tests and CI.
"""

from __future__ import annotations

from repro.api.registry import ExperimentDefinition, register_experiment
from repro.experiments import (
    CollectionMode,
    EstimatorAblationConfig,
    EstimatorAblationExperiment,
    TapAblationConfig,
    TapAblationExperiment,
    VitFamilyAblationConfig,
    VitFamilyAblationExperiment,
)


@register_experiment("ablation_estimators")
class EstimatorAblationDefinition(ExperimentDefinition):
    """Ablation: the adversary's entropy bin width and KDE bandwidth rule."""

    config_cls = EstimatorAblationConfig

    def build(self, config: EstimatorAblationConfig) -> EstimatorAblationExperiment:
        return EstimatorAblationExperiment(config)

    def preset_config(self, preset: str, seed: int) -> EstimatorAblationConfig:
        if preset == "paper":
            return EstimatorAblationConfig(seed=seed)
        if preset == "fast":
            return EstimatorAblationConfig(
                trials=10, mode=CollectionMode.ANALYTIC, seed=seed
            )
        if preset == "quick":
            return EstimatorAblationConfig(
                bin_widths=(2e-5, 2e-4),
                kde_bandwidths=("silverman", 2.0),
                sample_size=300,
                trials=6,
                mode=CollectionMode.ANALYTIC,
                seed=seed,
            )
        return EstimatorAblationConfig(
            bin_widths=(2e-5,),
            kde_bandwidths=("silverman", 2.0),
            sample_size=100,
            trials=4,
            mode=CollectionMode.ANALYTIC,
            seed=seed,
        )


@register_experiment("ablation_tap")
class TapAblationDefinition(ExperimentDefinition):
    """Ablation: detection rate vs the tap's distance behind loaded routers."""

    config_cls = TapAblationConfig

    def build(self, config: TapAblationConfig) -> TapAblationExperiment:
        return TapAblationExperiment(config)

    def preset_config(self, preset: str, seed: int) -> TapAblationConfig:
        if preset == "paper":
            return TapAblationConfig(seed=seed)
        if preset == "fast":
            return TapAblationConfig(
                sample_size=400, trials=8, mode=CollectionMode.HYBRID, seed=seed
            )
        if preset == "quick":
            return TapAblationConfig(
                hop_counts=(0, 3, 15),
                sample_size=300,
                trials=6,
                mode=CollectionMode.ANALYTIC,
                seed=seed,
            )
        return TapAblationConfig(
            hop_counts=(0, 3),
            sample_size=100,
            trials=4,
            mode=CollectionMode.ANALYTIC,
            seed=seed,
        )


@register_experiment("ablation_vit")
class VitFamilyAblationDefinition(ExperimentDefinition):
    """Ablation: VIT interval distribution families at identical (tau, sigma_T)."""

    config_cls = VitFamilyAblationConfig

    def build(self, config: VitFamilyAblationConfig) -> VitFamilyAblationExperiment:
        return VitFamilyAblationExperiment(config)

    def preset_config(self, preset: str, seed: int) -> VitFamilyAblationConfig:
        if preset == "paper":
            return VitFamilyAblationConfig(seed=seed)
        if preset == "fast":
            return VitFamilyAblationConfig(
                sample_size=400, trials=6, mode=CollectionMode.SIMULATION, seed=seed
            )
        if preset == "quick":
            return VitFamilyAblationConfig(
                families=("normal", "uniform"),
                sample_size=200,
                trials=4,
                mode=CollectionMode.SIMULATION,
                seed=seed,
            )
        # smoke: the analytic model sees only sigma_T (not the family), so
        # this exercises the pipeline rather than the families themselves.
        return VitFamilyAblationConfig(
            families=("normal", "uniform"),
            sample_size=100,
            trials=4,
            mode=CollectionMode.ANALYTIC,
            seed=seed,
        )


__all__ = [
    "EstimatorAblationDefinition",
    "TapAblationDefinition",
    "VitFamilyAblationDefinition",
]
