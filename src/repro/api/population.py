"""Registry definition for the population experiment.

Registering it makes the population subsystem runnable from the CLI
(``repro run population --preset fast``) and lets ``repro sweep`` pool its
per-AS and multi-rate cells with the figures'.  The cost of the experiment
scales with the number of ASes, not the number of flows — a thousand-flow
population compiles into one cell per inhabited AS plus a handful of
multi-rate depth cells — so every preset keeps the full 600-flow population
and shrinks only the graph, the trials and the sample sizes.
"""

from __future__ import annotations

from repro.api.registry import ExperimentDefinition, register_experiment
from repro.experiments import CollectionMode
from repro.population import PopulationConfig, PopulationExperiment


@register_experiment("population")
class PopulationDefinition(ExperimentDefinition):
    """Population-scale anonymity on a generated multi-AS topology."""

    config_cls = PopulationConfig

    def build(self, config: PopulationConfig) -> PopulationExperiment:
        return PopulationExperiment(config)

    def preset_config(self, preset: str, seed: int) -> PopulationConfig:
        if preset == "paper":
            return PopulationConfig(seed=seed)
        if preset == "fast":
            return PopulationConfig(
                trials=8, mode=CollectionMode.ANALYTIC, seed=seed
            )
        if preset == "quick":
            return PopulationConfig(
                n_as=8,
                sample_sizes=(100, 300),
                trials=6,
                mode=CollectionMode.ANALYTIC,
                mix_depth_points=2,
                seed=seed,
            )
        return PopulationConfig(
            n_as=5,
            sample_sizes=(50, 100),
            trials=4,
            mode=CollectionMode.ANALYTIC,
            mix_depth_points=2,
            seed=seed,
        )


__all__ = ["PopulationDefinition"]
