"""The formal ``Experiment`` protocol and the typed ``ExperimentResult``.

Before this module existed the contract between the CLI, the sweep runner
and the figure modules was informal: every ``FigNExperiment`` happened to
expose ``cells()`` / ``run()`` / ``assemble()`` and a comment in
``repro/cli.py`` said so.  :class:`Experiment` states that contract as a
:func:`typing.runtime_checkable` protocol, so anything that satisfies it —
the figures, the ablations, a :class:`~repro.api.scenario.ScenarioExperiment`
built from a TOML file, or user code — plugs into the registry, the CLI and
the sweep runner identically.

:func:`run_experiment` is the one-call entry point: expand the experiment's
cells, execute them through a :class:`~repro.runner.runner.SweepRunner`
(parallelism, caching, retries), assemble the experiment-specific result,
and wrap everything in an :class:`ExperimentResult` carrying the raw cell
results and full provenance (seeds, confidence, preset, cell fingerprints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.experiments.base import resolve_seeds
from repro.runner import CellResult, SweepCell, SweepReport, SweepRunner


@runtime_checkable
class Experiment(Protocol):
    """What the registry, the CLI and the sweep runner require of an experiment.

    An experiment is a *declarative* object: it owns a typed configuration,
    expands it into independent :class:`~repro.runner.cells.SweepCell` units,
    and folds a sweep report back into a figure-style result object with
    ``rows()``-like accessors and ``to_text()``.  It never executes cells
    itself — that is the runner's job — which is what lets ``repro sweep``
    pool cells from any mix of experiments into one worker pool and one
    cache.

    Contract (enforced for registered experiments by the registry contract
    test in ``tests/api/test_registry.py``):

    * ``name`` is unique among registered experiments and prefixes every
      cell key the experiment emits.
    * ``cells(seeds)`` is deterministic: two calls with equal configuration
      and seeds return cells with identical keys and fingerprints.
    * ``assemble(report, seeds, confidence)`` reads only this experiment's
      cells from ``report``, so a report pooled across many experiments
      assembles per-experiment results independently.
    * ``run(runner, seeds, confidence)`` is ``assemble(runner.run(cells(
      seeds)))`` — a convenience, not a place for extra logic.
    """

    name: str
    config: Any

    def describe(self) -> str:
        """One-line human-readable summary (shown by ``repro list``)."""
        ...

    def cells(self, seeds: Optional[Sequence[int]] = None) -> List[SweepCell]:
        """The experiment's grid as schedulable sweep cells."""
        ...

    def run(
        self,
        runner: Optional[SweepRunner] = None,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> Any:
        """Execute the cells and assemble the experiment-specific result."""
        ...

    def assemble(
        self,
        report: Any,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> Any:
        """Fold a sweep report containing this experiment's cells into a result."""
        ...


@dataclass
class ExperimentResult:
    """One executed experiment with its provenance.

    Attributes
    ----------
    name:
        The experiment's registry name.
    result:
        The experiment-specific result object (``Fig6Result``, an ablation
        result, a :class:`~repro.api.scenario.ScenarioResult`, ...); its
        ``to_text()`` renders the report tables.
    report:
        The raw :class:`~repro.runner.runner.SweepReport` the result was
        assembled from — per-cell empirical measurements plus cache
        accounting.
    seeds:
        The master seeds every grid point ran at.
    confidence:
        Bootstrap confidence level of the aggregated intervals, or ``None``.
    preset:
        The named preset the configuration came from, when the experiment
        was built by :func:`repro.api.registry.get_experiment`.
    overrides:
        Configuration overrides applied on top of the preset.
    fingerprints:
        Cell key → content-hash fingerprint, the exact identity of every
        record this run read or wrote in a results store.
    """

    name: str
    result: Any
    report: SweepReport
    seeds: Tuple[int, ...]
    confidence: Optional[float] = None
    preset: Optional[str] = None
    overrides: Dict[str, Any] = field(default_factory=dict)
    fingerprints: Dict[str, str] = field(default_factory=dict)

    @property
    def cell_results(self) -> Dict[str, CellResult]:
        """Raw per-cell results keyed by cell key."""
        return self.report.results

    def to_text(self) -> str:
        """The rendered report tables (identical to the wrapped result's)."""
        return self.result.to_text()

    def provenance(self) -> Dict[str, Any]:
        """Everything needed to reproduce or audit this run, as plain data."""
        return {
            "experiment": self.name,
            "preset": self.preset,
            "overrides": dict(self.overrides),
            "seeds": list(self.seeds),
            "confidence": self.confidence,
            "fingerprints": dict(self.fingerprints),
        }

    def summary(self) -> str:
        """The sweep's one-line cache accounting."""
        return self.report.summary()


def run_experiment(
    experiment: Experiment,
    runner: Optional[SweepRunner] = None,
    seeds: Optional[Sequence[int]] = None,
    confidence: Optional[float] = None,
    preset: Optional[str] = None,
    overrides: Optional[Dict[str, Any]] = None,
) -> ExperimentResult:
    """Run one experiment end to end and wrap the outcome with provenance.

    ``preset`` and ``overrides`` are recorded verbatim in the result's
    provenance; pass what the experiment was built from (the CLI does).
    """
    runner = runner if runner is not None else SweepRunner()
    cells = experiment.cells(seeds)
    report = runner.run(cells)
    result = experiment.assemble(report, seeds=seeds, confidence=confidence)
    default_seed = getattr(experiment.config, "seed", 0)
    return ExperimentResult(
        name=experiment.name,
        result=result,
        report=report,
        seeds=resolve_seeds(default_seed, seeds),
        confidence=confidence,
        preset=preset,
        overrides=dict(overrides) if overrides else {},
        fingerprints={cell.key: cell.fingerprint() for cell in cells},
    )


__all__ = ["Experiment", "ExperimentResult", "run_experiment"]
