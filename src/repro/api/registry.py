"""The experiment registry: plugin-style registration and typed lookup.

Experiments are published by registering a small *definition* class:

.. code-block:: python

    from repro.api import register_experiment, ExperimentDefinition

    @register_experiment("fig6")
    class Fig6Definition(ExperimentDefinition):
        \"\"\"Figure 6: detection rate vs shared-link utilization.\"\"\"

        config_cls = Fig6Config

        def build(self, config):
            return Fig6Experiment(config)

        def preset_config(self, preset, seed):
            ...

A definition owns the mapping from a named *preset* (``paper`` / ``fast`` /
``quick`` / ``smoke``) plus a master seed to a typed configuration, and the
construction of the experiment object from that configuration.  Consumers
never touch definitions directly:

* :func:`get_experiment` — ``get_experiment("fig6", preset="fast",
  overrides={"trials": 30})`` builds a ready-to-run
  :class:`~repro.api.protocol.Experiment`.
* :func:`list_experiments` — the registered names, sorted.
* :func:`describe_experiment` — one-line summary per name (``repro list``).

Overrides are applied with :func:`dataclasses.replace` against the preset's
configuration, with string coercion driven by the replaced field's current
value — which is what lets the CLI forward ``--set trials=30 --set
utilizations=0.1,0.3`` without per-experiment plumbing.  Invalid keys and
invalid values fail loudly with the configuration class's own message.
"""

from __future__ import annotations

import enum
from dataclasses import fields, is_dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.exceptions import ConfigurationError
from repro.api.protocol import Experiment

#: The named fidelity/run-time presets every registered experiment provides.
#: ``paper`` uses full event simulation at figure-like sizes; ``fast``
#: switches to the hybrid/analytic models; ``quick`` additionally shrinks the
#: grids to seconds; ``smoke`` is a tiny all-analytic grid for CI.
PRESETS: Tuple[str, ...] = ("paper", "fast", "quick", "smoke")

#: Default master seed of CLI runs (the paper's publication year).
DEFAULT_SEED = 2003


class ExperimentDefinition:
    """Base class for registry entries.

    Subclasses set :attr:`config_cls` and implement :meth:`preset_config`
    and :meth:`build`.
    """

    #: Registry name; filled in by :func:`register_experiment`.
    name: str = ""

    #: The experiment's configuration dataclass.
    config_cls: Optional[Type[Any]] = None

    def preset_config(self, preset: str, seed: int) -> Any:
        """The configuration realising ``preset`` at master seed ``seed``."""
        raise NotImplementedError

    def build(self, config: Any) -> Experiment:
        """Construct the experiment object from a configuration."""
        raise NotImplementedError

    @property
    def summary(self) -> str:
        """One-line description shown by ``repro list``.

        Delegates to the built experiment's ``describe()`` so there is a
        single source of truth for every experiment's summary — a definition
        docstring cannot drift from what the experiment says about itself.
        """
        return self.build(self.preset_config("smoke", DEFAULT_SEED)).describe()


_REGISTRY: Dict[str, ExperimentDefinition] = {}


def register_experiment(
    name: str,
) -> Callable[[Type[ExperimentDefinition]], Type[ExperimentDefinition]]:
    """Class decorator registering an :class:`ExperimentDefinition` under ``name``.

    Names must be unique; re-registering a name is almost always an import
    mistake and raises loudly.
    """
    if not isinstance(name, str) or not name:
        raise ConfigurationError(f"experiment name {name!r} must be a non-empty string")

    def decorator(cls: Type[ExperimentDefinition]) -> Type[ExperimentDefinition]:
        if not (isinstance(cls, type) and issubclass(cls, ExperimentDefinition)):
            raise ConfigurationError(
                f"@register_experiment({name!r}) must decorate an "
                f"ExperimentDefinition subclass, got {cls!r}"
            )
        if name in _REGISTRY:
            raise ConfigurationError(
                f"experiment {name!r} is already registered "
                f"(by {type(_REGISTRY[name]).__name__})"
            )
        definition = cls()
        definition.name = name
        if definition.config_cls is None or not is_dataclass(definition.config_cls):
            raise ConfigurationError(
                f"experiment {name!r}: config_cls must be a configuration dataclass"
            )
        _REGISTRY[name] = definition
        return cls

    return decorator


def list_experiments() -> List[str]:
    """The registered experiment names, sorted."""
    return sorted(_REGISTRY)


def experiment_definition(name: str) -> ExperimentDefinition:
    """The registry entry for ``name``; unknown names raise with the known set."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ConfigurationError(
            f"unknown experiment {name!r}; registered experiments: {known}"
        ) from None


def describe_experiment(name: str) -> str:
    """One-line summary of a registered experiment."""
    return experiment_definition(name).summary


def get_experiment(
    name: str,
    preset: str = "fast",
    seed: int = DEFAULT_SEED,
    overrides: Optional[Mapping[str, Any]] = None,
) -> Experiment:
    """Build a registered experiment from a preset plus optional overrides."""
    definition = experiment_definition(name)
    if preset not in PRESETS:
        raise ConfigurationError(
            f"unknown preset {preset!r}; choose one of {', '.join(PRESETS)}"
        )
    config = definition.preset_config(preset, seed)
    if overrides:
        config = apply_overrides(config, overrides)
    return definition.build(config)


# ------------------------------------------------------------------ overrides
def parse_set_options(pairs: Sequence[str]) -> Dict[str, str]:
    """Parse CLI ``--set key=value`` pairs into an override mapping."""
    overrides: Dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ConfigurationError(
                f"override {pair!r} is not of the form key=value"
            )
        if key in overrides:
            raise ConfigurationError(f"override key {key!r} given twice")
        overrides[key] = value.strip()
    return overrides


def _coerce_scalar(value: str, reference: Any) -> Any:
    """Coerce one string to the type of ``reference`` (a current field value)."""
    if isinstance(reference, bool):
        lowered = value.lower()
        if lowered in ("true", "1", "yes", "on"):
            return True
        if lowered in ("false", "0", "no", "off"):
            return False
        raise ConfigurationError(f"{value!r} is not a boolean")
    if isinstance(reference, enum.Enum):
        return type(reference)(value)
    if isinstance(reference, int) and not isinstance(reference, bool):
        return int(value)
    if isinstance(reference, float):
        return float(value)
    return value


def _coerce_scalar_best_effort(value: str) -> Any:
    """Numeric-looking strings become numbers; anything else stays a string."""
    try:
        return float(value)
    except ValueError:
        return value


def _coerce_override(name: str, value: Any, current: Any) -> Any:
    """Coerce a ``--set`` string against the field's current value.

    Non-string overrides (from Python callers) pass through untouched — the
    configuration dataclass's ``__post_init__`` remains the validator of
    record.  Tuples are spelled as comma-separated items (``"0.1,0.3"``);
    when the current tuple's items share one type each item follows it, and
    for mixed-type or empty tuples (e.g. ``kde_bandwidths`` holding rule
    names and multipliers) numeric-looking items become floats and the rest
    stay strings.
    """
    if not isinstance(value, str):
        return value
    try:
        if isinstance(current, tuple):
            items = [item.strip() for item in value.split(",") if item.strip()]
            item_types = {type(item) for item in current}
            if len(item_types) == 1:
                reference = current[0]
                return tuple(_coerce_scalar(item, reference) for item in items)
            return tuple(_coerce_scalar_best_effort(item) for item in items)
        if current is None:
            # Unset optionals (e.g. entropy_bin_width): best effort numeric.
            return _coerce_scalar_best_effort(value)
        return _coerce_scalar(value, current)
    except (ValueError, ConfigurationError) as exc:
        raise ConfigurationError(
            f"cannot coerce override {name}={value!r} against current value "
            f"{current!r}: {exc}"
        ) from None


def apply_overrides(config: Any, overrides: Mapping[str, Any]) -> Any:
    """A copy of ``config`` with the overrides applied field by field."""
    if not is_dataclass(config):
        raise ConfigurationError(
            f"cannot apply overrides to non-dataclass config {config!r}"
        )
    valid = {f.name for f in fields(config)}
    coerced: Dict[str, Any] = {}
    for name, value in overrides.items():
        if name not in valid:
            raise ConfigurationError(
                f"{type(config).__name__} has no field {name!r}; "
                f"valid fields: {', '.join(sorted(valid))}"
            )
        coerced[name] = _coerce_override(name, value, getattr(config, name))
    return replace(config, **coerced)


__all__ = [
    "DEFAULT_SEED",
    "PRESETS",
    "ExperimentDefinition",
    "apply_overrides",
    "describe_experiment",
    "experiment_definition",
    "get_experiment",
    "list_experiments",
    "parse_set_options",
    "register_experiment",
]
