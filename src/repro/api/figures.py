"""Registry definitions for the paper's figure experiments.

The preset configurations here are the exact values the CLI hardcoded per
figure before the registry existed — they must not drift: single-seed
default-preset reports are byte-identical to the historical per-figure
commands, and the committed CI warm-cache fixture is fingerprinted against
the ``smoke`` preset's cells.
"""

from __future__ import annotations

from repro.api.registry import ExperimentDefinition, register_experiment
from repro.experiments import (
    CollectionMode,
    Fig4Config,
    Fig4Experiment,
    Fig5Config,
    Fig5Experiment,
    Fig6Config,
    Fig6Experiment,
    Fig8Config,
    Fig8Experiment,
)


@register_experiment("fig4")
class Fig4Definition(ExperimentDefinition):
    """Figure 4: CIT padding, no cross traffic — PIAT stats and detection vs sample size."""

    config_cls = Fig4Config

    def build(self, config: Fig4Config) -> Fig4Experiment:
        return Fig4Experiment(config)

    def preset_config(self, preset: str, seed: int) -> Fig4Config:
        if preset == "paper":
            return Fig4Config(seed=seed)
        if preset == "fast":
            return Fig4Config(trials=20, mode=CollectionMode.ANALYTIC, seed=seed)
        if preset == "quick":
            return Fig4Config(
                sample_sizes=(50, 200, 1000), trials=10, mode=CollectionMode.ANALYTIC, seed=seed
            )
        return Fig4Config(
            sample_sizes=(50, 200), trials=6, mode=CollectionMode.ANALYTIC, seed=seed
        )


@register_experiment("fig5")
class Fig5Definition(ExperimentDefinition):
    """Figure 5: VIT padding — detection rate vs sigma_T, and the sample size to beat it."""

    config_cls = Fig5Config

    def build(self, config: Fig5Config) -> Fig5Experiment:
        return Fig5Experiment(config)

    def preset_config(self, preset: str, seed: int) -> Fig5Config:
        if preset == "paper":
            return Fig5Config(seed=seed)
        if preset == "fast":
            return Fig5Config(trials=12, mode=CollectionMode.ANALYTIC, seed=seed)
        if preset == "quick":
            return Fig5Config(
                sigma_t_values=(0.0, 1e-4, 1e-3),
                sample_size=500,
                trials=8,
                mode=CollectionMode.ANALYTIC,
                seed=seed,
            )
        return Fig5Config(
            sigma_t_values=(0.0, 1e-3),
            sample_size=200,
            trials=6,
            mode=CollectionMode.ANALYTIC,
            seed=seed,
        )


@register_experiment("fig6")
class Fig6Definition(ExperimentDefinition):
    """Figure 6: CIT padding behind a shared router — detection rate vs utilization."""

    config_cls = Fig6Config

    def build(self, config: Fig6Config) -> Fig6Experiment:
        return Fig6Experiment(config)

    def preset_config(self, preset: str, seed: int) -> Fig6Config:
        if preset == "paper":
            return Fig6Config(seed=seed)
        if preset == "fast":
            return Fig6Config(trials=15, mode=CollectionMode.HYBRID, seed=seed)
        if preset == "quick":
            return Fig6Config(
                utilizations=(0.05, 0.4),
                sample_size=400,
                trials=8,
                mode=CollectionMode.HYBRID,
                seed=seed,
            )
        return Fig6Config(
            utilizations=(0.05, 0.3),
            sample_size=200,
            trials=6,
            mode=CollectionMode.ANALYTIC,
            seed=seed,
        )


@register_experiment("fig8")
class Fig8Definition(ExperimentDefinition):
    """Figure 8: 24-hour campus and WAN observations under diurnal cross traffic."""

    config_cls = Fig8Config

    def build(self, config: Fig8Config) -> Fig8Experiment:
        return Fig8Experiment(config)

    def preset_config(self, preset: str, seed: int) -> Fig8Config:
        if preset == "paper":
            return Fig8Config(seed=seed)
        if preset == "fast":
            return Fig8Config(trials=15, mode=CollectionMode.HYBRID, seed=seed)
        if preset == "quick":
            return Fig8Config(
                hours=(2, 14),
                sample_size=400,
                trials=8,
                mode=CollectionMode.HYBRID,
                seed=seed,
            )
        return Fig8Config(
            hours=(2, 14),
            sample_size=200,
            trials=6,
            mode=CollectionMode.ANALYTIC,
            seed=seed,
        )


__all__ = [
    "Fig4Definition",
    "Fig5Definition",
    "Fig6Definition",
    "Fig8Definition",
]
