"""The queryable side of the results store: sqlite index, queries, serving.

The sharded JSON-lines :class:`~repro.runner.store.ResultsStore` is the
append-optimised *write* side of the results pipeline.  This package is the
*read* side:

* :class:`~repro.store.index.StoreIndex` — builds/refreshes ``index.sqlite``
  at the store root (``repro cache index``; ``repro cache compact`` refreshes
  an existing index automatically).  Incremental: unchanged shard files are
  never reopened.
* :class:`~repro.store.query.StoreQuery` — typed queries over the index:
  labelled grid points per experiment, per-point CI bands (byte-identical to
  ``repro sweep --ci`` output), and grid-vs-store diffs
  (:meth:`~repro.store.query.StoreQuery.missing_cells`).
* :func:`~repro.store.server.create_server` /
  :class:`~repro.store.server.ResultsServer` — the ``repro serve`` JSON HTTP
  API over a store, including the ``POST /enqueue`` pending-cells hand-off a
  distributed backend can drain.

The sqlite file is always a cache of the JSONL truth: deleting it loses
nothing, and every refresh re-derives rows through the store's own parsing
contract.  See ``docs/serving.md``.
"""

from repro.store.index import (
    INDEX_FILENAME,
    INDEX_SCHEMA_VERSION,
    IndexStats,
    StoreIndex,
)
from repro.store.query import CIBand, PointRecord, StoreQuery
from repro.store.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    PENDING_FILENAME,
    ResultsServer,
    create_server,
)

__all__ = [
    "CIBand",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "INDEX_FILENAME",
    "INDEX_SCHEMA_VERSION",
    "IndexStats",
    "PENDING_FILENAME",
    "PointRecord",
    "ResultsServer",
    "StoreIndex",
    "StoreQuery",
    "create_server",
]
