"""A sqlite index over a sharded JSON-lines results store.

The :class:`~repro.runner.store.ResultsStore` is write-optimised: appends are
one ``write`` call and a warm sweep reads one shard per fingerprint.  Nothing
about it can *answer questions* — which grid points exist, which experiments
they belong to, what the per-seed detection rates are — without replaying a
sweep's grid expansion.  :class:`StoreIndex` adds the read side: one sqlite
file (``index.sqlite`` at the store root) mapping every winning record to its
kind, seed, scenario scalars and result payload, plus a label table mapping
fingerprints back to the registered experiment / preset / grid-point key that
produces them.

The index is a *cache of the JSONL truth*, never a second source of it:
``refresh()`` re-derives rows exclusively from the store files through the
same parsing contract the store itself uses
(:meth:`~repro.runner.store.ResultsStore.read_records`), so dropping the
sqlite file loses nothing.  Refreshes are incremental — every indexed file's
``(mtime_ns, size)`` signature is remembered, and an unchanged file is
skipped entirely, so reindexing a large store after one sweep touches only
the dirty shards.  The acceptance contract (pinned by
``tests/store/test_index.py``) is that a second refresh over an unchanged
store writes zero rows.

Labels are computed by expanding every registered experiment × preset at
every distinct seed present in the store and fingerprinting the resulting
cells — fingerprints are content hashes of the seed-inclusive configuration,
so this is exact, not heuristic.  Records written by scenario files or
foreign tools simply stay unlabelled (still queryable by fingerprint).
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.exceptions import ConfigurationError, ReproError
from repro.runner.store import ResultsStore

#: Bumped whenever the sqlite layout changes; a mismatching index is
#: dropped and rebuilt from the JSONL truth on the next refresh.
INDEX_SCHEMA_VERSION = 1

#: The index database, living at the store root next to the shards.
INDEX_FILENAME = "index.sqlite"

#: Row priorities mirroring the store's precedence: a shard record always
#: shadows a legacy flat-file record for the same fingerprint.
_PRIORITY_LEGACY = 0
_PRIORITY_SHARD = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS files (
    path TEXT PRIMARY KEY,
    mtime_ns INTEGER NOT NULL,
    size INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    fingerprint TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    seed INTEGER,
    mode TEXT,
    trials INTEGER,
    sample_sizes TEXT,
    policy_kind TEXT,
    policy_family TEXT,
    low_rate_pps REAL,
    high_rate_pps REAL,
    n_hops INTEGER,
    cross_utilization REAL,
    variance_ratio REAL,
    detection_rates TEXT,
    result_json TEXT,
    source TEXT NOT NULL,
    priority INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS records_source ON records (source);
CREATE TABLE IF NOT EXISTS labels (
    fingerprint TEXT NOT NULL,
    experiment TEXT NOT NULL,
    preset TEXT NOT NULL,
    point_key TEXT NOT NULL,
    seed INTEGER NOT NULL,
    PRIMARY KEY (fingerprint, experiment, preset)
);
CREATE INDEX IF NOT EXISTS labels_experiment ON labels (experiment, preset);
"""


@dataclass(frozen=True)
class IndexStats:
    """Outcome of one :meth:`StoreIndex.refresh`.

    ``files_scanned`` counts store files actually re-parsed (dirty or new);
    an incremental no-op refresh reports zero.  ``records_written`` /
    ``records_removed`` count row mutations, ``labels_written`` the rebuilt
    experiment labels, and ``total_records`` / ``total_labels`` the index
    contents after the refresh.
    """

    files_scanned: int
    files_removed: int
    records_written: int
    records_removed: int
    labels_written: int
    total_records: int
    total_labels: int

    def __str__(self) -> str:
        return (
            f"{self.files_scanned} files scanned ({self.files_removed} removed), "
            f"{self.records_written} records written, "
            f"{self.records_removed} records removed, "
            f"{self.labels_written} labels written; "
            f"index holds {self.total_records} records, {self.total_labels} labels"
        )


def _scalar(value: Any, kind: type) -> Any:
    """``value`` coerced to ``kind`` for a sqlite column, or ``None``."""
    if isinstance(value, bool) or value is None:
        return None
    try:
        return kind(value)
    except (TypeError, ValueError):
        return None


class StoreIndex:
    """Build and refresh the sqlite index of one results store."""

    def __init__(
        self,
        store_root: Union[str, Path],
        path: Optional[Union[str, Path]] = None,
    ) -> None:
        self._store = ResultsStore(store_root)
        self._path = Path(path) if path is not None else self._store.root / INDEX_FILENAME

    @property
    def path(self) -> Path:
        """The sqlite database file."""
        return self._path

    @property
    def store(self) -> ResultsStore:
        """The indexed store."""
        return self._store

    # ------------------------------------------------------------- connections
    def connect(self) -> sqlite3.Connection:
        """A read-write connection with the schema ensured.

        Drops and recreates every table when the on-disk index was written
        by a different :data:`INDEX_SCHEMA_VERSION` — the JSONL store is the
        source of truth, so a stale index is rebuilt, never migrated.
        """
        self._path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(str(self._path))
        connection.row_factory = sqlite3.Row
        connection.executescript(_SCHEMA)
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'index_schema'"
        ).fetchone()
        if row is not None and row["value"] != str(INDEX_SCHEMA_VERSION):
            connection.executescript(
                "DROP TABLE meta; DROP TABLE files; DROP TABLE records; DROP TABLE labels;"
            )
            connection.executescript(_SCHEMA)
            row = None
        if row is None:
            connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('index_schema', ?)",
                (str(INDEX_SCHEMA_VERSION),),
            )
            connection.commit()
        return connection

    def connect_readonly(self) -> sqlite3.Connection:
        """A read-only connection (safe to open from many server threads)."""
        if not self._path.exists():
            raise ConfigurationError(
                f"no index at {str(self._path)!r}; build one with "
                f"'repro cache index --cache-dir {self._store.root}'"
            )
        connection = sqlite3.connect(f"file:{self._path}?mode=ro", uri=True)
        connection.row_factory = sqlite3.Row
        return connection

    # ---------------------------------------------------------------- refresh
    def _current_files(self) -> List[Tuple[str, Path, int, int, int]]:
        """Every store file as ``(relpath, path, mtime_ns, size, priority)``.

        The legacy flat file sorts first (lowest priority), so shard rows
        inserted later can shadow its records — the same precedence
        :meth:`~repro.runner.store.ResultsStore.get` applies.
        """
        files: List[Tuple[str, Path, int, int, int]] = []
        legacy = self._store.legacy_path
        if legacy.exists():
            stat = legacy.stat()
            files.append(
                (legacy.name, legacy, stat.st_mtime_ns, stat.st_size, _PRIORITY_LEGACY)
            )
        for path in self._store.shard_files():
            stat = path.stat()
            relpath = path.relative_to(self._store.root).as_posix()
            files.append((relpath, path, stat.st_mtime_ns, stat.st_size, _PRIORITY_SHARD))
        return files

    @staticmethod
    def _winning_records(
        path: Path, priority: int
    ) -> List[Dict[str, Any]]:
        """The last record per fingerprint in ``path``, in first-seen order.

        Shard files only contribute the fingerprint they are named after
        (matching :meth:`ResultsStore.get`, which filters shard lines the
        same way); the legacy flat file contributes everything.
        """
        last: Dict[str, Dict[str, Any]] = {}
        for record in ResultsStore.read_records(path):
            fingerprint = record.get("fingerprint")
            if priority == _PRIORITY_SHARD and fingerprint != path.stem:
                continue
            last[str(fingerprint)] = record
        return list(last.values())

    @staticmethod
    def _record_row(
        record: Dict[str, Any], source: str, priority: int
    ) -> Tuple[Any, ...]:
        """One ``records`` row extracted from a store record.

        Scenario scalars are pulled with ``.get`` so records written by a
        foreign tool (or a future schema that adds fields) index with NULL
        columns instead of failing the refresh.  Capture results are large
        interval arrays, so ``result_json`` is kept for cells only.
        """
        config = record.get("config") or {}
        scenario = config.get("scenario") or {}
        policy = scenario.get("policy") or {}
        result = record.get("result") or {}
        kind = record.get("kind", "cell")
        is_cell = kind == "cell"
        sample_sizes = config.get("sample_sizes")
        return (
            record["fingerprint"],
            kind,
            _scalar(config.get("seed"), int),
            config.get("mode") if isinstance(config.get("mode"), str) else None,
            _scalar(config.get("trials"), int),
            json.dumps(sample_sizes) if isinstance(sample_sizes, list) else None,
            policy.get("kind") if isinstance(policy.get("kind"), str) else None,
            policy.get("family") if isinstance(policy.get("family"), str) else None,
            _scalar(scenario.get("low_rate_pps"), float),
            _scalar(scenario.get("high_rate_pps"), float),
            _scalar(scenario.get("n_hops"), int),
            _scalar(scenario.get("cross_utilization"), float),
            _scalar(result.get("measured_variance_ratio"), float),
            json.dumps(result.get("empirical_detection_rate", {}), sort_keys=True)
            if is_cell
            else None,
            json.dumps(result, sort_keys=True) if is_cell else None,
            source,
            priority,
        )

    def refresh(self) -> IndexStats:
        """Bring the index up to date with the store; returns the delta.

        Unchanged files (same ``(mtime_ns, size)`` signature as last time)
        are not reopened.  Removing a shard deletes its rows and rescans the
        legacy flat file, so a legacy record shadowed by the deleted shard
        resurfaces — exactly what a store lookup would now return.  Labels
        are rebuilt only when any record changed.
        """
        connection = self.connect()
        try:
            known = {
                row["path"]: (row["mtime_ns"], row["size"])
                for row in connection.execute("SELECT path, mtime_ns, size FROM files")
            }
            current = self._current_files()
            current_paths = {relpath for relpath, *_ in current}
            removed = sorted(set(known) - current_paths)
            shard_removed = any(relpath != ResultsStore.LEGACY_FILENAME for relpath in removed)

            records_removed = 0
            for relpath in removed:
                cursor = connection.execute("DELETE FROM records WHERE source = ?", (relpath,))
                records_removed += cursor.rowcount
                connection.execute("DELETE FROM files WHERE path = ?", (relpath,))

            files_scanned = 0
            records_written = 0
            for relpath, path, mtime_ns, size, priority in current:
                dirty = known.get(relpath) != (mtime_ns, size)
                if priority == _PRIORITY_LEGACY and shard_removed:
                    # A removed shard may have shadowed legacy records;
                    # rescan the flat file so they resurface.
                    dirty = True
                if not dirty:
                    continue
                files_scanned += 1
                cursor = connection.execute("DELETE FROM records WHERE source = ?", (relpath,))
                records_removed += cursor.rowcount
                for record in self._winning_records(path, priority):
                    existing = connection.execute(
                        "SELECT priority FROM records WHERE fingerprint = ?",
                        (record["fingerprint"],),
                    ).fetchone()
                    if existing is not None and existing["priority"] > priority:
                        continue  # a shard row shadows this legacy record
                    connection.execute(
                        "INSERT OR REPLACE INTO records VALUES "
                        "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        self._record_row(record, relpath, priority),
                    )
                    records_written += 1
                connection.execute(
                    "INSERT OR REPLACE INTO files (path, mtime_ns, size) VALUES (?, ?, ?)",
                    (relpath, mtime_ns, size),
                )

            labels_written = 0
            if files_scanned or removed:
                labels_written = self._rebuild_labels(connection)

            connection.commit()
            total_records = connection.execute("SELECT COUNT(*) FROM records").fetchone()[0]
            total_labels = connection.execute("SELECT COUNT(*) FROM labels").fetchone()[0]
        finally:
            connection.close()
        return IndexStats(
            files_scanned=files_scanned,
            files_removed=len(removed),
            records_written=records_written,
            records_removed=records_removed,
            labels_written=labels_written,
            total_records=total_records,
            total_labels=total_labels,
        )

    # ----------------------------------------------------------------- labels
    @staticmethod
    def _rebuild_labels(connection: sqlite3.Connection) -> int:
        """Recompute the fingerprint → experiment/point-key mapping.

        Every registered experiment × preset is expanded at every distinct
        cell seed found in the store, and the resulting fingerprints are
        matched against the indexed records.  Cell fingerprints hash the
        full seed-inclusive configuration (display keys excluded), so a
        match is an exact identity.  An experiment whose expansion rejects a
        seed or preset is skipped, not fatal.
        """
        # Imported here: repro.api pulls in every experiment module, which
        # plain store maintenance (and the read-only query path) can skip.
        from repro.api import PRESETS, get_experiment, list_experiments
        from repro.runner.grid import split_seed_key

        indexed = {
            row["fingerprint"]
            for row in connection.execute("SELECT fingerprint FROM records")
        }
        seeds = [
            row["seed"]
            for row in connection.execute(
                "SELECT DISTINCT seed FROM records "
                "WHERE kind = 'cell' AND seed IS NOT NULL ORDER BY seed"
            )
        ]
        connection.execute("DELETE FROM labels")
        written = 0
        for name in list_experiments():
            for preset in PRESETS:
                for seed in seeds:
                    try:
                        cells = get_experiment(name, preset, int(seed)).cells()
                    except ReproError:
                        continue
                    for cell in cells:
                        fingerprint = cell.fingerprint()
                        if fingerprint not in indexed:
                            continue
                        point_key, _ = split_seed_key(cell.key)
                        connection.execute(
                            "INSERT OR REPLACE INTO labels "
                            "(fingerprint, experiment, preset, point_key, seed) "
                            "VALUES (?, ?, ?, ?, ?)",
                            (fingerprint, name, preset, point_key, cell.seed),
                        )
                        written += 1
        return written


__all__ = [
    "INDEX_FILENAME",
    "INDEX_SCHEMA_VERSION",
    "IndexStats",
    "StoreIndex",
]
