"""``repro serve`` — a read-only JSON HTTP API over an indexed results store.

The server is deliberately stdlib-only: a
:class:`http.server.ThreadingHTTPServer` whose handler answers every request
from the sqlite index through per-thread read-only connections
(:class:`~repro.store.query.StoreQuery`), so no request ever takes a lock on
the store and a sweep can keep appending while the server runs.  Endpoints:

================================  ==============================================
``GET /``                         endpoint listing (this table, as JSON)
``GET /experiments``              registered experiments + indexed label summary
``GET /points?experiment=NAME``   labelled grid-point records with full results
                                  (optional ``preset=`` / ``seed=`` / ``policy=``)
``GET /point/<point-key>``        every per-seed record behind one grid point
                                  (optional ``confidence=`` adds the CI band)
``GET /report/<experiment>``      the experiment's rendered report text,
                                  assembled purely from cached records
                                  (optional ``preset=`` / ``seed=`` / ``seeds=``
                                  / ``confidence=``; 409 lists missing cells)
``POST /enqueue``                 diff an experiment grid against the store and
                                  append the missing cells to a pending-cells
                                  file a worker fleet can drain
================================  ==============================================

``POST /enqueue`` writes ``pending_cells.jsonl`` at the store root — one JSON
line per missing cell (``cell_key``, ``fingerprint``, ``experiment``,
``preset``, ``seed``, full ``config``), deduplicated by fingerprint under a
process-wide lock.  It is the hand-off point for the distributed backend the
roadmap schedules against: this server names the work, it never executes it.

See ``docs/serving.md`` for the index schema and worked examples.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, unquote, urlparse

from repro.exceptions import ConfigurationError, ReproError
from repro.runner.cells import CellResult, SCHEMA_VERSION
from repro.runner.grid import seed_range
from repro.runner.store import ResultsStore
from repro.store.query import StoreQuery

#: File at the store root collecting cells enqueued via ``POST /enqueue``.
PENDING_FILENAME = "pending_cells.jsonl"

#: Loopback by default: the server is an internal results surface, not an
#: internet-facing service; bind wider interfaces explicitly.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321

_ENDPOINTS = {
    "GET /experiments": "registered experiments plus the indexed label summary",
    "GET /points?experiment=NAME": "grid-point records (preset=, seed=, policy= filters)",
    "GET /point/<point-key>": "per-seed records of one point (confidence= adds a CI band)",
    "GET /report/<experiment>": "rendered report from cache (preset=, seed=, seeds=, confidence=)",
    "POST /enqueue": "append an experiment's missing cells to the pending-cells file",
}


class _HTTPError(Exception):
    """An error with a status code, rendered as a JSON body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ResultsServer(ThreadingHTTPServer):
    """The threaded HTTP server; one per served store."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        query: StoreQuery,
        quiet: bool = False,
    ) -> None:
        self.query = query
        self.store_root = query.store_root
        self.pending_path = query.store_root / PENDING_FILENAME
        self.pending_lock = threading.Lock()
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server: ResultsServer

    # ------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - log formatting
            super().log_message(format, *args)

    def _send_json(self, payload: Dict[str, Any], status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _query_params(self) -> Dict[str, str]:
        parsed = parse_qs(urlparse(self.path).query)
        return {name: values[-1] for name, values in parsed.items()}

    @staticmethod
    def _int_param(params: Dict[str, str], name: str) -> Optional[int]:
        if name not in params:
            return None
        try:
            return int(params[name])
        except ValueError:
            raise _HTTPError(
                400, f"query parameter {name}={params[name]!r} is not an integer"
            ) from None

    @staticmethod
    def _float_param(params: Dict[str, str], name: str) -> Optional[float]:
        if name not in params:
            return None
        try:
            return float(params[name])
        except ValueError:
            raise _HTTPError(
                400, f"query parameter {name}={params[name]!r} is not a number"
            ) from None

    # --------------------------------------------------------------- routing
    def do_GET(self) -> None:  # noqa: N802 - http.server spelling
        try:
            payload, status = self._route_get()
        except _HTTPError as exc:
            payload, status = {"error": str(exc)}, exc.status
        except ConfigurationError as exc:
            payload, status = {"error": str(exc)}, 400
        except ReproError as exc:  # pragma: no cover - defensive
            payload, status = {"error": str(exc)}, 500
        self._send_json(payload, status)

    def do_POST(self) -> None:  # noqa: N802 - http.server spelling
        try:
            if urlparse(self.path).path.rstrip("/") != "/enqueue":
                raise _HTTPError(404, f"unknown endpoint {self.path!r}")
            payload, status = self._enqueue()
        except _HTTPError as exc:
            payload, status = {"error": str(exc)}, exc.status
        except ConfigurationError as exc:
            payload, status = {"error": str(exc)}, 400
        self._send_json(payload, status)

    def _route_get(self) -> Tuple[Dict[str, Any], int]:
        path = unquote(urlparse(self.path).path)
        if path in ("", "/"):
            return {"endpoints": _ENDPOINTS, "store": str(self.server.store_root)}, 200
        if path.rstrip("/") == "/experiments":
            return self._experiments(), 200
        if path.rstrip("/") == "/points":
            return self._points(), 200
        if path.startswith("/point/"):
            return self._point(path[len("/point/"):])
        if path.startswith("/report/"):
            return self._report(path[len("/report/"):])
        raise _HTTPError(404, f"unknown endpoint {path!r}")

    # ------------------------------------------------------------- endpoints
    def _experiments(self) -> Dict[str, Any]:
        from repro.api import describe_experiment, list_experiments

        indexed = {entry["experiment"]: entry for entry in self.server.query.experiments()}
        experiments = []
        for name in list_experiments():
            entry: Dict[str, Any] = {
                "experiment": name,
                "description": describe_experiment(name),
                "indexed": indexed.pop(name, None),
            }
            experiments.append(entry)
        # Labels always come from the registry, but index the leftovers
        # defensively (e.g. an index built by a newer registry).
        for name in sorted(indexed):
            experiments.append(
                {"experiment": name, "description": None, "indexed": indexed[name]}
            )
        return {"experiments": experiments}

    def _points(self) -> Dict[str, Any]:
        from repro.api import list_experiments

        params = self._query_params()
        experiment = params.get("experiment")
        if not experiment:
            raise _HTTPError(400, "the 'experiment' query parameter is required")
        if experiment not in list_experiments():
            raise _HTTPError(404, f"unknown experiment {experiment!r}")
        points = self.server.query.points(
            experiment=experiment,
            preset=params.get("preset"),
            policy=params.get("policy"),
            seed=self._int_param(params, "seed"),
        )
        return {
            "experiment": experiment,
            "count": len(points),
            "points": [point.to_json_dict() for point in points],
        }

    def _point(self, key: str) -> Tuple[Dict[str, Any], int]:
        params = self._query_params()
        key = key.rstrip("/")
        records = self.server.query.point(key)
        if not records:
            raise _HTTPError(404, f"no indexed records for grid point {key!r}")
        payload: Dict[str, Any] = {
            "point_key": key,
            "count": len(records),
            "records": [record.to_json_dict() for record in records],
        }
        confidence = self._float_param(params, "confidence")
        if confidence is not None:
            payload["ci_band"] = self.server.query.ci_band(key, confidence).to_json_dict()
        return payload, 200

    def _resolve_experiment(self, name: str, preset: str, seed: int) -> Any:
        from repro.api import get_experiment, list_experiments

        if name not in list_experiments():
            raise _HTTPError(404, f"unknown experiment {name!r}")
        return get_experiment(name, preset, seed)

    def _report(self, name: str) -> Tuple[Dict[str, Any], int]:
        params = self._query_params()
        name = name.rstrip("/")
        preset = params.get("preset", "fast")
        seed = self._int_param(params, "seed")
        seed = seed if seed is not None else _default_seed()
        count = self._int_param(params, "seeds")
        confidence = self._float_param(params, "confidence")
        experiment = self._resolve_experiment(name, preset, seed)
        seeds = seed_range(seed, count) if count is not None and count > 1 else None
        cells = experiment.cells(seeds)

        # A fresh store per request: records appended since the index was
        # built are still served (the JSONL files are the truth; the index
        # is only used to *find* work, never to render a report).
        store = ResultsStore(self.server.store_root)
        report: Dict[str, CellResult] = {}
        missing: List[str] = []
        for cell in cells:
            record = store.get(cell.fingerprint(), kind="cell")
            if record is None:
                missing.append(cell.key)
                continue
            report[cell.key] = CellResult.from_json_dict(
                cell.key, cell.fingerprint(), record["result"]
            )
        if missing:
            return (
                {
                    "error": f"store is missing {len(missing)} of {len(cells)} cells "
                    f"for {name!r} (preset {preset!r}); enqueue them via POST /enqueue",
                    "experiment": name,
                    "preset": preset,
                    "missing": missing,
                },
                409,
            )
        result = experiment.assemble(report, seeds=seeds, confidence=confidence)
        return (
            {
                "experiment": name,
                "preset": preset,
                "seed": seed,
                "seeds": list(seeds) if seeds is not None else [seed],
                "confidence": confidence,
                "report": result.to_text(),
            },
            200,
        )

    def _enqueue(self) -> Tuple[Dict[str, Any], int]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise _HTTPError(400, "request body is not valid JSON") from None
        if isinstance(body, dict) and "cells" in body:
            return self._enqueue_cells(body)
        if not isinstance(body, dict) or not body.get("experiment"):
            raise _HTTPError(
                400, "JSON body with an 'experiment' or 'cells' field is required"
            )
        name = str(body["experiment"])
        preset = str(body.get("preset", "fast"))
        seed = int(body.get("seed", _default_seed()))
        count = int(body.get("seeds", 1))
        experiment = self._resolve_experiment(name, preset, seed)
        seeds = seed_range(seed, count) if count > 1 else None
        cells = experiment.cells(seeds)
        missing = self.server.query.missing_cells(cells)

        enqueued = 0
        already_pending = 0
        with self.server.pending_lock:
            pending = _pending_fingerprints(self.server.pending_path)
            lines = []
            for cell in missing:
                fingerprint = cell.fingerprint()
                if fingerprint in pending:
                    already_pending += 1
                    continue
                pending.add(fingerprint)
                lines.append(
                    json.dumps(
                        {
                            "schema": SCHEMA_VERSION,
                            "cell_key": cell.key,
                            "fingerprint": fingerprint,
                            "experiment": name,
                            "preset": preset,
                            "seed": cell.seed,
                            "config": cell.config_dict(),
                        },
                        sort_keys=True,
                    )
                )
                enqueued += 1
            if lines:
                with self.server.pending_path.open("a", encoding="utf-8") as handle:
                    handle.write("\n".join(lines) + "\n")
        return (
            {
                "experiment": name,
                "preset": preset,
                "requested": len(cells),
                "cached": len(cells) - len(missing),
                "enqueued": enqueued,
                "already_pending": already_pending,
                "pending_file": str(self.server.pending_path),
            },
            200,
        )

    def _enqueue_cells(self, body: Dict[str, Any]) -> Tuple[Dict[str, Any], int]:
        """``POST /enqueue`` with explicit cell payloads.

        Each entry must carry ``cell_key``, ``fingerprint`` and ``config``,
        and the fingerprint must hash from the config *exactly* — a payload
        whose claimed fingerprint does not match is rejected with 400 naming
        the mismatch, because accepting it would let a tampered (or stale)
        client alias a record onto the wrong cache key when the queue is
        drained.
        """
        from repro.runner.backends.codec import verify_fingerprint

        cells = body.get("cells")
        if not isinstance(cells, list) or not cells:
            raise _HTTPError(400, "'cells' must be a non-empty list of objects")
        entries: List[Dict[str, Any]] = []
        for position, payload in enumerate(cells):
            if not isinstance(payload, dict) or not all(
                key in payload for key in ("cell_key", "fingerprint", "config")
            ):
                raise _HTTPError(
                    400,
                    f"cells[{position}] needs cell_key, fingerprint and "
                    f"config fields",
                )
            try:
                verify_fingerprint(
                    str(payload["cell_key"]),
                    payload["config"],
                    str(payload["fingerprint"]),
                )
            except ConfigurationError as exc:
                raise _HTTPError(400, f"cells[{position}]: {exc}") from None
            entries.append(payload)

        store = ResultsStore(self.server.store_root)
        enqueued = 0
        already_pending = 0
        cached = 0
        with self.server.pending_lock:
            pending = _pending_fingerprints(self.server.pending_path)
            lines = []
            for payload in entries:
                fingerprint = str(payload["fingerprint"])
                if store.get(fingerprint) is not None:
                    cached += 1
                    continue
                if fingerprint in pending:
                    already_pending += 1
                    continue
                pending.add(fingerprint)
                lines.append(
                    json.dumps(
                        {
                            "schema": SCHEMA_VERSION,
                            "cell_key": str(payload["cell_key"]),
                            "fingerprint": fingerprint,
                            "config": payload["config"],
                        },
                        sort_keys=True,
                    )
                )
                enqueued += 1
            if lines:
                with self.server.pending_path.open("a", encoding="utf-8") as handle:
                    handle.write("\n".join(lines) + "\n")
        return (
            {
                "requested": len(entries),
                "cached": cached,
                "enqueued": enqueued,
                "already_pending": already_pending,
                "pending_file": str(self.server.pending_path),
            },
            200,
        )


def _default_seed() -> int:
    from repro.api import DEFAULT_SEED

    return int(DEFAULT_SEED)


def _pending_fingerprints(path: Path) -> set:
    """Fingerprints already named in the pending-cells file."""
    fingerprints: set = set()
    if not path.exists():
        return fingerprints
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and isinstance(record.get("fingerprint"), str):
            fingerprints.add(record["fingerprint"])
    return fingerprints


def create_server(
    store_root: Union[str, Path],
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    index_path: Optional[Union[str, Path]] = None,
    quiet: bool = False,
) -> ResultsServer:
    """A ready-to-run server over ``store_root`` (``port=0`` picks a free one).

    Raises :class:`~repro.exceptions.ConfigurationError` when the store has
    no index yet — build one with ``repro cache index`` first (the CLI's
    ``repro serve`` does this automatically).
    """
    query = StoreQuery(store_root, index_path=index_path)
    return ResultsServer((host, port), query, quiet=quiet)


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "PENDING_FILENAME",
    "ResultsServer",
    "create_server",
]
