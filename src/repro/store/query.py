"""Typed queries against an indexed results store.

:class:`StoreQuery` is the read side of the store subsystem: given a store
root whose ``index.sqlite`` has been built (``repro cache index``), it
answers the questions a results consumer — the ``repro serve`` HTTP API, a
notebook, a scheduler — would otherwise need a full sweep replay for:

* :meth:`points` — every labelled grid point of an experiment, with the full
  JSON result payload exactly as stored.
* :meth:`point` — every per-seed record behind one grid-point key.
* :meth:`ci_band` — mean ± percentile-bootstrap interval per feature/sample
  size across the seeds of one grid point.  Reuses
  :func:`repro.runner.grid.mean_and_ci` with the aggregation layer's exact
  per-feature stream keys, so a band served from the index is byte-identical
  to the one a ``repro sweep --ci`` report prints for the same data.
* :meth:`missing_cells` — diff a grid (a
  :class:`~repro.runner.grid.GridSpec` or an explicit cell list) against the
  index: the cells a run would still have to simulate.

Connections are opened read-only (sqlite URI ``mode=ro``) and per-thread, so
one :class:`StoreQuery` is safe to share across server threads while a sweep
appends to the store — the index is refreshed explicitly, never by readers.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.runner.cells import SweepCell
from repro.runner.grid import GridSpec, mean_and_ci
from repro.store.index import StoreIndex


@dataclass(frozen=True)
class PointRecord:
    """One labelled (grid point, seed) record, as served by :meth:`points`."""

    experiment: str
    preset: str
    point_key: str
    seed: int
    fingerprint: str
    policy_kind: Optional[str]
    variance_ratio: Optional[float]
    result: Dict[str, Any]

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-able form (the server's ``/points`` payload element)."""
        return {
            "experiment": self.experiment,
            "preset": self.preset,
            "point_key": self.point_key,
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "policy_kind": self.policy_kind,
            "variance_ratio": self.variance_ratio,
            "result": self.result,
        }


@dataclass(frozen=True)
class CIBand:
    """Mean ± bootstrap interval for one grid point, across its seeds.

    ``detection_rate`` maps feature → sample size → ``(mean, lower, upper)``;
    ``variance_ratio`` is the same triple for the measured variance ratio.
    Derived with the aggregation layer's generator convention, so the values
    match a ``repro sweep --seeds N --ci`` report byte for byte.
    """

    point_key: str
    confidence: float
    seeds: Tuple[int, ...]
    detection_rate: Dict[str, Dict[int, Tuple[float, float, float]]]
    variance_ratio: Tuple[float, float, float]

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-able form (the server's ``/point`` payload extension)."""
        return {
            "point_key": self.point_key,
            "confidence": self.confidence,
            "seeds": list(self.seeds),
            "detection_rate": {
                feature: {str(n): list(band) for n, band in by_n.items()}
                for feature, by_n in self.detection_rate.items()
            },
            "variance_ratio": list(self.variance_ratio),
        }


class StoreQuery:
    """Read-only queries against one indexed results store."""

    def __init__(
        self,
        store_root: Union[str, Path],
        index_path: Optional[Union[str, Path]] = None,
    ) -> None:
        self._index = StoreIndex(store_root, path=index_path)
        if not self._index.path.exists():
            raise ConfigurationError(
                f"no index at {str(self._index.path)!r}; build one with "
                f"'repro cache index --cache-dir {self._index.store.root}'"
            )
        self._local = threading.local()

    @property
    def index_path(self) -> Path:
        """The sqlite index being queried."""
        return self._index.path

    @property
    def store_root(self) -> Path:
        """The indexed store's root directory."""
        return self._index.store.root

    def _connection(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = self._index.connect_readonly()
            self._local.connection = connection
        return connection

    # ---------------------------------------------------------------- queries
    def experiments(self) -> List[Dict[str, Any]]:
        """Per-experiment label summary: points, records and seeds indexed."""
        rows = self._connection().execute(
            "SELECT experiment, COUNT(DISTINCT point_key) AS points, "
            "COUNT(DISTINCT fingerprint) AS records, "
            "COUNT(DISTINCT seed) AS seeds, "
            "GROUP_CONCAT(DISTINCT preset) AS presets "
            "FROM labels GROUP BY experiment ORDER BY experiment"
        ).fetchall()
        return [
            {
                "experiment": row["experiment"],
                "points": row["points"],
                "records": row["records"],
                "seeds": row["seeds"],
                "presets": sorted((row["presets"] or "").split(",")),
            }
            for row in rows
        ]

    def points(
        self,
        experiment: Optional[str] = None,
        preset: Optional[str] = None,
        policy: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> List[PointRecord]:
        """Labelled grid-point records, newest-label-first deduplicated.

        Filters are conjunctive; ``policy`` matches the scenario's policy
        kind case-insensitively (``"cit"`` / ``"vit"``).  One stored record
        can satisfy several presets (preset grids often share cells); when
        no ``preset`` filter is given, each distinct ``(point_key, seed,
        fingerprint)`` is reported once, under its alphabetically first
        preset — the physical record is the same either way.
        """
        clauses = ["r.kind = 'cell'"]
        parameters: List[Any] = []
        if experiment is not None:
            clauses.append("l.experiment = ?")
            parameters.append(experiment)
        if preset is not None:
            clauses.append("l.preset = ?")
            parameters.append(preset)
        if policy is not None:
            clauses.append("LOWER(r.policy_kind) = LOWER(?)")
            parameters.append(policy)
        if seed is not None:
            clauses.append("l.seed = ?")
            parameters.append(int(seed))
        rows = self._connection().execute(
            "SELECT l.experiment, l.preset, l.point_key, l.seed, l.fingerprint, "
            "r.policy_kind, r.variance_ratio, r.result_json "
            "FROM labels l JOIN records r ON r.fingerprint = l.fingerprint "
            f"WHERE {' AND '.join(clauses)} "
            "ORDER BY l.experiment, l.point_key, l.seed, l.fingerprint, l.preset",
            parameters,
        ).fetchall()
        points: List[PointRecord] = []
        seen = set()
        for row in rows:
            identity = (row["experiment"], row["point_key"], row["seed"], row["fingerprint"])
            if preset is None and identity in seen:
                continue
            seen.add(identity)
            points.append(
                PointRecord(
                    experiment=row["experiment"],
                    preset=row["preset"],
                    point_key=row["point_key"],
                    seed=row["seed"],
                    fingerprint=row["fingerprint"],
                    policy_kind=row["policy_kind"],
                    variance_ratio=row["variance_ratio"],
                    result=json.loads(row["result_json"]) if row["result_json"] else {},
                )
            )
        return points

    def point(self, point_key: str) -> List[PointRecord]:
        """Every per-seed record behind one grid-point key (any experiment)."""
        rows = self._connection().execute(
            "SELECT l.experiment, l.preset, l.point_key, l.seed, l.fingerprint, "
            "r.policy_kind, r.variance_ratio, r.result_json "
            "FROM labels l JOIN records r ON r.fingerprint = l.fingerprint "
            "WHERE l.point_key = ? AND r.kind = 'cell' "
            "ORDER BY l.seed, l.fingerprint, l.experiment, l.preset",
            (point_key,),
        ).fetchall()
        points: List[PointRecord] = []
        seen = set()
        for row in rows:
            if row["fingerprint"] in seen:
                continue
            seen.add(row["fingerprint"])
            points.append(
                PointRecord(
                    experiment=row["experiment"],
                    preset=row["preset"],
                    point_key=row["point_key"],
                    seed=row["seed"],
                    fingerprint=row["fingerprint"],
                    policy_kind=row["policy_kind"],
                    variance_ratio=row["variance_ratio"],
                    result=json.loads(row["result_json"]) if row["result_json"] else {},
                )
            )
        return points

    def ci_band(self, point_key: str, confidence: float = 0.95) -> CIBand:
        """Mean ± bootstrap interval for one grid point, across its seeds.

        Requires at least two distinct seeds behind the point; values enter
        the bootstrap in ascending seed order with the aggregation layer's
        per-feature stream keys (``<point>/<feature>/<n>``, ``<point>/r``),
        which is what makes the band byte-identical to a ``--ci`` report of
        the same records.
        """
        if not 0.0 < confidence < 1.0:
            raise ConfigurationError(f"confidence={confidence!r} must lie in (0, 1)")
        records = sorted(self.point(point_key), key=lambda r: r.seed)
        seeds = tuple(record.seed for record in records)
        if len(set(seeds)) < 2:
            raise ConfigurationError(
                f"grid point {point_key!r} has {len(set(seeds))} seed(s) in the index; "
                "a confidence band needs at least two"
            )
        if len(set(seeds)) != len(seeds):
            raise ConfigurationError(
                f"grid point {point_key!r} has duplicate seeds {seeds!r} in the index"
            )

        results = [record.result for record in records]
        bands: Dict[str, Dict[int, Tuple[float, float, float]]] = {}
        for feature in sorted(results[0].get("empirical_detection_rate", {})):
            bands[feature] = {}
            for n_text in sorted(
                results[0]["empirical_detection_rate"][feature], key=int
            ):
                n = int(n_text)
                values = [
                    float(result["empirical_detection_rate"][feature][n_text])
                    for result in results
                ]
                mean, ci = mean_and_ci(values, f"{point_key}/{feature}/{n}", confidence)
                assert ci is not None  # >= 2 seeds and a confidence level
                bands[feature][n] = (mean, ci[0], ci[1])
        ratio_mean, ratio_ci = mean_and_ci(
            [float(result["measured_variance_ratio"]) for result in results],
            f"{point_key}/r",
            confidence,
        )
        assert ratio_ci is not None
        return CIBand(
            point_key=point_key,
            confidence=confidence,
            seeds=seeds,
            detection_rate=bands,
            variance_ratio=(ratio_mean, ratio_ci[0], ratio_ci[1]),
        )

    def missing_cells(
        self, grid: Union[GridSpec, Iterable[SweepCell]]
    ) -> List[SweepCell]:
        """The cells of ``grid`` with no indexed record — still to simulate."""
        cells: Sequence[SweepCell] = (
            grid.cells() if isinstance(grid, GridSpec) else list(grid)
        )
        connection = self._connection()
        missing: List[SweepCell] = []
        for cell in cells:
            row = connection.execute(
                "SELECT 1 FROM records WHERE fingerprint = ? AND kind = 'cell'",
                (cell.fingerprint(),),
            ).fetchone()
            if row is None:
                missing.append(cell)
        return missing


__all__ = ["CIBand", "PointRecord", "StoreQuery"]
