"""The rule registry and the AST plumbing every rule shares.

A rule is a small class with an identifier, a severity, and a ``check``
method producing :class:`~repro.analysis.findings.Finding` objects.  Two
granularities exist:

* :class:`ModuleRule` — sees one parsed module at a time (RNG calls,
  wall-clock calls, unordered iteration).
* :class:`ProjectRule` — sees the whole parsed tree at once (schema drift,
  protocol conformance, the declared-stream registry), for contracts that
  span files.

Rules register themselves with :func:`register_rule`; the checker runs
every registered rule unless told otherwise.  The registry is the single
source of the rule table in ``docs/determinism.md`` — ``repro check
--list-rules`` renders it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Type, Union

from repro.analysis.findings import Finding, Severity
from repro.exceptions import ConfigurationError


@dataclass
class ModuleContext:
    """One parsed source module, with the lookups rules need precomputed."""

    path: Path
    rel: str  # POSIX path relative to the checked root, e.g. "repro/sim/engine.py"
    tree: ast.Module
    source: str
    _imports: Optional[Dict[str, str]] = field(default=None, repr=False)
    _parents: Optional[Dict[int, ast.AST]] = field(default=None, repr=False)

    @property
    def package(self) -> str:
        """First package segment under ``repro`` (``"sim"``, ``"runner"``, ...)."""
        parts = Path(self.rel).parts
        return parts[1] if len(parts) > 2 else ""

    @property
    def imports(self) -> Dict[str, str]:
        """Local name -> fully qualified dotted name, from the import statements.

        ``import numpy as np`` maps ``np`` to ``numpy``; ``from datetime
        import datetime`` maps ``datetime`` to ``datetime.datetime``.  Rules
        resolve call targets through this table so aliasing cannot hide a
        banned call.
        """
        if self._imports is None:
            table: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        table[local] = alias.name if alias.asname else local
                        if alias.asname:
                            table[alias.asname] = alias.name
                elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                    for alias in node.names:
                        local = alias.asname or alias.name
                        table[local] = f"{node.module}.{alias.name}"
            self._imports = table
        return self._imports

    @property
    def parents(self) -> Dict[int, ast.AST]:
        """``id(node)`` -> parent node, for rules that look outward."""
        if self._parents is None:
            table: Dict[int, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    table[id(child)] = node
            self._parents = table
        return self._parents

    def parent_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        """Ancestors of ``node``, innermost first."""
        current = self.parents.get(id(node))
        while current is not None:
            yield current
            current = self.parents.get(id(current))

    def qualified_call(self, node: ast.Call) -> str:
        """Dotted name of a call target, resolved through the import table.

        ``np.random.default_rng(...)`` -> ``"numpy.random.default_rng"``;
        unresolvable targets (method calls on computed objects) return the
        unresolved attribute tail like ``".get"`` so rules can still match
        on method names.
        """
        return resolve_name(node.func, self.imports)


def resolve_name(node: ast.AST, imports: Dict[str, str]) -> str:
    """Resolve a Name/Attribute chain to a dotted name, through imports."""
    parts: List[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        base = imports.get(current.id, current.id)
        parts.append(base)
        return ".".join(reversed(parts))
    # Computed receiver (call result, subscript, self.x, ...): keep the
    # attribute tail with a leading dot so rules can match method names.
    return "." + ".".join(reversed(parts)) if parts else ""


class Rule:
    """Base class: identifier, severity, and the one-line contract."""

    #: Unique identifier, e.g. ``"RNG001"``.  Families group by prefix.
    rule_id: str = ""
    #: One-line statement of the enforced contract (docs and --list-rules).
    title: str = ""
    severity: Severity = Severity.ERROR

    def finding(
        self, rel: str, line: int, message: str, context: str = ""
    ) -> Finding:
        """Convenience constructor stamped with this rule's id/severity."""
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=rel,
            line=line,
            message=message,
            context=context,
        )


class ModuleRule(Rule):
    """A rule evaluated one module at a time."""

    def check_module(self, module: ModuleContext) -> List[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that needs the whole parsed tree (cross-file contracts)."""

    def check_project(
        self, modules: Dict[str, ModuleContext], root: Path
    ) -> List[Finding]:
        raise NotImplementedError


AnyRule = Union[ModuleRule, ProjectRule]

_RULES: Dict[str, Type[AnyRule]] = {}


def register_rule(cls: Type[AnyRule]) -> Type[AnyRule]:
    """Class decorator adding a rule to the registry (unique ``rule_id``)."""
    if not cls.rule_id or not cls.title:
        raise ConfigurationError(
            f"rule {cls.__name__} must set a rule_id and a title"
        )
    if cls.rule_id in _RULES:
        raise ConfigurationError(
            f"rule id {cls.rule_id!r} is already registered "
            f"(by {_RULES[cls.rule_id].__name__})"
        )
    _RULES[cls.rule_id] = cls
    return cls


def all_rules() -> List[AnyRule]:
    """Fresh instances of every registered rule, sorted by identifier."""
    # Import the rule modules here (not at package import) so the registry
    # is populated exactly once however the package is entered.
    from repro.analysis import clock_rules, protocol_rules, rng_rules, schema_rules  # noqa: F401

    return [_RULES[rule_id]() for rule_id in sorted(_RULES)]


def rule_ids() -> List[str]:
    """The registered identifiers, sorted."""
    all_rules()  # ensure the rule modules are imported
    return sorted(_RULES)


__all__ = [
    "AnyRule",
    "ModuleContext",
    "ModuleRule",
    "ProjectRule",
    "Rule",
    "all_rules",
    "register_rule",
    "resolve_name",
    "rule_ids",
]
