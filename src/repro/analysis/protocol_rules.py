"""Experiment protocol conformance, checked statically.

The registry raises at *registration time* when a definition is malformed,
and :class:`repro.api.protocol.Experiment` is ``runtime_checkable`` — but
both only fire for code paths a test actually imports and instantiates.  A
new experiment that forgets ``assemble`` fails the first time a user runs
it, not in CI.  These rules close that gap:

* EXP001 — every class decorated with ``@register_experiment`` defines (or
  inherits from a non-stub base) ``config_cls``, ``preset_config`` and
  ``build``, the full :class:`~repro.api.registry.ExperimentDefinition`
  surface.
* EXP002 — every ``*Experiment`` class in ``repro/experiments`` and
  ``repro/api`` satisfies the :class:`~repro.api.protocol.Experiment`
  protocol surface, with the required surface *parsed from protocol.py
  itself* so the rule can never drift from the protocol.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleContext, ProjectRule, register_rule, resolve_name

#: Where the protocol that defines the required surface lives.
PROTOCOL_MODULE = "repro/api/protocol.py"

#: Packages whose ``*Experiment`` classes must satisfy the protocol.
_EXPERIMENT_PACKAGES = ("api", "experiments")

#: The definition base class whose members are raising stubs, not
#: implementations — inheriting from it alone satisfies nothing.
_DEFINITION_BASE = "ExperimentDefinition"


class _ClassIndex:
    """Simple-name -> ClassDef lookup across the whole scanned tree."""

    def __init__(self, modules: Dict[str, ModuleContext]) -> None:
        self._by_name: Dict[str, Tuple[ModuleContext, ast.ClassDef]] = {}
        for rel in sorted(modules):
            module = modules[rel]
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    # First definition wins; simple names are unique enough
                    # for base resolution inside one package tree.
                    self._by_name.setdefault(node.name, (module, node))

    def resolve_base(
        self, module: ModuleContext, base: ast.expr
    ) -> Optional[Tuple[ModuleContext, ast.ClassDef]]:
        dotted = resolve_name(base, module.imports)
        simple = dotted.rsplit(".", 1)[-1]
        return self._by_name.get(simple)

    def mro(
        self, module: ModuleContext, class_def: ast.ClassDef
    ) -> Iterator[Tuple[ModuleContext, ast.ClassDef]]:
        """The class and its resolvable ancestors, nearest first."""
        seen: Set[str] = set()
        stack: List[Tuple[ModuleContext, ast.ClassDef]] = [(module, class_def)]
        while stack:
            current_module, current = stack.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            yield current_module, current
            for base in current.bases:
                resolved = self.resolve_base(current_module, base)
                if resolved is not None:
                    stack.append(resolved)


def _class_surface(class_def: ast.ClassDef) -> Tuple[Set[str], Set[str]]:
    """(methods, attributes) one class body provides.

    Attributes count whether declared in the body or assigned to ``self``
    inside any method (the ``self.config = ...`` idiom), and properties
    count as attributes too.
    """
    methods: Set[str] = set()
    attrs: Set[str] = set()
    for node in class_def.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            is_property = any(
                (isinstance(dec, ast.Name) and dec.id == "property")
                or (isinstance(dec, ast.Attribute) and dec.attr in ("getter", "setter"))
                for dec in node.decorator_list
            )
            if is_property:
                attrs.add(node.name)
            else:
                methods.add(node.name)
            for inner in ast.walk(node):
                if isinstance(inner, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        inner.targets
                        if isinstance(inner, ast.Assign)
                        else [inner.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attrs.add(target.attr)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    attrs.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            attrs.add(node.target.id)
    return methods, attrs


def extract_protocol_surface(
    protocol_module: ModuleContext,
) -> Optional[Tuple[Set[str], Set[str]]]:
    """(methods, attributes) the ``Experiment`` protocol class requires."""
    for node in protocol_module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "Experiment":
            is_protocol = any(
                resolve_name(base, protocol_module.imports).endswith("Protocol")
                for base in node.bases
            )
            if not is_protocol:
                continue
            methods: Set[str] = set()
            attrs: Set[str] = set()
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and not item.name.startswith("_"):
                    methods.add(item.name)
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    attrs.add(item.target.id)
            return methods, attrs
    return None


@register_rule
class RegisteredDefinitionRule(ProjectRule):
    """EXP001: ``@register_experiment`` classes carry the full definition surface."""

    rule_id = "EXP001"
    title = (
        "every @register_experiment class defines config_cls, preset_config "
        "and build (inherited stubs from ExperimentDefinition do not count)"
    )

    def check_project(
        self, modules: Dict[str, ModuleContext], root: Path
    ) -> List[Finding]:
        index = _ClassIndex(modules)
        findings: List[Finding] = []
        for rel in sorted(modules):
            module = modules[rel]
            for node in module.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                if not self._is_registered(module, node):
                    continue
                provided: Set[str] = set()
                for owner_module, owner in index.mro(module, node):
                    if owner.name == _DEFINITION_BASE:
                        continue  # raising stubs and config_cls = None
                    methods, attrs = _class_surface(owner)
                    provided |= methods | attrs
                missing = sorted(
                    member
                    for member in ("config_cls", "preset_config", "build")
                    if member not in provided
                )
                if missing:
                    findings.append(
                        self.finding(
                            module.rel,
                            node.lineno,
                            f"registered experiment definition {node.name} is "
                            f"missing {', '.join(missing)}; the registry will "
                            "reject or misbuild it the first time anything "
                            "imports this module",
                            context=f"{node.name}:{','.join(missing)}",
                        )
                    )
        return findings

    @staticmethod
    def _is_registered(module: ModuleContext, class_def: ast.ClassDef) -> bool:
        for dec in class_def.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if resolve_name(target, module.imports).endswith("register_experiment"):
                return True
        return False


@register_rule
class ExperimentProtocolRule(ProjectRule):
    """EXP002: ``*Experiment`` classes satisfy the Experiment protocol surface."""

    rule_id = "EXP002"
    title = (
        "every *Experiment class in repro/api and repro/experiments provides "
        "the protocol surface parsed from api/protocol.py "
        "(name, config, describe, cells, run, assemble)"
    )

    def check_project(
        self, modules: Dict[str, ModuleContext], root: Path
    ) -> List[Finding]:
        protocol_module = modules.get(PROTOCOL_MODULE)
        if protocol_module is None:
            return []  # not a repro tree shaped like this package
        surface = extract_protocol_surface(protocol_module)
        if surface is None:
            return [
                self.finding(
                    PROTOCOL_MODULE,
                    0,
                    "the Experiment protocol class is missing from "
                    "api/protocol.py; the conformance contract cannot be "
                    "checked",
                    context="Experiment",
                )
            ]
        required_methods, required_attrs = surface
        index = _ClassIndex(modules)
        findings: List[Finding] = []
        for rel in sorted(modules):
            module = modules[rel]
            if module.package not in _EXPERIMENT_PACKAGES:
                continue
            for node in module.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                if not node.name.endswith("Experiment") or node.name == "Experiment":
                    continue
                provided_methods: Set[str] = set()
                provided_attrs: Set[str] = set()
                for _owner_module, owner in index.mro(module, node):
                    methods, attrs = _class_surface(owner)
                    provided_methods |= methods
                    provided_attrs |= attrs
                missing = sorted(
                    [m for m in required_methods if m not in provided_methods]
                    + [
                        a
                        for a in required_attrs
                        if a not in provided_attrs and a not in provided_methods
                    ]
                )
                if missing:
                    findings.append(
                        self.finding(
                            module.rel,
                            node.lineno,
                            f"{node.name} does not satisfy the Experiment "
                            f"protocol: missing {', '.join(missing)}; the CLI "
                            "and sweep runner require the full surface "
                            "(see repro/api/protocol.py)",
                            context=f"{node.name}:{','.join(missing)}",
                        )
                    )
        return findings


__all__ = [
    "PROTOCOL_MODULE",
    "ExperimentProtocolRule",
    "RegisteredDefinitionRule",
    "extract_protocol_surface",
]
