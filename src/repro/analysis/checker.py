"""The checker: parse the tree once, run every rule, fold in the baseline.

:func:`run_check` is the whole engine behind ``repro check``: discover the
package's modules under a root directory, parse each exactly once into a
:class:`~repro.analysis.rules.ModuleContext`, run every registered rule
(module rules per file, project rules over the whole tree), subtract the
justified baseline, and return a :class:`CheckReport` that renders as
human-readable text or machine-readable JSON and owns the exit-code
decision.

Two pseudo-rules exist only here, because they are about the checking
process rather than the checked code:

* ``PARSE`` — a module failed to parse; nothing else about it is checkable.
* ``BASE001`` — a baseline entry matched nothing; stale suppressions are
  errors so the baseline can only shrink or move with the code it excuses.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.baseline import (
    BASELINE_FILENAME,
    BaselineEntry,
    apply_baseline,
    load_baseline,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ModuleContext, ModuleRule, ProjectRule, all_rules
from repro.exceptions import ConfigurationError

#: Directories never scanned (caches and scratch space inside a tree).
_SKIP_DIRS = frozenset({"__pycache__"})


def default_root() -> Path:
    """The installed package's own source root (the directory holding ``repro/``)."""
    return Path(__file__).resolve().parents[2]


def default_baseline(root: Path) -> Optional[Path]:
    """The baseline committed next to a checked tree, if any.

    Looked up first next to ``root`` itself (a bare package checkout), then
    one level up (the repository root when ``root`` is ``src/``).
    """
    for candidate in (root / BASELINE_FILENAME, root.parent / BASELINE_FILENAME):
        if candidate.is_file():
            return candidate
    return None


def discover_modules(root: Path) -> Tuple[Dict[str, ModuleContext], List[Finding]]:
    """Parse every ``repro/**/*.py`` under ``root`` exactly once.

    Returns the parsed modules keyed by root-relative POSIX path, plus a
    ``PARSE`` finding per unparseable file.
    """
    package_dir = root / "repro"
    if not package_dir.is_dir():
        raise ConfigurationError(
            f"{root} does not contain a 'repro' package to check "
            "(pass --root pointing at a directory holding repro/)"
        )
    modules: Dict[str, ModuleContext] = {}
    failures: List[Finding] = []
    for path in sorted(package_dir.rglob("*.py")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        rel = path.relative_to(root).as_posix()
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            failures.append(
                Finding(
                    rule="PARSE",
                    severity=Severity.ERROR,
                    path=rel,
                    line=exc.lineno or 0,
                    message=f"module does not parse: {exc.msg}",
                    context="syntax-error",
                )
            )
            continue
        modules[rel] = ModuleContext(path=path, rel=rel, tree=tree, source=source)
    return modules, failures


@dataclass
class CheckReport:
    """Everything one check run produced, ready to render."""

    root: Path
    baseline_path: Optional[Path]
    rules_run: List[str]
    modules_checked: int
    findings: List[Finding]
    suppressed: Dict[BaselineEntry, List[Finding]] = field(default_factory=dict)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def suppressed_count(self) -> int:
        return sum(len(matched) for matched in self.suppressed.values())

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "root": str(self.root),
            "baseline": str(self.baseline_path) if self.baseline_path else None,
            "rules": list(self.rules_run),
            "modules_checked": self.modules_checked,
            "ok": self.ok,
            "findings": [finding.to_json_dict() for finding in self.findings],
            "suppressed": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "context": entry.context,
                    "reason": entry.reason,
                    "matches": len(matched),
                }
                for entry, matched in self.suppressed.items()
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=False)

    def to_text(self) -> str:
        lines: List[str] = []
        for finding in self.findings:
            lines.append(
                f"{finding.severity.value}: {finding.rule} {finding.location}: "
                f"{finding.message}"
            )
        summary = (
            f"repro check: {self.modules_checked} modules, "
            f"{len(self.rules_run)} rules, {len(self.findings)} finding(s)"
        )
        if self.suppressed_count:
            summary += f", {self.suppressed_count} suppressed by baseline"
        lines.append(summary)
        lines.append("OK" if self.ok else "FAILED")
        return "\n".join(lines)


def run_check(
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    use_baseline: bool = True,
    rule_filter: Optional[Sequence[str]] = None,
) -> CheckReport:
    """Run the determinism checks over one source tree.

    Parameters
    ----------
    root:
        Directory containing the ``repro`` package to check; defaults to
        this installation's own source root.
    baseline_path:
        Baseline file; defaults to the one committed next to ``root``.
    use_baseline:
        ``False`` reports raw findings (CI uses this on doctored trees to
        prove the rules still fire).
    rule_filter:
        Identifiers to restrict the run to; unknown identifiers raise.
    """
    root = (root if root is not None else default_root()).resolve()
    rules = all_rules()
    if rule_filter:
        known = {rule.rule_id for rule in rules}
        unknown = sorted(set(rule_filter) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown rule id(s) {', '.join(unknown)}; "
                f"known rules: {', '.join(sorted(known))}"
            )
        rules = [rule for rule in rules if rule.rule_id in set(rule_filter)]

    modules, findings = discover_modules(root)
    for rule in rules:
        if isinstance(rule, ModuleRule):
            for rel in sorted(modules):
                findings.extend(rule.check_module(modules[rel]))
        elif isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(modules, root))

    suppressed: Dict[BaselineEntry, List[Finding]] = {}
    resolved_baseline: Optional[Path] = None
    if use_baseline:
        resolved_baseline = (
            baseline_path if baseline_path is not None else default_baseline(root)
        )
        entries = load_baseline(resolved_baseline)
        findings, suppressed, unused = apply_baseline(findings, entries)
        if rule_filter:
            # A partial run cannot tell whether an entry for an unexercised
            # rule is stale — only a full run may declare it BASE001.
            ran = {rule.rule_id for rule in rules}
            unused = [entry for entry in unused if entry.rule in ran]
        for entry in unused:
            findings.append(
                Finding(
                    rule="BASE001",
                    severity=Severity.ERROR,
                    path=(
                        resolved_baseline.name
                        if resolved_baseline is not None
                        else BASELINE_FILENAME
                    ),
                    line=0,
                    message=(
                        f"baseline entry {entry.describe()} matches nothing — "
                        "the code it excused is gone, so delete the entry "
                        f"(reason was: {entry.reason})"
                    ),
                    context=entry.describe(),
                )
            )

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.context))
    return CheckReport(
        root=root,
        baseline_path=resolved_baseline,
        rules_run=[rule.rule_id for rule in rules],
        modules_checked=len(modules),
        findings=findings,
        suppressed=suppressed,
    )


__all__ = [
    "CheckReport",
    "default_baseline",
    "default_root",
    "discover_modules",
    "run_check",
]
