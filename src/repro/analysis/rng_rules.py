"""RNG discipline rules: every random draw is seeded, named, and declared.

The reproduction's byte-identity guarantees hold only if every random draw
descends from the master seed through a *named* stream
(:class:`repro.sim.random.RandomStreams`).  These rules make the three ways
that discipline historically eroded into static errors:

* an **unseeded generator** slipped in as a convenience fallback (RNG001),
* a draw from the **legacy global numpy RNG** or stdlib entropy, which is
  process-global state no seed threading can reach (RNG002/RNG003),
* a **typo in a stream name**, which silently derives a different
  independent stream and changes every number downstream (RNG004).
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import (
    ModuleContext,
    ModuleRule,
    ProjectRule,
    register_rule,
)

#: The one module allowed to construct generators and own stream names.
RNG_HOME = "repro/sim/random.py"

#: numpy.random attributes that are constructors/types, not the legacy
#: global-state distribution API.
_NUMPY_RANDOM_ALLOWED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)

#: Call targets that read OS entropy: nondeterministic by construction.
_ENTROPY_CALLS = frozenset({"os.urandom", "os.getrandom", "uuid.uuid4", "uuid.uuid1"})

#: Stdlib modules whose import alone signals undisciplined randomness.
_ENTROPY_MODULES = frozenset({"random", "secrets"})


@register_rule
class UnseededRngRule(ModuleRule):
    """RNG001: no unseeded generator construction outside ``sim/random.py``."""

    rule_id = "RNG001"
    title = (
        "generators are constructed seeded, via repro.sim.random "
        "(seeded_rng / derived_rng / RandomStreams) — never default_rng()"
    )

    def check_module(self, module: ModuleContext) -> List[Finding]:
        if module.rel == RNG_HOME:
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.qualified_call(node)
            if target == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    findings.append(
                        self.finding(
                            module.rel,
                            node.lineno,
                            "np.random.default_rng() without a seed is "
                            "irreproducible; thread an rng parameter or derive "
                            "one with repro.sim.random.derived_rng",
                            context="numpy.random.default_rng()",
                        )
                    )
                else:
                    findings.append(
                        self.finding(
                            module.rel,
                            node.lineno,
                            "construct seeded generators through "
                            "repro.sim.random.seeded_rng so determinism tooling "
                            "can audit every construction site",
                            context="numpy.random.default_rng(seed)",
                        )
                    )
            elif target.endswith("RandomStreams") and target.startswith("repro."):
                has_seed = bool(node.args) or any(
                    keyword.arg == "seed" for keyword in node.keywords
                )
                if not has_seed:
                    findings.append(
                        self.finding(
                            module.rel,
                            node.lineno,
                            "RandomStreams() without an explicit seed draws OS "
                            "entropy; pass the experiment's master seed",
                            context="RandomStreams()",
                        )
                    )
        return findings


@register_rule
class LegacyGlobalRngRule(ModuleRule):
    """RNG002: no draws from the legacy global numpy RNG."""

    rule_id = "RNG002"
    title = "no legacy global-state numpy RNG (np.random.<dist>/np.random.seed)"

    def check_module(self, module: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.qualified_call(node)
            if not target.startswith("numpy.random."):
                continue
            tail = target.rsplit(".", 1)[-1]
            if tail not in _NUMPY_RANDOM_ALLOWED:
                findings.append(
                    self.finding(
                        module.rel,
                        node.lineno,
                        f"np.random.{tail}() draws from process-global state no "
                        "seed threading reaches; use a Generator from a named "
                        "RandomStreams stream",
                        context=target,
                    )
                )
        return findings


@register_rule
class StdlibEntropyRule(ModuleRule):
    """RNG003: no stdlib ``random``/``secrets`` or OS entropy in the package."""

    rule_id = "RNG003"
    title = "no stdlib random/secrets imports, os.urandom or uuid4 calls"

    def check_module(self, module: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _ENTROPY_MODULES:
                        findings.append(
                            self.finding(
                                module.rel,
                                node.lineno,
                                f"import {alias.name}: stdlib randomness bypasses "
                                "the named-stream registry; use "
                                "repro.sim.random instead",
                                context=f"import {alias.name}",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _ENTROPY_MODULES and not node.level:
                    findings.append(
                        self.finding(
                            module.rel,
                            node.lineno,
                            f"from {node.module} import ...: stdlib randomness "
                            "bypasses the named-stream registry; use "
                            "repro.sim.random instead",
                            context=f"from {node.module} import",
                        )
                    )
            elif isinstance(node, ast.Call):
                target = module.qualified_call(node)
                if target in _ENTROPY_CALLS:
                    findings.append(
                        self.finding(
                            module.rel,
                            node.lineno,
                            f"{target}() reads OS entropy and can never be "
                            "reproduced from a master seed",
                            context=target,
                        )
                    )
        return findings


def _stream_template(node: ast.AST) -> Optional[str]:
    """A wildcard template for a stream-name argument, or None if opaque.

    String constants map to themselves; f-strings map formatted values to
    ``*`` (``f"gateway-{label}"`` -> ``"gateway-*"``); anything else —
    a variable, a call — returns ``None``.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                parts.append(piece.value)
            else:
                parts.append("*")
        return "".join(parts)
    return None


def _templates_compatible(call_template: str, declared: str) -> bool:
    """Whether a call-site template can produce a name the declaration covers.

    Exact names use glob matching against the declaration.  Wildcarded
    call templates (from f-strings) are compared by literal prefix: the
    call's constant prefix must agree with the declaration's constant
    prefix, which is exactly the part a typo corrupts.
    """
    if "*" not in call_template:
        return fnmatchcase(call_template, declared)
    call_prefix = call_template.split("*", 1)[0]
    declared_prefix = declared.split("*", 1)[0]
    return call_prefix.startswith(declared_prefix) or declared_prefix.startswith(
        call_prefix
    )


def extract_declared_streams(module: ModuleContext) -> Optional[Tuple[str, ...]]:
    """The ``DECLARED_STREAMS`` tuple of a parsed ``sim/random.py``, statically."""
    for node in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "DECLARED_STREAMS":
                if isinstance(value, (ast.Tuple, ast.List)):
                    names = []
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            names.append(element.value)
                    return tuple(names)
    return None


@register_rule
class UndeclaredStreamRule(ProjectRule):
    """RNG004: stream names fetched via ``streams.get`` match the registry.

    The rule recognises stream fetches by the codebase convention that the
    registry variable is called ``streams`` (``streams.get(...)``,
    ``self.streams.get(...)``, ``streams.spawn(...)``).
    """

    rule_id = "RNG004"
    title = (
        "RandomStreams.get names match DECLARED_STREAMS in sim/random.py "
        "(typos become errors, additions are declared)"
    )

    def check_project(
        self, modules: Dict[str, ModuleContext], root: Path
    ) -> List[Finding]:
        home = modules.get(RNG_HOME)
        if home is None:
            return []  # not a repro tree shaped like this package
        declared = extract_declared_streams(home)
        if declared is None:
            return [
                self.finding(
                    RNG_HOME,
                    0,
                    "DECLARED_STREAMS registry is missing from sim/random.py; "
                    "the stream-name contract cannot be checked",
                    context="DECLARED_STREAMS",
                )
            ]
        findings: List[Finding] = []
        for rel, module in sorted(modules.items()):
            if rel == RNG_HOME:
                continue
            findings.extend(self._check_module(module, declared))
        return findings

    def _check_module(
        self, module: ModuleContext, declared: Tuple[str, ...]
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in ("get", "spawn"):
                continue
            receiver = func.value
            receiver_name = ""
            if isinstance(receiver, ast.Name):
                receiver_name = receiver.id
            elif isinstance(receiver, ast.Attribute):
                receiver_name = receiver.attr
            if receiver_name != "streams":
                continue
            if not node.args:
                continue
            template = _stream_template(node.args[0])
            if func.attr == "spawn" and template is not None:
                template = f"{template}[*]"
            if template is None:
                findings.append(
                    self.finding(
                        module.rel,
                        node.lineno,
                        "stream name is not a string literal or f-string; the "
                        "declared-stream contract cannot be checked statically",
                        context="streams.get(<dynamic>)",
                    )
                )
            elif template.startswith("*"):
                findings.append(
                    self.finding(
                        module.rel,
                        node.lineno,
                        f"stream name template {template!r} starts with a "
                        "formatted value, so its registry entry cannot be "
                        "matched; lead with a literal component name",
                        context=template,
                    )
                )
            elif not any(
                _templates_compatible(template, entry)
                for entry in declared + tuple(f"{d}[*]" for d in declared)
            ):
                findings.append(
                    self.finding(
                        module.rel,
                        node.lineno,
                        f"stream name {template!r} matches no entry of "
                        "DECLARED_STREAMS in sim/random.py; a typo here would "
                        "silently derive a different stream — declare the name "
                        "or fix the spelling",
                        context=template,
                    )
                )
        return findings


__all__ = [
    "RNG_HOME",
    "LegacyGlobalRngRule",
    "StdlibEntropyRule",
    "UndeclaredStreamRule",
    "UnseededRngRule",
    "extract_declared_streams",
]
