"""Fingerprint schema drift: cache-key semantics change only deliberately.

``SweepCell.fingerprint()`` and ``CaptureSpec.fingerprint()`` are the cache
keys of every record in every :class:`~repro.runner.store.ResultsStore` —
including the committed CI fixture and every warm store on every machine.
Adding, removing or renaming a field silently either *colds* every cache
(harmless but expensive) or, far worse, keeps serving stale records for
cells whose behaviour changed.

SCH001 freezes the observable schema — the dataclass field lists, the
serialized ``config_dict`` key sets, the gateway-scenario field subset and
``SCHEMA_VERSION`` — against a committed baseline
(``src/repro/analysis/fingerprint_schema.json``).  Any drift is an error
whose fix is an *explicit baseline bump in the same PR*, which is what turns
an accidental cache-semantics change into a reviewed decision (procedure:
``docs/determinism.md``).
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleContext, ProjectRule, register_rule

#: The committed baseline shipped next to this module.
PACKAGED_BASELINE = Path(__file__).resolve().parent / "fingerprint_schema.json"

#: Where the schema facts live in the checked tree.
CELLS_MODULE = "repro/runner/cells.py"
CAPTURE_MODULE = "repro/runner/capture.py"


def _class_def(module: ModuleContext, name: str) -> Optional[ast.ClassDef]:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _dataclass_fields(class_def: ast.ClassDef) -> List[str]:
    """Annotated field names of a dataclass body, in declaration order."""
    fields: List[str] = []
    for node in class_def.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            fields.append(node.target.id)
    return fields


def _config_dict_keys(class_def: ast.ClassDef) -> Tuple[List[str], List[str]]:
    """(required, optional) serialized keys of a ``config_dict`` method.

    Keys of dict literals are required (always serialized); keys assigned
    via ``config["key"] = ...`` are optional (serialized only when set).
    """
    required: List[str] = []
    optional: List[str] = []
    method = next(
        (
            node
            for node in class_def.body
            if isinstance(node, ast.FunctionDef) and node.name == "config_dict"
        ),
        None,
    )
    if method is None:
        return required, optional
    for node in ast.walk(method):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    required.append(key.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    optional.append(target.slice.value)
    return required, optional


def _module_constant(module: ModuleContext, name: str) -> Any:
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return _literal(node.value)
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == name
            and node.value is not None
        ):
            return _literal(node.value)
    return None


def _literal(node: ast.expr) -> Any:
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return None


def extract_live_schema(
    cells: ModuleContext, capture: ModuleContext
) -> Dict[str, Any]:
    """The observable fingerprint schema of a parsed tree, as plain data."""
    schema: Dict[str, Any] = {"schema_version": _module_constant(cells, "SCHEMA_VERSION")}
    for name, module in (("SweepCell", cells), ("CaptureSpec", capture)):
        class_def = _class_def(module, name)
        if class_def is None:
            schema[name] = None
            continue
        required, optional = _config_dict_keys(class_def)
        schema[name] = {
            "fields": _dataclass_fields(class_def),
            "required_config_keys": required,
            "optional_config_keys": optional,
        }
    gateway_fields = _module_constant(capture, "GATEWAY_SCENARIO_FIELDS")
    schema["gateway_scenario_fields"] = (
        list(gateway_fields) if gateway_fields is not None else None
    )
    return schema


def load_schema_baseline(root: Path) -> Tuple[Optional[Dict[str, Any]], Path]:
    """The committed schema baseline: the checked tree's copy, else the packaged one."""
    candidate = root / "repro" / "analysis" / "fingerprint_schema.json"
    path = candidate if candidate.is_file() else PACKAGED_BASELINE
    if not path.is_file():
        return None, path
    return json.loads(path.read_text(encoding="utf-8")), path


def _diff_lists(expected: Sequence[str], actual: Sequence[str]) -> str:
    removed = [name for name in expected if name not in actual]
    added = [name for name in actual if name not in expected]
    parts = []
    if added:
        parts.append(f"added {added}")
    if removed:
        parts.append(f"removed {removed}")
    if not parts:  # same members, different order
        parts.append(f"reordered to {list(actual)}")
    return ", ".join(parts)


@register_rule
class FingerprintSchemaRule(ProjectRule):
    """SCH001: the live fingerprint schema matches the committed baseline."""

    rule_id = "SCH001"
    title = (
        "SweepCell/CaptureSpec fields and config_dict key sets match the "
        "committed fingerprint_schema.json (cache-key changes need an "
        "explicit baseline bump)"
    )

    def check_project(
        self, modules: Dict[str, ModuleContext], root: Path
    ) -> List[Finding]:
        cells = modules.get(CELLS_MODULE)
        capture = modules.get(CAPTURE_MODULE)
        if cells is None or capture is None:
            return []  # not a repro tree shaped like this package
        baseline, baseline_path = load_schema_baseline(root)
        if baseline is None:
            return [
                self.finding(
                    CELLS_MODULE,
                    0,
                    f"fingerprint schema baseline {baseline_path} is missing; "
                    "commit it (repro check --write-schema-baseline regenerates "
                    "it) so cache-key drift is detectable",
                    context="fingerprint_schema.json",
                )
            ]
        live = extract_live_schema(cells, capture)
        findings: List[Finding] = []
        bump = (
            "if this change is deliberate, bump "
            "src/repro/analysis/fingerprint_schema.json in the same PR and "
            "say why in docs/determinism.md terms (stores may need SCHEMA_VERSION "
            "bumped too)"
        )
        if live["schema_version"] != baseline.get("schema_version"):
            findings.append(
                self.finding(
                    CELLS_MODULE,
                    0,
                    f"SCHEMA_VERSION is {live['schema_version']!r} but the "
                    f"committed baseline says {baseline.get('schema_version')!r}; "
                    + bump,
                    context="SCHEMA_VERSION",
                )
            )
        for name, rel in (("SweepCell", CELLS_MODULE), ("CaptureSpec", CAPTURE_MODULE)):
            expected = baseline.get(name) or {}
            actual = live.get(name)
            if actual is None:
                findings.append(
                    self.finding(
                        rel,
                        0,
                        f"class {name} not found; the fingerprint schema "
                        "contract cannot be checked",
                        context=name,
                    )
                )
                continue
            for aspect in ("fields", "required_config_keys", "optional_config_keys"):
                if list(expected.get(aspect, [])) != list(actual[aspect]):
                    findings.append(
                        self.finding(
                            rel,
                            0,
                            f"{name}.{aspect} drifted from the committed "
                            f"fingerprint schema baseline: "
                            f"{_diff_lists(expected.get(aspect, []), actual[aspect])} — "
                            "this changes cache-key semantics for every "
                            f"existing results store; {bump}",
                            context=f"{name}.{aspect}",
                        )
                    )
        if list(baseline.get("gateway_scenario_fields", [])) != list(
            live["gateway_scenario_fields"] or []
        ):
            findings.append(
                self.finding(
                    CAPTURE_MODULE,
                    0,
                    "GATEWAY_SCENARIO_FIELDS drifted from the committed "
                    "baseline: "
                    + _diff_lists(
                        baseline.get("gateway_scenario_fields", []),
                        live["gateway_scenario_fields"] or [],
                    )
                    + " — gateway-capture sharing semantics change with it; "
                    + bump,
                    context="GATEWAY_SCENARIO_FIELDS",
                )
            )
        return findings


__all__ = [
    "CAPTURE_MODULE",
    "CELLS_MODULE",
    "PACKAGED_BASELINE",
    "FingerprintSchemaRule",
    "extract_live_schema",
    "load_schema_baseline",
]
