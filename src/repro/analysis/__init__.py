"""Static determinism analysis for the reproduction (``repro check``).

A custom AST-based pass that turns the repository's determinism contracts
— seeded named RNG streams, no wall-clock in result paths, ordered
iteration, frozen fingerprint schema, experiment protocol conformance —
into machine-checkable rules.  ``repro check`` runs them all; CI requires
a clean (or explicitly baselined) tree.  Rule table and baseline-bump
procedure: ``docs/determinism.md``.
"""

from repro.analysis.baseline import BaselineEntry, apply_baseline, load_baseline
from repro.analysis.checker import CheckReport, default_root, run_check
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import (
    ModuleContext,
    ModuleRule,
    ProjectRule,
    Rule,
    all_rules,
    register_rule,
    rule_ids,
)

__all__ = [
    "BaselineEntry",
    "CheckReport",
    "Finding",
    "ModuleContext",
    "ModuleRule",
    "ProjectRule",
    "Rule",
    "Severity",
    "all_rules",
    "apply_baseline",
    "default_root",
    "load_baseline",
    "register_rule",
    "rule_ids",
    "run_check",
]
