"""The analysis baseline: every suppressed finding is explicit and justified.

A clean tree is the goal, but some findings are deliberate — the bench
harness stamps artifact metadata with the wall clock, the topology derives
stream names from a runtime spec name.  Those exceptions live in one
committed TOML file (``analysis-baseline.toml`` at the repository root),
one ``[[ignore]]`` entry each, with a *required* justification:

.. code-block:: toml

    [[ignore]]
    rule = "CLK001"
    path = "repro/runner/bench.py"
    context = "datetime.datetime.now"
    reason = "timestamps bench artifact metadata only; never fingerprinted"

Matching is by rule + path + ``context`` substring — never by line number,
so entries survive unrelated edits.  An entry that matches nothing is
itself an error: stale suppressions rot into blind spots, so the checker
makes you delete them the moment the offending code is gone.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.exceptions import ConfigurationError

try:  # Python 3.11+; 3.10 installs the tomli backport (see pyproject.toml).
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on Python 3.10
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ImportError:
        _toml = None

#: Default baseline filename, looked up next to the checked tree's root.
BASELINE_FILENAME = "analysis-baseline.toml"


@dataclass(frozen=True)
class BaselineEntry:
    """One justified suppression.

    Attributes
    ----------
    rule:
        The rule identifier the entry suppresses (exact match).
    path:
        POSIX path relative to the checked root (exact match).
    context:
        Substring the finding's ``context`` must contain; empty matches any
        finding of the rule in the file.
    reason:
        Why the violation is acceptable.  Required and non-empty — an
        unexplained suppression is indistinguishable from a mistake.
    """

    rule: str
    path: str
    context: str
    reason: str

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule == self.rule
            and finding.path == self.path
            and (not self.context or self.context in finding.context)
        )

    def describe(self) -> str:
        suffix = f" [{self.context}]" if self.context else ""
        return f"{self.rule} at {self.path}{suffix}"


def load_baseline(path: Optional[Path]) -> List[BaselineEntry]:
    """Parse a baseline file; a missing path means an empty baseline."""
    if path is None or not path.is_file():
        return []
    if _toml is None:  # pragma: no cover - Python 3.10 without tomli
        raise ConfigurationError(
            f"reading {path} needs Python >= 3.11 (tomllib) or the 'tomli' "
            "package; run the check with --no-baseline instead"
        )
    try:
        with path.open("rb") as handle:
            data = _toml.load(handle)
    except _toml.TOMLDecodeError as exc:
        raise ConfigurationError(
            f"baseline file {path} is not valid TOML: {exc}"
        ) from exc
    entries_raw = data.get("ignore", [])
    if not isinstance(entries_raw, list):
        raise ConfigurationError(
            f"baseline file {path}: 'ignore' must be an array of tables "
            "([[ignore]] entries)"
        )
    entries: List[BaselineEntry] = []
    for position, raw in enumerate(entries_raw, start=1):
        entries.append(_parse_entry(path, position, raw))
    return entries


def _parse_entry(path: Path, position: int, raw: Any) -> BaselineEntry:
    if not isinstance(raw, dict):
        raise ConfigurationError(
            f"baseline file {path}: [[ignore]] entry {position} is not a table"
        )
    unknown = sorted(set(raw) - {"rule", "path", "context", "reason"})
    if unknown:
        raise ConfigurationError(
            f"baseline file {path}: entry {position} has unknown keys "
            f"{', '.join(unknown)} (allowed: rule, path, context, reason)"
        )
    rule = raw.get("rule")
    rel = raw.get("path")
    reason = raw.get("reason")
    context = raw.get("context", "")
    for key, value in (("rule", rule), ("path", rel), ("reason", reason)):
        if not isinstance(value, str) or not value.strip():
            raise ConfigurationError(
                f"baseline file {path}: entry {position} needs a non-empty "
                f"string {key!r} — every suppression states what it hides "
                "and why"
            )
    if not isinstance(context, str):
        raise ConfigurationError(
            f"baseline file {path}: entry {position}: 'context' must be a string"
        )
    assert isinstance(rule, str) and isinstance(rel, str) and isinstance(reason, str)
    return BaselineEntry(
        rule=rule.strip(), path=rel.strip(), context=context.strip(), reason=reason.strip()
    )


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[List[Finding], Dict[BaselineEntry, List[Finding]], List[BaselineEntry]]:
    """Split findings into (surviving, suppressed-by-entry, unused entries).

    Every unused entry is a stale suppression the caller must report as an
    error — baselines only shrink or change with the code they excuse.
    """
    suppressed: Dict[BaselineEntry, List[Finding]] = {entry: [] for entry in entries}
    surviving: List[Finding] = []
    for finding in findings:
        matched = False
        for entry in entries:
            if entry.matches(finding):
                suppressed[entry].append(finding)
                matched = True
                break
        if not matched:
            surviving.append(finding)
    unused = [entry for entry in entries if not suppressed[entry]]
    return surviving, suppressed, unused


__all__ = [
    "BASELINE_FILENAME",
    "BaselineEntry",
    "apply_baseline",
    "load_baseline",
]
