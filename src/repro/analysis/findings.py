"""Findings: what an analysis rule reports.

A :class:`Finding` is one violation of one rule at one source location.  It
is deliberately a plain value object — rules produce findings, the checker
filters them against the baseline, and the CLI renders whatever survives as
human-readable text or machine-readable JSON.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict


class Severity(str, enum.Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings fail ``repro check``; ``WARNING`` findings are
    reported but do not change the exit code.  Every shipped rule is an
    error: a determinism contract that only warns is not enforced.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        The rule identifier, e.g. ``"RNG001"``.
    severity:
        Whether the finding fails the check.
    path:
        POSIX path of the offending file, relative to the checked root
        (e.g. ``"repro/stats/bootstrap.py"``).
    line:
        1-based source line, or 0 for file- or project-level findings.
    message:
        Human-readable description of the violation and what to do instead.
    context:
        The offending construct (a call spelling, a stream name, a field
        name).  Baseline entries match on substrings of this, so the match
        survives line-number drift.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    context: str = ""

    @property
    def location(self) -> str:
        """``path:line`` (or just ``path`` for file-level findings)."""
        return f"{self.path}:{self.line}" if self.line else self.path

    def to_json_dict(self) -> Dict[str, Any]:
        """The finding as plain JSON-able data."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "context": self.context,
        }


__all__ = ["Finding", "Severity"]
