"""Wall-clock and ordering-hazard rules.

Simulation results must be a pure function of configuration and seed.  Two
classic leaks break that purity without failing any test on the machine that
introduced them:

* reading the **wall clock** (``time.time``, ``datetime.now``) inside a
  simulation or result path — fine for progress lines, fatal inside
  anything fingerprinted (CLK001; duration-only clocks like
  ``perf_counter``/``monotonic`` stay legal, they time work that is
  explicitly excluded from reports);
* iterating a **set** (hash order varies across processes under
  ``PYTHONHASHSEED``) or an **unsorted directory listing** (filesystem
  order is arbitrary) anywhere the order can reach a report or a
  fingerprint (ORD001/ORD002).
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleContext, ModuleRule, register_rule

#: Call targets that read the wall clock or the calendar.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Unqualified method tails that read the wall clock on a datetime class
#: imported under an alias the resolver cannot follow.
_WALL_CLOCK_TAILS = frozenset({".utcnow"})

#: Filesystem-listing calls whose order is not guaranteed.
_LISTING_CALLS = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})
_LISTING_METHODS = frozenset({"glob", "iterdir", "rglob"})

#: Builtins through which a set's arbitrary order escapes into a sequence.
_ORDER_ESCAPES = frozenset({"list", "tuple", "enumerate", "iter", "next"})


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _inside_sorted(module: ModuleContext, node: ast.AST) -> bool:
    """Whether an expression is (transitively) an argument of ``sorted``/``min``/``max``."""
    for ancestor in module.parent_chain(node):
        if isinstance(ancestor, ast.Call) and isinstance(ancestor.func, ast.Name):
            if ancestor.func.id in ("sorted", "min", "max", "sum", "len", "any", "all"):
                return True
        if isinstance(ancestor, ast.stmt):
            break
    return False


@register_rule
class WallClockRule(ModuleRule):
    """CLK001: no wall-clock or calendar reads in result-affecting code."""

    rule_id = "CLK001"
    title = (
        "no time.time()/datetime.now()-style wall-clock reads in package "
        "code (perf_counter/monotonic durations stay legal)"
    )

    def check_module(self, module: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.qualified_call(node)
            if target in _WALL_CLOCK_CALLS or target in _WALL_CLOCK_TAILS:
                tail = target.rsplit(".", 1)[-1]
                findings.append(
                    self.finding(
                        module.rel,
                        node.lineno,
                        f"{target}() reads the wall clock; results must be a "
                        "pure function of configuration and seed "
                        f"(use perf_counter/monotonic for durations, or add a "
                        f"justified baseline entry if {tail} never reaches a "
                        "result)",
                        context=target,
                    )
                )
        return findings


@register_rule
class UnorderedSetIterationRule(ModuleRule):
    """ORD001: set order must never escape into iteration or a sequence."""

    rule_id = "ORD001"
    title = (
        "no iteration over sets and no list()/tuple() of a set without "
        "sorted() — hash order varies across processes"
    )

    def check_module(self, module: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            offender: ast.AST | None = None
            if isinstance(node, ast.For) and _is_set_expression(node.iter):
                offender = node.iter
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
                for generator in node.generators:
                    if _is_set_expression(generator.iter):
                        offender = generator.iter
                        break
                # Building another set from a set is order-free.
                if isinstance(node, ast.SetComp):
                    offender = None
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_ESCAPES
                and node.args
                and _is_set_expression(node.args[0])
            ):
                offender = node.args[0]
            if offender is not None and not _inside_sorted(module, offender):
                findings.append(
                    self.finding(
                        module.rel,
                        offender.lineno,
                        "iterating a set exposes hash order, which varies "
                        "across processes and PYTHONHASHSEED; wrap the set in "
                        "sorted(...) before its order can reach a report or "
                        "fingerprint",
                        context="set-iteration",
                    )
                )
        return findings


@register_rule
class UnsortedListingRule(ModuleRule):
    """ORD002: directory listings are sorted before anything iterates them."""

    rule_id = "ORD002"
    title = "no unsorted glob()/iterdir()/listdir() — filesystem order is arbitrary"

    def check_module(self, module: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.qualified_call(node)
            is_listing = target in _LISTING_CALLS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _LISTING_METHODS
                and not target.startswith("repro.")
            )
            if is_listing and not _inside_sorted(module, node):
                name = target.rsplit(".", 1)[-1] or "listing"
                findings.append(
                    self.finding(
                        module.rel,
                        node.lineno,
                        f"{name}() returns entries in arbitrary filesystem "
                        "order; wrap the listing in sorted(...) so downstream "
                        "iteration is deterministic",
                        context=name,
                    )
                )
        return findings


__all__ = ["UnorderedSetIterationRule", "UnsortedListingRule", "WallClockRule"]
