"""Ablation experiments beyond the paper's figures.

The paper fixes several knobs of the adversary and of the evaluation setup;
these experiments sweep them to show the headline result is not an artefact
of a lucky constant.  Each one implements the same protocol as the figure
experiments (``cells(seeds)`` / ``assemble(report, seeds, confidence)`` /
``run``), so they pool into the same sweep runner, cache into the same
results store, aggregate across seeds the same way — and, registered under
:mod:`repro.api`, run from the CLI like any figure:

``ablation_estimators``
    The entropy histogram bin width and the KDE bandwidth rule of the
    adversary's pipeline, swept on the Figure 4 scenario.
``ablation_tap``
    The number of loaded router hops between the sender gateway and the
    adversary's tap — how much protection "distance behind noisy routers"
    buys a CIT system.
``ablation_vit``
    The VIT timer's interval *distribution family* at identical
    ``(tau, sigma_T)`` — the defence needs variance, not any particular
    shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.experiments.base import CollectionMode, ScenarioConfig, resolve_seeds
from repro.experiments.report import (
    format_table,
    render_experiment_report,
    seed_suffix,
    with_ci_column,
)
from repro.padding.policies import PaddingPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.runner import GridSpec, SweepCell, SweepRunner

#: Feature statistics reported by the tap and VIT-family ablations.
_ABLATION_FEATURES: Tuple[str, ...] = ("mean", "variance", "entropy")


def _experiment_view(cells, report, n_seeds: int, confidence: Optional[float]):
    """Raw report for single-seed runs, per-point aggregation otherwise.

    The cell-list twin of :func:`repro.runner.grid.experiment_view`, for
    experiments whose grids are explicit cell lists rather than one
    :class:`~repro.runner.grid.GridSpec`.
    """
    from repro.runner import aggregate_cells

    if n_seeds > 1:
        return aggregate_cells(cells, report, confidence=confidence)
    return report


def _seeded_key(key: str, seed: int, seeds: Sequence[int]) -> str:
    """Bare point key for single-seed grids, ``@seed=N``-tagged otherwise."""
    from repro.runner import SEED_TAG

    if len(seeds) == 1:
        return key
    return f"{key}{SEED_TAG}{seed}"


# =====================================================================
# Estimator settings
# =====================================================================
@dataclass(frozen=True)
class EstimatorAblationConfig:
    """Configuration for the adversary-estimator ablation.

    Attributes
    ----------
    bin_widths:
        Histogram bin widths (seconds) swept for the sample-entropy feature.
    kde_bandwidths:
        KDE bandwidth settings swept for the variance feature: rule names
        (``"silverman"``/``"scott"``) or positive multiples of the Silverman
        bandwidth of the pooled training features.
    sample_size, trials, mode, seed, scenario:
        As in the figure configs; the default scenario is Figure 4's (CIT,
        tap at the gateway, no cross traffic).
    """

    bin_widths: Tuple[float, ...] = (5e-6, 2e-5, 5e-5, 2e-4)
    kde_bandwidths: Tuple[Union[str, float], ...] = ("silverman", "scott", 0.5, 2.0)
    sample_size: int = 1000
    trials: int = 15
    mode: CollectionMode = CollectionMode.SIMULATION
    seed: int = 17
    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)

    def __post_init__(self) -> None:
        if not self.bin_widths and not self.kde_bandwidths:
            raise ConfigurationError(
                "at least one of bin_widths / kde_bandwidths must be non-empty"
            )
        if any(not w > 0.0 for w in self.bin_widths):
            raise ConfigurationError("every entropy bin width must be positive")
        if self.sample_size < 2 or self.trials < 2:
            raise ConfigurationError("sample_size and trials must be >= 2")


@dataclass
class EstimatorAblationResult:
    """Detection rate per estimator setting (bin width / KDE bandwidth)."""

    config: EstimatorAblationConfig
    detection_rate_by_bin_width: Dict[float, float]
    detection_rate_by_bandwidth: Dict[Union[str, float], float]
    bin_width_ci: Optional[Dict[float, Tuple[float, float]]] = None
    bandwidth_ci: Optional[Dict[Union[str, float], Tuple[float, float]]] = None
    n_seeds: int = 1
    confidence: Optional[float] = None

    def to_text(self) -> str:
        sections = []
        n = self.config.sample_size
        if self.detection_rate_by_bin_width:
            headers = ["bin width (s)", "detection rate"]
            rows = [(w, rate) for w, rate in self.detection_rate_by_bin_width.items()]
            if self.bin_width_ci is not None:
                headers, rows = with_ci_column(
                    headers, rows, 2, self.confidence,
                    lambda row: self.bin_width_ci.get(row[0]),
                )
            sections.append(
                (
                    f"Entropy histogram bin width (n={n})" + seed_suffix(self.n_seeds),
                    format_table(headers, rows),
                )
            )
        if self.detection_rate_by_bandwidth:
            headers = ["bandwidth rule / multiple of Silverman", "detection rate"]
            rows = [
                (str(b), rate) for b, rate in self.detection_rate_by_bandwidth.items()
            ]
            key_of = {str(b): b for b in self.detection_rate_by_bandwidth}
            if self.bandwidth_ci is not None:
                headers, rows = with_ci_column(
                    headers, rows, 2, self.confidence,
                    lambda row: self.bandwidth_ci.get(key_of[row[0]]),
                )
            sections.append(
                (
                    f"KDE bandwidth for the variance feature (n={n})"
                    + seed_suffix(self.n_seeds),
                    format_table(headers, rows),
                )
            )
        return render_experiment_report(
            "Ablation — adversary estimator settings", sections
        )


class EstimatorAblationExperiment:
    """Sweeps the adversary's entropy bin width and KDE bandwidth rule."""

    name = "ablation_estimators"

    def __init__(self, config: Optional[EstimatorAblationConfig] = None) -> None:
        self.config = config if config is not None else EstimatorAblationConfig()

    def describe(self) -> str:
        """One-line summary shown by ``repro list`` and ``Experiment.describe``."""
        return (
            "Ablation: entropy histogram bin width and KDE bandwidth rule of the "
            "adversary's estimators, swept on the Figure 4 scenario"
        )

    @staticmethod
    def bin_width_key(bin_width: float) -> str:
        """The grid-point key of one entropy-bin-width setting."""
        return f"ablation_estimators/bin_width={bin_width!r}"

    @staticmethod
    def bandwidth_key(bandwidth: Union[str, float]) -> str:
        """The grid-point key of one KDE-bandwidth setting."""
        return f"ablation_estimators/bandwidth={bandwidth!r}"

    def cells(self, seeds: Optional[Sequence[int]] = None) -> "List[SweepCell]":
        """One cell per (estimator setting, seed).

        Not a :class:`~repro.runner.grid.GridSpec` product: the two knobs
        vary *cell* options (``entropy_bin_width`` / ``kde_bandwidth``), not
        scenario axes, so the cells are built directly.
        """
        from repro.runner import SweepCell

        config = self.config
        resolved = resolve_seeds(config.seed, seeds)
        cells: List[SweepCell] = []
        for seed in resolved:
            common = dict(
                scenario=config.scenario,
                sample_sizes=(config.sample_size,),
                trials=config.trials,
                mode=config.mode,
                seed=seed,
            )
            for bin_width in config.bin_widths:
                cells.append(
                    SweepCell(
                        key=_seeded_key(self.bin_width_key(bin_width), seed, resolved),
                        features=("entropy",),
                        entropy_bin_width=bin_width,
                        **common,
                    )
                )
            for bandwidth in config.kde_bandwidths:
                cells.append(
                    SweepCell(
                        key=_seeded_key(self.bandwidth_key(bandwidth), seed, resolved),
                        features=("variance",),
                        kde_bandwidth=bandwidth,
                        **common,
                    )
                )
        return cells

    def run(
        self,
        runner: "Optional[SweepRunner]" = None,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> EstimatorAblationResult:
        from repro.runner import SweepRunner

        runner = runner if runner is not None else SweepRunner()
        return self.assemble(runner.run(self.cells(seeds)), seeds=seeds, confidence=confidence)

    def assemble(
        self,
        report,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> EstimatorAblationResult:
        """Build the ablation result from a sweep report containing its cells."""
        config = self.config
        resolved = resolve_seeds(config.seed, seeds)
        view = _experiment_view(
            self.cells(resolved), report, len(resolved), confidence
        )
        n = config.sample_size
        by_bin: Dict[float, float] = {}
        by_bandwidth: Dict[Union[str, float], float] = {}
        bin_ci: Dict[float, Tuple[float, float]] = {}
        bandwidth_ci: Dict[Union[str, float], Tuple[float, float]] = {}
        has_ci = False
        result_confidence: Optional[float] = None
        for bin_width in config.bin_widths:
            cell = view[self.bin_width_key(bin_width)]
            by_bin[bin_width] = cell.empirical_detection_rate["entropy"][n]
            cell_ci = getattr(cell, "detection_rate_ci", None)
            if cell_ci is not None:
                bin_ci[bin_width] = cell_ci["entropy"][n]
                has_ci = True
                result_confidence = getattr(cell, "confidence", None)
        for bandwidth in config.kde_bandwidths:
            cell = view[self.bandwidth_key(bandwidth)]
            by_bandwidth[bandwidth] = cell.empirical_detection_rate["variance"][n]
            cell_ci = getattr(cell, "detection_rate_ci", None)
            if cell_ci is not None:
                bandwidth_ci[bandwidth] = cell_ci["variance"][n]
                has_ci = True
                result_confidence = getattr(cell, "confidence", None)
        return EstimatorAblationResult(
            config=config,
            detection_rate_by_bin_width=by_bin,
            detection_rate_by_bandwidth=by_bandwidth,
            bin_width_ci=bin_ci if has_ci else None,
            bandwidth_ci=bandwidth_ci if has_ci else None,
            n_seeds=len(resolved),
            confidence=result_confidence,
        )


# =====================================================================
# Tap position
# =====================================================================
@dataclass(frozen=True)
class TapAblationConfig:
    """Configuration for the tap-position ablation.

    Attributes
    ----------
    hop_counts:
        Numbers of loaded router hops between the gateway and the tap.  The
        0-hop point taps right at the gateway and carries no cross traffic.
    per_hop_utilization:
        Shared-link utilization of every loaded hop.
    """

    hop_counts: Tuple[int, ...] = (0, 1, 3, 8, 15)
    per_hop_utilization: float = 0.2
    sample_size: int = 1000
    trials: int = 15
    mode: CollectionMode = CollectionMode.HYBRID
    seed: int = 23
    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)

    def __post_init__(self) -> None:
        if not self.hop_counts:
            raise ConfigurationError("hop_counts must be non-empty")
        if any(h < 0 for h in self.hop_counts):
            raise ConfigurationError("every hop count must be >= 0")
        if not 0.0 < self.per_hop_utilization < 1.0:
            raise ConfigurationError("per_hop_utilization must lie in (0, 1)")
        if self.sample_size < 2 or self.trials < 2:
            raise ConfigurationError("sample_size and trials must be >= 2")

    def scenario_at(self, hops: int) -> ScenarioConfig:
        """The padded-link scenario with the tap ``hops`` loaded hops away."""
        return self.scenario.with_hops(hops).with_cross_utilization(
            self.per_hop_utilization if hops else 0.0
        )


@dataclass
class TapAblationResult:
    """Detection rate versus the tap's distance behind loaded routers."""

    config: TapAblationConfig
    empirical_detection_rate: Dict[str, Dict[int, float]]
    variance_ratios: Dict[int, float]
    empirical_ci: Optional[Dict[str, Dict[int, Tuple[float, float]]]] = None
    n_seeds: int = 1
    confidence: Optional[float] = None

    def rows(self):
        """(feature, hops, r, empirical) rows."""
        for feature, by_hops in sorted(self.empirical_detection_rate.items()):
            for hops, empirical in sorted(by_hops.items()):
                yield (feature, hops, self.variance_ratios[hops], empirical)

    def to_text(self) -> str:
        title = (
            f"Detection rate vs tap position (sample size {self.config.sample_size}, "
            f"{self.config.per_hop_utilization:g} utilization per loaded hop)"
            + seed_suffix(self.n_seeds)
        )
        headers = ["feature", "hops between GW1 and tap", "r", "empirical"]
        rows = self.rows()
        if self.empirical_ci is not None:
            headers, rows = with_ci_column(
                headers, rows, 4, self.confidence,
                lambda row: self.empirical_ci.get(row[0], {}).get(row[1]),
            )
        return render_experiment_report(
            "Ablation — adversary tap position", [(title, format_table(headers, rows))]
        )


class TapAblationExperiment:
    """Sweeps the number of loaded hops between the gateway and the tap."""

    name = "ablation_tap"

    def __init__(self, config: Optional[TapAblationConfig] = None) -> None:
        self.config = config if config is not None else TapAblationConfig()

    def describe(self) -> str:
        """One-line summary shown by ``repro list`` and ``Experiment.describe``."""
        return (
            "Ablation: how much protection distance behind loaded routers buys — "
            "detection rate vs the number of hops between gateway and tap"
        )

    @staticmethod
    def point_key(hops: int) -> str:
        """The grid-point key of one tap position."""
        return f"ablation_tap/hops={hops}"

    def grid(self, seeds: Optional[Sequence[int]] = None) -> "GridSpec":
        """Explicit grid points (the 0-hop tap is not a pure axis product).

        In hybrid mode the points are two-level: every tap position shares
        one cached gateway capture, with per-position noise salts.
        """
        from repro.runner import GridPoint, GridSpec

        config = self.config
        points = [
            GridPoint(
                key=self.point_key(hops),
                scenario=config.scenario_at(hops),
                shared_capture=True,
                capture_key="ablation_tap/gateway-capture",
                noise_offsets=(f"train-hops{hops}", f"test-hops{hops}"),
            )
            for hops in config.hop_counts
        ]
        return GridSpec.from_points(
            "ablation_tap",
            points,
            seeds=resolve_seeds(config.seed, seeds),
            sample_sizes=(config.sample_size,),
            trials=config.trials,
            mode=config.mode,
        )

    def cells(self, seeds: Optional[Sequence[int]] = None) -> "List[SweepCell]":
        """One sweep-runner cell per (tap position, seed) grid point."""
        return self.grid(seeds).cells()

    def run(
        self,
        runner: "Optional[SweepRunner]" = None,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> TapAblationResult:
        from repro.runner import SweepRunner

        runner = runner if runner is not None else SweepRunner()
        return self.assemble(runner.run(self.cells(seeds)), seeds=seeds, confidence=confidence)

    def assemble(
        self,
        report,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> TapAblationResult:
        """Build the ablation result from a sweep report containing its cells."""
        from repro.runner import experiment_view

        config = self.config
        resolved = resolve_seeds(config.seed, seeds)
        view = experiment_view(report, self.grid(resolved), confidence=confidence)
        empirical: Dict[str, Dict[int, float]] = {name: {} for name in _ABLATION_FEATURES}
        empirical_ci: Dict[str, Dict[int, Tuple[float, float]]] = {
            name: {} for name in _ABLATION_FEATURES
        }
        ratios: Dict[int, float] = {}
        has_ci = False
        result_confidence: Optional[float] = None
        for hops in config.hop_counts:
            cell = view[self.point_key(hops)]
            cell_ci = getattr(cell, "detection_rate_ci", None)
            ratios[hops] = config.scenario_at(hops).variance_ratio()
            for name in _ABLATION_FEATURES:
                empirical[name][hops] = cell.empirical_detection_rate[name][
                    config.sample_size
                ]
                if cell_ci is not None:
                    empirical_ci[name][hops] = cell_ci[name][config.sample_size]
                    has_ci = True
                    result_confidence = getattr(cell, "confidence", None)
        return TapAblationResult(
            config=config,
            empirical_detection_rate=empirical,
            variance_ratios=ratios,
            empirical_ci=empirical_ci if has_ci else None,
            n_seeds=len(resolved),
            confidence=result_confidence,
        )


# =====================================================================
# VIT interval distribution family
# =====================================================================
@dataclass(frozen=True)
class VitFamilyAblationConfig:
    """Configuration for the VIT distribution-family ablation.

    Attributes
    ----------
    families:
        Interval distribution families run at identical ``(tau, sigma_T)``.
    sigma_t:
        Timer standard deviation shared by every family (seconds).
    """

    families: Tuple[str, ...] = ("normal", "uniform", "exponential", "lognormal")
    sigma_t: float = 3e-4
    sample_size: int = 1000
    trials: int = 12
    mode: CollectionMode = CollectionMode.SIMULATION
    seed: int = 7
    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)

    def __post_init__(self) -> None:
        if not self.families:
            raise ConfigurationError("families must be non-empty")
        if not self.sigma_t > 0.0:
            raise ConfigurationError("sigma_t must be positive")
        if self.sample_size < 2 or self.trials < 2:
            raise ConfigurationError("sample_size and trials must be >= 2")

    def policy_for(self, family: str) -> PaddingPolicy:
        """The VIT policy realising ``sigma_t`` with the given family."""
        return PaddingPolicy(
            name=f"VIT-{family}",
            kind="VIT",
            mean_interval=self.scenario.policy.mean_interval,
            sigma_t=self.sigma_t,
            family=family,
        )


@dataclass
class VitFamilyAblationResult:
    """Detection rate per VIT interval distribution family."""

    config: VitFamilyAblationConfig
    empirical_detection_rate: Dict[str, Dict[str, float]]
    empirical_ci: Optional[Dict[str, Dict[str, Tuple[float, float]]]] = None
    n_seeds: int = 1
    confidence: Optional[float] = None

    def rows(self):
        """(feature, family, empirical) rows."""
        for feature, by_family in sorted(self.empirical_detection_rate.items()):
            for family, empirical in by_family.items():
                yield (feature, family, empirical)

    def to_text(self) -> str:
        title = (
            f"Detection rate vs VIT family (sigma_T={self.config.sigma_t:g} s, "
            f"sample size {self.config.sample_size})" + seed_suffix(self.n_seeds)
        )
        headers = ["feature", "VIT family", "empirical"]
        rows = self.rows()
        if self.empirical_ci is not None:
            headers, rows = with_ci_column(
                headers, rows, 3, self.confidence,
                lambda row: self.empirical_ci.get(row[0], {}).get(row[1]),
            )
        return render_experiment_report(
            "Ablation — VIT interval distribution family",
            [(title, format_table(headers, rows))],
        )


class VitFamilyAblationExperiment:
    """Sweeps the VIT timer's interval distribution family."""

    name = "ablation_vit"

    def __init__(self, config: Optional[VitFamilyAblationConfig] = None) -> None:
        self.config = config if config is not None else VitFamilyAblationConfig()

    def describe(self) -> str:
        """One-line summary shown by ``repro list`` and ``Experiment.describe``."""
        return (
            "Ablation: VIT interval distribution families at identical (tau, "
            "sigma_T) — the defence needs variance, not a particular shape"
        )

    def point_key(self, family: str) -> str:
        """The grid-point key of one interval family."""
        return f"ablation_vit/policy=VIT-{family}"

    def grid(self, seeds: Optional[Sequence[int]] = None) -> "GridSpec":
        """The family sweep as a policy axis of a grid product."""
        from repro.runner import GridSpec

        config = self.config
        return GridSpec.product(
            "ablation_vit",
            config.scenario,
            policies=[config.policy_for(family) for family in config.families],
            seeds=resolve_seeds(config.seed, seeds),
            sample_sizes=(config.sample_size,),
            trials=config.trials,
            mode=config.mode,
        )

    def cells(self, seeds: Optional[Sequence[int]] = None) -> "List[SweepCell]":
        """One sweep-runner cell per (family, seed) grid point."""
        return self.grid(seeds).cells()

    def run(
        self,
        runner: "Optional[SweepRunner]" = None,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> VitFamilyAblationResult:
        from repro.runner import SweepRunner

        runner = runner if runner is not None else SweepRunner()
        return self.assemble(runner.run(self.cells(seeds)), seeds=seeds, confidence=confidence)

    def assemble(
        self,
        report,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> VitFamilyAblationResult:
        """Build the ablation result from a sweep report containing its cells."""
        from repro.runner import experiment_view

        config = self.config
        resolved = resolve_seeds(config.seed, seeds)
        view = experiment_view(report, self.grid(resolved), confidence=confidence)
        empirical: Dict[str, Dict[str, float]] = {name: {} for name in _ABLATION_FEATURES}
        empirical_ci: Dict[str, Dict[str, Tuple[float, float]]] = {
            name: {} for name in _ABLATION_FEATURES
        }
        has_ci = False
        result_confidence: Optional[float] = None
        for family in config.families:
            cell = view[self.point_key(family)]
            cell_ci = getattr(cell, "detection_rate_ci", None)
            for name in _ABLATION_FEATURES:
                empirical[name][family] = cell.empirical_detection_rate[name][
                    config.sample_size
                ]
                if cell_ci is not None:
                    empirical_ci[name][family] = cell_ci[name][config.sample_size]
                    has_ci = True
                    result_confidence = getattr(cell, "confidence", None)
        return VitFamilyAblationResult(
            config=config,
            empirical_detection_rate=empirical,
            empirical_ci=empirical_ci if has_ci else None,
            n_seeds=len(resolved),
            confidence=result_confidence,
        )


__all__ = [
    "EstimatorAblationConfig",
    "EstimatorAblationExperiment",
    "EstimatorAblationResult",
    "TapAblationConfig",
    "TapAblationExperiment",
    "TapAblationResult",
    "VitFamilyAblationConfig",
    "VitFamilyAblationExperiment",
    "VitFamilyAblationResult",
]
