"""Shared machinery for the figure experiments.

The central primitive is :func:`collect_labelled_intervals`: given a padding
policy, the two (or more) candidate payload rates and a description of the
unprotected path, produce one long labelled PIAT capture per payload rate —
the raw material for both off-line training and run-time classification.

Three collection modes trade fidelity against run time:

``simulation``
    Full event-driven simulation: Poisson payload source → sender gateway
    (timer + interrupt disturbance) → chain of FIFO routers with cross
    traffic → tap.  This is the closest analogue of the paper's testbed.

``hybrid``
    The gateway is simulated event-by-event (so the payload-dependent jitter
    is mechanistic, not assumed), but the network is applied analytically:
    each captured packet receives an independent queueing delay drawn from a
    normal distribution whose variance comes from the M/D/1 model of
    :mod:`repro.network.delay_models`.  Used for the 24-hour, 15-hop WAN
    runs, where full simulation would take hours of CPU for no change in the
    measured shape.

``analytic``
    PIATs are drawn directly from the calibrated Gaussian model
    (:class:`repro.core.model.GaussianPIATModel`).  Fastest; used in unit
    tests and quick what-if runs.

A note on the payload process: the experiments drive the gateway with
**Poisson** payload at the configured rate rather than a perfectly periodic
source.  A perfectly periodic payload whose period is an exact multiple of
the padding timer's period can phase-lock with the timer, in which case the
NIC interrupts always fall just after the padding interrupt and never delay
it — an artefact of idealised simulation that does not survive contact with
real clocks.  Poisson arrivals match the independence assumption of the
analytical model and of the paper's testbed traffic generator.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

import numpy as np

from repro.adversary.tap import Tap
from repro.core.model import GaussianPIATModel
from repro.exceptions import ConfigurationError
from repro.network.delay_models import path_piat_variance
from repro.network.path import UnprotectedPath
from repro.network.crosstraffic import cross_traffic_rate_for_utilization
from repro.padding.disturbance import InterruptDisturbance
from repro.padding.gateway import SenderGateway
from repro.padding.policies import PaddingPolicy, cit_policy
from repro.padding.receiver import ReceiverGateway
from repro.sim.engine import Simulator
from repro.sim.kernel import simulate_padded_capture
from repro.sim.random import RandomStreams
from repro.traffic.sources import PoissonSource
from repro.units import (
    PAPER_HIGH_RATE_PPS,
    PAPER_LOW_RATE_PPS,
    PAPER_PACKET_SIZE_BYTES,
)


def resolve_seeds(default_seed, seeds=None):
    """Normalise an experiment's ``seeds`` argument to a tuple of ints.

    ``None`` (or an empty sequence) keeps the historical single-seed
    behaviour: the experiment runs at its configured master seed, cell keys
    stay bare, and reports are byte-identical to the one-seed-per-cell
    layout.  A sequence of two or more seeds switches the experiment to the
    multi-seed grid (``@seed=N`` cell keys, aggregated results).
    """
    if seeds is None:
        return (int(default_seed),)
    resolved = tuple(int(s) for s in seeds)
    if not resolved:
        return (int(default_seed),)
    if len(set(resolved)) != len(resolved):
        raise ConfigurationError(f"duplicate seeds in {resolved!r}")
    return resolved


class CollectionMode(str, enum.Enum):
    """How labelled PIAT captures are produced."""

    SIMULATION = "simulation"
    HYBRID = "hybrid"
    ANALYTIC = "analytic"


@dataclass(frozen=True)
class ScenarioConfig:
    """One padded-link scenario: policy, payload rates and tap environment.

    Attributes
    ----------
    policy:
        Padding policy at the sender gateway.
    low_rate_pps, high_rate_pps:
        The candidate payload rates the adversary must distinguish.
    disturbance:
        Gateway interrupt-disturbance model.
    n_hops:
        Number of routers between the gateway and the adversary's tap.
    link_rate_bps:
        Output-link rate of each router.
    cross_utilization:
        Total utilization (padded + cross) of each router's output link.
    packet_size_bytes:
        Constant packet size on the padded link.
    warmup_time:
        Simulated seconds discarded at the start of every capture.
    """

    policy: PaddingPolicy = field(default_factory=cit_policy)
    low_rate_pps: float = PAPER_LOW_RATE_PPS
    high_rate_pps: float = PAPER_HIGH_RATE_PPS
    disturbance: InterruptDisturbance = field(default_factory=InterruptDisturbance)
    n_hops: int = 0
    link_rate_bps: float = 80e6
    cross_utilization: float = 0.0
    packet_size_bytes: int = PAPER_PACKET_SIZE_BYTES
    warmup_time: float = 2.0

    def __post_init__(self) -> None:
        if self.high_rate_pps <= self.low_rate_pps:
            raise ConfigurationError(
                f"high_rate_pps={self.high_rate_pps!r} must exceed "
                f"low_rate_pps={self.low_rate_pps!r}"
            )
        if self.high_rate_pps > self.policy.padded_rate_pps:
            raise ConfigurationError(
                f"high_rate_pps={self.high_rate_pps!r} exceeds the padded rate "
                f"{self.policy.padded_rate_pps!r} pps of policy {self.policy.name!r} "
                f"(1/mean_interval must cover the highest payload rate)"
            )
        if self.n_hops < 0:
            raise ConfigurationError(f"n_hops={self.n_hops!r} must be >= 0")
        if not 0.0 <= self.cross_utilization < 1.0:
            raise ConfigurationError(
                f"cross_utilization={self.cross_utilization!r} must lie in [0, 1)"
            )
        if self.cross_utilization > 0.0 and self.n_hops == 0:
            raise ConfigurationError(
                f"cross_utilization={self.cross_utilization!r} > 0 requires at least "
                f"one router hop to carry the cross traffic, got n_hops={self.n_hops!r}"
            )
        if self.warmup_time < 0.0:
            raise ConfigurationError(f"warmup_time={self.warmup_time!r} must be >= 0")

    # ------------------------------------------------------------- utilities
    @property
    def rate_labels(self) -> Dict[str, float]:
        """Mapping from class label to payload rate in pps."""
        return {"low": self.low_rate_pps, "high": self.high_rate_pps}

    @property
    def hop_service_time(self) -> float:
        """Per-hop serialisation time of one padded packet."""
        return self.packet_size_bytes * 8.0 / self.link_rate_bps

    def with_cross_utilization(self, utilization: float) -> "ScenarioConfig":
        """Copy of this scenario at a different shared-link utilization."""
        return replace(self, cross_utilization=utilization)

    def with_policy(self, policy: PaddingPolicy) -> "ScenarioConfig":
        """Copy of this scenario under a different padding policy."""
        return replace(self, policy=policy)

    def with_hops(
        self, n_hops: int, link_rate_bps: Optional[float] = None
    ) -> "ScenarioConfig":
        """Copy of this scenario with a different path length (and link rate)."""
        if link_rate_bps is None:
            return replace(self, n_hops=n_hops)
        return replace(self, n_hops=n_hops, link_rate_bps=link_rate_bps)

    def net_piat_variance(self) -> float:
        """Analytic ``sigma_net^2`` of the path between gateway and tap."""
        if self.n_hops == 0 or self.cross_utilization == 0.0:
            return 0.0
        return path_piat_variance(
            [self.cross_utilization] * self.n_hops,
            [self.hop_service_time] * self.n_hops,
            model="md1",
        )

    def gaussian_model(self) -> GaussianPIATModel:
        """The calibrated analytic PIAT model for this scenario."""
        return GaussianPIATModel.from_components(
            gw_variance_low=self.disturbance.piat_variance(self.low_rate_pps),
            gw_variance_high=self.disturbance.piat_variance(self.high_rate_pps),
            timer_variance=self.policy.timer_variance,
            net_variance=self.net_piat_variance(),
            tau=self.policy.mean_interval,
        )

    def variance_ratio(self) -> float:
        """The predicted ``r`` for this scenario."""
        return self.gaussian_model().variance_ratio


@dataclass
class PaddedStreamCapture:
    """Labelled PIAT captures plus the scenario they came from."""

    scenario: ScenarioConfig
    mode: CollectionMode
    intervals: Dict[str, np.ndarray]

    def measured_variance_ratio(self) -> float:
        """Empirical ``r`` from the captured intervals."""
        low = float(np.var(self.intervals["low"], ddof=1))
        high = float(np.var(self.intervals["high"], ddof=1))
        if low <= 0.0:
            raise ConfigurationError("low-rate capture has zero variance")
        return high / low

    def measured_means(self) -> Dict[str, float]:
        """Empirical PIAT means per class (should all equal ``tau``)."""
        return {label: float(np.mean(values)) for label, values in self.intervals.items()}


# --------------------------------------------------------------------------- collection
#: Environment variable selecting the capture kernel: ``auto`` (default,
#: vectorized whenever eligible), ``vectorized`` (strict — error if a capture
#: cannot take the fast path) or ``event`` (always replay the event loop; the
#: benchmark harness uses this as its scalar baseline).
KERNEL_ENV_VAR = "REPRO_SIM_KERNEL"

KERNEL_MODES = ("auto", "vectorized", "event")


def resolve_kernel_mode(kernel: Optional[str] = None) -> str:
    """Normalise the capture-kernel selection (argument beats environment)."""
    mode = kernel if kernel is not None else os.environ.get(KERNEL_ENV_VAR, "auto")
    mode = str(mode).strip().lower()
    if mode not in KERNEL_MODES:
        raise ConfigurationError(
            f"kernel={mode!r} is not a capture kernel; choose one of {KERNEL_MODES} "
            f"(set explicitly or via ${KERNEL_ENV_VAR})"
        )
    return mode


def vectorized_capture_eligible(scenario: ScenarioConfig, with_network: bool) -> bool:
    """Whether a capture can take the vectorized kernel without changing output.

    The closed-form replay covers the no-network gateway pipeline (hybrid
    captures and zero-hop simulations) with the standard
    :class:`InterruptDisturbance` (or none).  Anything the kernel's
    equivalence proof does not cover — routed paths with cross traffic,
    disturbance subclasses with overridden sampling — falls back to the
    event engine.
    """
    if with_network and scenario.n_hops > 0:
        return False
    disturbance = scenario.disturbance
    if disturbance is not None and type(disturbance) is not InterruptDisturbance:
        return False
    return True


def simulate_gateway_capture(
    scenario: ScenarioConfig,
    payload_rate_pps: float,
    n_intervals: int,
    streams: RandomStreams,
    label: str,
    with_network: bool,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Simulate one payload rate's padded capture and return tap intervals.

    Uses the vectorized closed-form kernel (:mod:`repro.sim.kernel`) whenever
    the capture is eligible, falling back to the event engine otherwise; the
    two produce byte-identical captures, so callers cannot observe which path
    ran.  ``kernel`` (or the ``REPRO_SIM_KERNEL`` environment variable)
    forces a specific path — ``event`` is the benchmark harness's scalar
    baseline, ``vectorized`` is the strict mode used in equivalence tests.
    """
    mode = resolve_kernel_mode(kernel)
    eligible = vectorized_capture_eligible(scenario, with_network)
    if mode == "vectorized" and not eligible:
        raise ConfigurationError(
            f"kernel='vectorized' requested but the capture for class {label!r} is "
            f"not eligible (networked path or non-standard disturbance)"
        )
    # Enough simulated time to capture warmup + the requested intervals, with
    # a small margin for the packets still in flight across the path.
    duration = scenario.warmup_time + (n_intervals + 20) * scenario.policy.mean_interval + 0.5

    if eligible and mode != "event":
        disturbance = scenario.disturbance
        stamps = simulate_padded_capture(
            interval_generator=scenario.policy.make_timer(),
            payload_rate_pps=payload_rate_pps,
            duration=duration,
            timer_rng=streams.get(f"gateway-{label}"),
            payload_rng=streams.get(f"payload-{label}"),
            jitter_rng=streams.get(f"gateway-jitter-{label}"),
            blocking_rng=streams.get(f"gateway-blocking-{label}"),
            base_jitter_std=disturbance.base_jitter_std if disturbance else 0.0,
            blocking_window=disturbance.blocking_window if disturbance else 0.0,
            blocking_delay_mean=disturbance.blocking_delay_mean if disturbance else 0.0,
        )
        stamps = stamps[stamps >= scenario.warmup_time]
        intervals = np.diff(stamps) if stamps.size >= 2 else np.empty(0, dtype=float)
        if intervals.size < n_intervals:
            raise ConfigurationError(
                f"capture for class {label!r} produced only {intervals.size} intervals; "
                f"{n_intervals} requested (increase the horizon margin)"
            )
        return intervals[:n_intervals]

    return _simulate_gateway_capture_events(
        scenario, payload_rate_pps, n_intervals, streams, label, with_network, duration
    )


def _simulate_gateway_capture_events(
    scenario: ScenarioConfig,
    payload_rate_pps: float,
    n_intervals: int,
    streams: RandomStreams,
    label: str,
    with_network: bool,
    duration: float,
) -> np.ndarray:
    """The event-engine capture path (reference implementation)."""
    simulator = Simulator()
    tap = Tap(simulator, name=f"tap-{label}")
    receiver = ReceiverGateway(simulator)

    def exit_sink(packet) -> None:
        tap.observe(packet)
        receiver.accept(packet)

    if with_network and scenario.n_hops > 0:
        path = UnprotectedPath(
            simulator,
            exit_sink=exit_sink,
            n_hops=scenario.n_hops,
            link_rate_bps=scenario.link_rate_bps,
            packet_size_bytes=scenario.packet_size_bytes,
            name=f"path-{label}",
        )
        if scenario.cross_utilization > 0.0:
            cross_rate = cross_traffic_rate_for_utilization(
                scenario.cross_utilization,
                scenario.link_rate_bps,
                scenario.packet_size_bytes,
                padded_rate_pps=scenario.policy.padded_rate_pps,
            )
            for hop in range(scenario.n_hops):
                path.attach_cross_traffic(
                    hop, cross_rate, rng=streams.get(f"cross-{label}-hop{hop}")
                )
            path.start_cross_traffic()
        gateway_output = path.entry
    else:
        gateway_output = exit_sink

    gateway = SenderGateway(
        simulator,
        interval_generator=scenario.policy.make_timer(),
        output=gateway_output,
        rng=streams.get(f"gateway-{label}"),
        jitter_rng=streams.get(f"gateway-jitter-{label}"),
        blocking_rng=streams.get(f"gateway-blocking-{label}"),
        disturbance=scenario.disturbance,
        dummy_size_bytes=scenario.packet_size_bytes,
    )
    source = PoissonSource(
        simulator,
        gateway.accept_payload,
        rate=payload_rate_pps,
        rng=streams.get(f"payload-{label}"),
        packet_size_bytes=scenario.packet_size_bytes,
    )
    gateway.start()
    source.start()
    simulator.run(until=duration)
    gateway.stop()
    source.stop()

    intervals = tap.intervals(since=scenario.warmup_time)
    if intervals.size < n_intervals:
        raise ConfigurationError(
            f"capture for class {label!r} produced only {intervals.size} intervals; "
            f"{n_intervals} requested (increase the horizon margin)"
        )
    return intervals[:n_intervals]


def apply_analytic_network_noise(
    intervals: np.ndarray, scenario: ScenarioConfig, rng: np.random.Generator
) -> np.ndarray:
    """Add per-packet M/D/1 queueing delays to a gateway-egress capture.

    Each packet's path delay is independent; the PIAT perturbation is the
    difference of consecutive delays, which reproduces the ``2 Var(W)`` PIAT
    variance of the analytic model.
    """
    net_variance = scenario.net_piat_variance()
    if net_variance == 0.0:
        return intervals
    # net_variance is the PIAT variance (2 Var(W)); per-packet delays need Var(W).
    per_packet_std = float(np.sqrt(net_variance / 2.0))
    timestamps = np.concatenate(([0.0], np.cumsum(intervals)))
    delays = rng.normal(0.0, per_packet_std, size=timestamps.size)
    perturbed = np.sort(timestamps + delays)
    return np.diff(perturbed)


def collect_labelled_intervals(
    scenario: ScenarioConfig,
    n_intervals_per_class: int,
    mode: CollectionMode = CollectionMode.SIMULATION,
    seed: int = 0,
    seed_offset: str = "train",
    noise_offset: Optional[str] = None,
) -> PaddedStreamCapture:
    """Produce one labelled PIAT capture per payload rate.

    Parameters
    ----------
    scenario:
        The padded-link scenario.
    n_intervals_per_class:
        Length of each class's capture.
    mode:
        Collection mode (see module docstring).
    seed:
        Master seed; the same seed and scenario give identical captures.
    seed_offset:
        Extra tag mixed into the stream names so that training and test
        captures of one experiment are independent ("train" / "test").
    noise_offset:
        Optional tag for the hybrid mode's network-noise streams, when they
        must be salted differently from the gateway streams — e.g. grid
        points that share one gateway capture but need statistically
        independent per-point noise.  Defaults to ``seed_offset``.
    """
    if n_intervals_per_class < 2:
        raise ConfigurationError(
            f"n_intervals_per_class={n_intervals_per_class!r} must be >= 2"
        )
    try:
        mode = CollectionMode(mode)
    except ValueError:
        valid = ", ".join(repr(m.value) for m in CollectionMode)
        raise ConfigurationError(
            f"mode={mode!r} is not a collection mode; choose one of {valid}"
        ) from None
    streams = RandomStreams(seed=seed)
    intervals: Dict[str, np.ndarray] = {}
    if mode is CollectionMode.ANALYTIC:
        model = scenario.gaussian_model()
        for label in scenario.rate_labels:
            rng = streams.get(f"analytic-{seed_offset}-{label}")
            intervals[label] = model.sample_intervals(label, n_intervals_per_class, rng=rng)
    elif mode is CollectionMode.SIMULATION:
        for label, rate in scenario.rate_labels.items():
            intervals[label] = simulate_gateway_capture(
                scenario,
                rate,
                n_intervals_per_class,
                streams,
                label=f"{seed_offset}-{label}",
                with_network=True,
            )
    else:  # HYBRID
        noise_tag = noise_offset if noise_offset is not None else seed_offset
        for label, rate in scenario.rate_labels.items():
            gateway_intervals = simulate_gateway_capture(
                scenario,
                rate,
                n_intervals_per_class + 1,
                streams,
                label=f"{seed_offset}-{label}",
                with_network=False,
            )
            noisy = apply_analytic_network_noise(
                gateway_intervals, scenario, streams.get(f"net-noise-{noise_tag}-{label}")
            )
            intervals[label] = noisy[:n_intervals_per_class]
    return PaddedStreamCapture(scenario=scenario, mode=mode, intervals=intervals)


def multiclass_rate_labels(rate_classes: "Sequence[float]") -> Dict[str, float]:
    """Mapping from class label to payload rate for an arbitrary rate mix.

    Labels are the ``%g``-formatted rates (``2``, ``5.5``, ``10``) — compact,
    unambiguous, and numerically sortable by
    :func:`repro.adversary.multiclass.sorted_labels`.
    """
    labels = {f"{float(rate):g}": float(rate) for rate in rate_classes}
    if len(labels) != len(tuple(rate_classes)):
        raise ConfigurationError(
            f"rate_classes={tuple(rate_classes)!r} contain rates that collide "
            f"under the %g label format"
        )
    return labels


def collect_multiclass_intervals(
    scenario: ScenarioConfig,
    rate_classes: "Sequence[float]",
    n_intervals_per_class: int,
    seed: int = 0,
    seed_offset: str = "train",
) -> PaddedStreamCapture:
    """Analytic labelled captures for an arbitrary number of payload rates.

    The Section 6 extension of :func:`collect_labelled_intervals`: one
    Gaussian PIAT capture per rate class, with the per-class variance built
    from the same components the calibrated two-rate model uses —
    ``sigma_r^2 = timer variance + gateway disturbance variance at rate r +
    analytic network variance``.  Streams are named exactly like the binary
    analytic mode (``analytic-<offset>-<label>``), so a three-class capture
    whose extreme rates match a binary scenario draws the extreme classes
    from *different* streams only via their labels, never via call order.
    """
    if n_intervals_per_class < 2:
        raise ConfigurationError(
            f"n_intervals_per_class={n_intervals_per_class!r} must be >= 2"
        )
    labels = multiclass_rate_labels(rate_classes)
    streams = RandomStreams(seed=seed)
    tau = scenario.policy.mean_interval
    base_variance = scenario.policy.timer_variance + scenario.net_piat_variance()
    intervals: Dict[str, np.ndarray] = {}
    for label, rate in labels.items():
        sigma = float(np.sqrt(base_variance + scenario.disturbance.piat_variance(rate)))
        rng = streams.get(f"analytic-{seed_offset}-{label}")
        draws = rng.normal(tau, sigma, size=n_intervals_per_class)
        # PIATs are strictly positive; clip exactly like GaussianPIATModel.
        intervals[label] = np.maximum(draws, 1e-9)
    return PaddedStreamCapture(
        scenario=scenario, mode=CollectionMode.ANALYTIC, intervals=intervals
    )


__all__ = [
    "CollectionMode",
    "KERNEL_ENV_VAR",
    "KERNEL_MODES",
    "resolve_kernel_mode",
    "resolve_seeds",
    "vectorized_capture_eligible",
    "simulate_gateway_capture",
    "ScenarioConfig",
    "PaddedStreamCapture",
    "collect_labelled_intervals",
    "collect_multiclass_intervals",
    "multiclass_rate_labels",
    "apply_analytic_network_noise",
]
