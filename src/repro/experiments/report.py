"""Plain-text reporting helpers shared by the experiments and benchmarks."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.exceptions import AnalysisError


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table.

    Numbers are formatted with four significant digits; everything else with
    ``str``.  Used by the experiment ``to_text`` methods and by the benchmark
    harness when it prints the regenerated figure data.
    """
    header_list = [str(h) for h in headers]
    if not header_list:
        raise AnalysisError("a table needs at least one column")
    formatted_rows: List[List[str]] = []
    for row in rows:
        cells = list(row)
        if len(cells) != len(header_list):
            raise AnalysisError(
                f"row has {len(cells)} cells but the table has {len(header_list)} columns"
            )
        formatted_rows.append([_format_cell(cell) for cell in cells])
    widths = [len(h) for h in header_list]
    for row in formatted_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header_list)),
        "  ".join("-" * widths[i] for i in range(len(header_list))),
    ]
    for row in formatted_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_interval(bounds) -> str:
    """Render a confidence interval as ``[lower, upper]`` (``-`` when absent).

    Used by the experiment reports for the per-grid-point bootstrap bands of
    multi-seed sweeps; a missing interval (single-seed point) renders as a
    dash so the column stays aligned.
    """
    if bounds is None:
        return "-"
    lower, upper = bounds
    return f"[{_format_cell(float(lower))}, {_format_cell(float(upper))}]"


def seed_suffix(n_seeds: int) -> str:
    """Section-title suffix for aggregated multi-seed reports."""
    return f" (mean of {n_seeds} seeds)" if n_seeds > 1 else ""


def with_ci_column(headers, rows, index, confidence, bounds_for):
    """Splice a bootstrap-CI column into a table at position ``index``.

    ``bounds_for`` maps each original row tuple to its ``(lower, upper)``
    interval (or ``None``).  Shared by the figure reports so the CI-column
    rendering cannot drift between figures.
    """
    new_headers = list(headers)
    new_headers.insert(index, f"ci{confidence:.0%}")
    new_rows = []
    for row in rows:
        cells = list(row)
        cells.insert(index, format_interval(bounds_for(row)))
        new_rows.append(tuple(cells))
    return new_headers, new_rows


def render_experiment_report(title: str, sections: Sequence[tuple]) -> str:
    """Assemble a multi-section text report.

    ``sections`` is a sequence of ``(section_title, body_text)`` pairs; the
    bodies are typically tables from :func:`format_table`.
    """
    if not title:
        raise AnalysisError("report title must be non-empty")
    lines = [title, "=" * len(title), ""]
    for section_title, body in sections:
        lines.append(str(section_title))
        lines.append("-" * len(str(section_title)))
        lines.append(str(body))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


__all__ = [
    "format_interval",
    "format_table",
    "render_experiment_report",
    "seed_suffix",
    "with_ci_column",
]
