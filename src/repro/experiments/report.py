"""Plain-text reporting helpers shared by the experiments and benchmarks."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.exceptions import AnalysisError


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table.

    Numbers are formatted with four significant digits; everything else with
    ``str``.  Used by the experiment ``to_text`` methods and by the benchmark
    harness when it prints the regenerated figure data.
    """
    header_list = [str(h) for h in headers]
    if not header_list:
        raise AnalysisError("a table needs at least one column")
    formatted_rows: List[List[str]] = []
    for row in rows:
        cells = list(row)
        if len(cells) != len(header_list):
            raise AnalysisError(
                f"row has {len(cells)} cells but the table has {len(header_list)} columns"
            )
        formatted_rows.append([_format_cell(cell) for cell in cells])
    widths = [len(h) for h in header_list]
    for row in formatted_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header_list)),
        "  ".join("-" * widths[i] for i in range(len(header_list))),
    ]
    for row in formatted_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_experiment_report(title: str, sections: Sequence[tuple]) -> str:
    """Assemble a multi-section text report.

    ``sections`` is a sequence of ``(section_title, body_text)`` pairs; the
    bodies are typically tables from :func:`format_table`.
    """
    if not title:
        raise AnalysisError("report title must be non-empty")
    lines = [title, "=" * len(title), ""]
    for section_title, body in sections:
        lines.append(str(section_title))
        lines.append("-" * len(str(section_title)))
        lines.append(str(body))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


__all__ = ["format_table", "render_experiment_report"]
