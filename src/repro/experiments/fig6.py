"""Figure 6: CIT padding behind a shared router with cross traffic.

The laboratory setup of Figure 3: the padded stream and a controllable cross
flow share one router's outgoing link, and the adversary taps that link's far
end.  The x-axis is the shared link's utilization, the y-axis the detection
rate at a fixed sample size (1000 in the paper).  Expected shape: detection
decreases with utilization because queueing noise (``sigma_net``) dilutes the
gateway's payload-dependent jitter; sample entropy degrades more gracefully
than sample variance (outlier sensitivity); the sample mean stays near 50 %.

The utilization sweep is the *utilization axis* of a
:class:`~repro.runner.grid.GridSpec` product; running it over several seeds
reports mean ± bootstrap CI per grid point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.theorems import (
    detection_rate_entropy,
    detection_rate_mean,
    detection_rate_variance,
)
from repro.exceptions import ConfigurationError
from repro.experiments.base import CollectionMode, ScenarioConfig, resolve_seeds
from repro.experiments.report import (
    format_table,
    render_experiment_report,
    seed_suffix,
    with_ci_column,
)
from repro.padding.policies import cit_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.runner import GridSpec, SweepCell, SweepRunner


def _lab_scenario() -> ScenarioConfig:
    """The laboratory scenario: CIT 10 ms, one shared 80 Mbit/s router hop."""
    return ScenarioConfig(policy=cit_policy(), n_hops=1, link_rate_bps=80e6)


@dataclass(frozen=True)
class Fig6Config:
    """Configuration for the Figure 6 reproduction.

    Attributes
    ----------
    utilizations:
        Total shared-link utilizations swept on the x-axis.
    sample_size:
        PIAT sample size used by the adversary (1000 in the paper).
    trials:
        Training and test samples per class per utilization point.
    """

    utilizations: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5)
    sample_size: int = 1000
    trials: int = 20
    mode: CollectionMode = CollectionMode.SIMULATION
    seed: int = 2003
    scenario: ScenarioConfig = field(default_factory=_lab_scenario)
    entropy_bin_width: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.utilizations:
            raise ConfigurationError("utilizations must be non-empty")
        if any(not 0.0 <= u < 1.0 for u in self.utilizations):
            raise ConfigurationError("utilizations must lie in [0, 1)")
        if self.sample_size < 2 or self.trials < 2:
            raise ConfigurationError("sample_size and trials must be >= 2")
        if self.scenario.n_hops < 1:
            raise ConfigurationError("the Figure 6 scenario needs at least one router hop")


@dataclass
class Fig6Result:
    """Detection rate versus shared-link utilization."""

    config: Fig6Config
    empirical_detection_rate: Dict[str, Dict[float, float]]
    theoretical_detection_rate: Dict[str, Dict[float, float]]
    variance_ratios: Dict[float, float]
    measured_utilizations: Dict[float, float]
    empirical_ci: Optional[Dict[str, Dict[float, Tuple[float, float]]]] = None
    n_seeds: int = 1
    confidence: Optional[float] = None

    def rows(self):
        """(feature, target utilization, r, empirical, theoretical) rows."""
        for feature, by_util in sorted(self.empirical_detection_rate.items()):
            for utilization, empirical in sorted(by_util.items()):
                yield (
                    feature,
                    utilization,
                    self.variance_ratios[utilization],
                    empirical,
                    self.theoretical_detection_rate[feature][utilization],
                )

    def to_text(self) -> str:
        title = (
            f"Figure 6: detection rate vs link utilization (sample size {self.config.sample_size})"
            + seed_suffix(self.n_seeds)
        )
        headers = ["feature", "link utilization", "r", "empirical", "theorem"]
        rows = self.rows()
        if self.empirical_ci is not None:
            headers, rows = with_ci_column(
                headers,
                rows,
                4,
                self.confidence,
                lambda row: self.empirical_ci.get(row[0], {}).get(row[1]),
            )
        sections = [(title, format_table(headers, rows))]
        return render_experiment_report(
            "Figure 6 — CIT padding with laboratory cross traffic", sections
        )


class Fig6Experiment:
    """Runs the Figure 6 reproduction."""

    #: Registry name; also the prefix of every cell key this experiment emits.
    name = "fig6"

    def __init__(self, config: Optional[Fig6Config] = None) -> None:
        self.config = config if config is not None else Fig6Config()

    def describe(self) -> str:
        """One-line summary shown by ``repro list`` and ``Experiment.describe``."""
        return (
            "Figure 6: CIT padding behind a shared router — detection rate vs the "
            "shared link's cross-traffic utilization"
        )

    @staticmethod
    def point_key(utilization: float) -> str:
        """The grid-point key of one utilization value.

        Coerced to float first: ``GridSpec.product`` normalises the
        utilization axis the same way, so e.g. an integer ``0`` in the config
        and the generated cell key agree.
        """
        return f"fig6/utilization={float(utilization)!r}"

    def grid(self, seeds: Optional[Sequence[int]] = None) -> "GridSpec":
        """The utilization sweep as a grid product."""
        from repro.runner import GridSpec

        config = self.config
        return GridSpec.product(
            "fig6",
            config.scenario,
            utilizations=config.utilizations,
            seeds=resolve_seeds(config.seed, seeds),
            sample_sizes=(config.sample_size,),
            trials=config.trials,
            mode=config.mode,
            entropy_bin_width=config.entropy_bin_width,
        )

    def cells(self, seeds: Optional[Sequence[int]] = None) -> "List[SweepCell]":
        """One sweep-runner cell per (utilization, seed) grid point."""
        return self.grid(seeds).cells()

    def run(
        self,
        runner: "Optional[SweepRunner]" = None,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> Fig6Result:
        from repro.runner import SweepRunner

        runner = runner if runner is not None else SweepRunner()
        return self.assemble(runner.run(self.cells(seeds)), seeds=seeds, confidence=confidence)

    def assemble(
        self,
        report,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> Fig6Result:
        """Build the figure result from a sweep report containing this grid's cells."""
        from repro.runner import DEFAULT_FEATURES, experiment_view

        config = self.config
        resolved = resolve_seeds(config.seed, seeds)
        view = experiment_view(report, self.grid(resolved), confidence=confidence)
        empirical: Dict[str, Dict[float, float]] = {name: {} for name in DEFAULT_FEATURES}
        theoretical: Dict[str, Dict[float, float]] = {name: {} for name in DEFAULT_FEATURES}
        empirical_ci: Dict[str, Dict[float, Tuple[float, float]]] = {
            name: {} for name in DEFAULT_FEATURES
        }
        has_ci = False
        result_confidence: Optional[float] = None
        ratios: Dict[float, float] = {}
        measured_utils: Dict[float, float] = {}
        for utilization in config.utilizations:
            cell = view[self.point_key(utilization)]
            cell_ci = getattr(cell, "detection_rate_ci", None)
            scenario = config.scenario.with_cross_utilization(utilization)
            ratios[utilization] = scenario.variance_ratio()
            # The padded stream's rate never changes, so the realised padded +
            # cross load equals the target by construction; record it for the
            # report anyway (useful when a caller overrides the link rate).
            measured_utils[utilization] = utilization
            for name in empirical:
                empirical[name][utilization] = cell.empirical_detection_rate[name][
                    config.sample_size
                ]
                if cell_ci is not None:
                    empirical_ci[name][utilization] = cell_ci[name][config.sample_size]
                    has_ci = True
                    result_confidence = getattr(cell, "confidence", None)
                if name == "mean":
                    theoretical[name][utilization] = detection_rate_mean(ratios[utilization])
                elif name == "variance":
                    theoretical[name][utilization] = detection_rate_variance(
                        ratios[utilization], config.sample_size
                    )
                else:
                    theoretical[name][utilization] = detection_rate_entropy(
                        ratios[utilization], config.sample_size
                    )
        return Fig6Result(
            config=config,
            empirical_detection_rate=empirical,
            theoretical_detection_rate=theoretical,
            variance_ratios=ratios,
            measured_utilizations=measured_utils,
            empirical_ci=empirical_ci if has_ci else None,
            n_seeds=len(resolved),
            confidence=result_confidence,
        )


__all__ = ["Fig6Config", "Fig6Experiment", "Fig6Result"]
