"""Figure 4: CIT padding without cross traffic.

Two sub-figures are reproduced:

* **Figure 4(a)** — the conditional PIAT distributions of the padded stream
  under the low (10 pps) and high (40 pps) payload rates: same mean, high
  rate slightly wider, both approximately normal.
* **Figure 4(b)** — detection rate versus sample size for the three feature
  statistics, empirical (KDE Bayes classifier on captured samples) against
  the closed-form predictions of Theorems 1–3 and the exact Bayes rates.

The adversary taps right at the sender gateway's output (zero cross traffic),
the best case for the attacker and hence the worst case for the defender.

The experiment's grid is a single :class:`~repro.runner.grid.GridSpec` point;
running it over several master seeds (``seeds=...``) reports each detection
rate as the mean across seeds with an optional bootstrap confidence interval,
which is how the repeated-capture uncertainty the paper's single collected
run cannot express is quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.exact import detection_rate_mean_exact, detection_rate_variance_exact
from repro.core.theorems import (
    detection_rate_entropy,
    detection_rate_mean,
    detection_rate_variance,
)
from repro.exceptions import ConfigurationError
from repro.experiments.base import CollectionMode, ScenarioConfig, resolve_seeds
from repro.experiments.report import (
    format_interval,
    format_table,
    render_experiment_report,
    seed_suffix,
    with_ci_column,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.runner import GridSpec, SweepCell, SweepRunner


@dataclass(frozen=True)
class Fig4Config:
    """Configuration for the Figure 4 reproduction.

    Attributes
    ----------
    sample_sizes:
        Sample sizes (x-axis of Figure 4(b)).
    trials:
        Number of training samples *and* number of test samples per class at
        each sample size.
    mode:
        Capture collection mode.
    seed:
        Master seed for reproducibility.
    scenario:
        Padded-link scenario; the default is the paper's setup (CIT 10 ms,
        tap at the gateway output, no cross traffic).
    entropy_bin_width:
        Histogram bin width used by the sample-entropy feature.
    """

    sample_sizes: Tuple[int, ...] = (10, 50, 100, 200, 500, 1000, 2000)
    trials: int = 30
    mode: CollectionMode = CollectionMode.SIMULATION
    seed: int = 2003
    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    entropy_bin_width: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.sample_sizes:
            raise ConfigurationError("sample_sizes must be non-empty")
        if any(n < 2 for n in self.sample_sizes):
            raise ConfigurationError("every sample size must be >= 2")
        if self.trials < 2:
            raise ConfigurationError("trials must be >= 2")

    @property
    def intervals_per_class(self) -> int:
        """Capture length needed to form ``trials`` samples of the largest size."""
        return max(self.sample_sizes) * self.trials


@dataclass
class Fig4Result:
    """Everything Figure 4 plots, in numeric form.

    ``empirical_ci`` and ``r_measured_ci`` hold per-point bootstrap intervals
    when the experiment ran over several seeds with a confidence level;
    otherwise they are ``None`` and the report renders exactly as the
    single-seed layout always has.
    """

    config: Fig4Config
    r_model: float
    r_measured: float
    piat_stats: Dict[str, Dict[str, float]]
    empirical_detection_rate: Dict[str, Dict[int, float]]
    theoretical_detection_rate: Dict[str, Dict[int, float]]
    exact_detection_rate: Dict[str, Dict[int, float]]
    empirical_ci: Optional[Dict[str, Dict[int, Tuple[float, float]]]] = None
    r_measured_ci: Optional[Tuple[float, float]] = None
    n_seeds: int = 1
    confidence: Optional[float] = None

    def rows(self):
        """Figure 4(b) as rows: (feature, sample size, empirical, theory, exact)."""
        for feature, by_n in sorted(self.empirical_detection_rate.items()):
            for n, empirical in sorted(by_n.items()):
                yield (
                    feature,
                    n,
                    empirical,
                    self.theoretical_detection_rate[feature][n],
                    self.exact_detection_rate[feature][n],
                )

    def to_text(self) -> str:
        """Full text report (both sub-figures)."""
        piat_rows = [
            (
                label,
                stats["mean"],
                stats["std"],
                stats["qq_rms_deviation"],
                stats["looks_normal"],
            )
            for label, stats in sorted(self.piat_stats.items())
        ]
        r_line = f"\n\nvariance ratio r: model={self.r_model:.4f}, measured={self.r_measured:.4f}"
        if self.r_measured_ci is not None:
            r_line += f" ci{self.confidence:.0%}={format_interval(self.r_measured_ci)}"
        headers = ["feature", "sample size", "empirical", "theorem", "exact Bayes"]
        rows_4b = self.rows()
        if self.empirical_ci is not None:
            headers, rows_4b = with_ci_column(
                headers,
                rows_4b,
                3,
                self.confidence,
                lambda row: self.empirical_ci.get(row[0], {}).get(row[1]),
            )
        # Aggregated runs average the per-seed booleans into a fraction; the
        # column header says so instead of printing a float under "bell-shaped".
        bell_header = (
            "bell-shaped (fraction of seeds)" if self.n_seeds > 1 else "bell-shaped"
        )
        sections = [
            (
                "Figure 4(a): padded-traffic PIAT statistics per payload rate"
                + seed_suffix(self.n_seeds),
                format_table(
                    ["payload rate", "mean PIAT (s)", "std PIAT (s)", "QQ deviation", bell_header],
                    piat_rows,
                )
                + r_line,
            ),
            (
                "Figure 4(b): detection rate vs sample size" + seed_suffix(self.n_seeds),
                format_table(headers, rows_4b),
            ),
        ]
        return render_experiment_report("Figure 4 — CIT padding, no cross traffic", sections)


class Fig4Experiment:
    """Runs the Figure 4 reproduction."""

    #: Registry name; also the prefix of every cell key this experiment emits.
    name = "fig4"

    def __init__(self, config: Optional[Fig4Config] = None) -> None:
        self.config = config if config is not None else Fig4Config()

    def describe(self) -> str:
        """One-line summary shown by ``repro list`` and ``Experiment.describe``."""
        return (
            "Figure 4: CIT padding without cross traffic — PIAT statistics per "
            "payload rate and detection rate vs sample size for the three features"
        )

    def grid(self, seeds: Optional[Sequence[int]] = None) -> "GridSpec":
        """The experiment's grid: a single point, fanned out over the seeds.

        Figure 4 sweeps the adversary's sample size over one fixed capture,
        so the grid holds one point per seed; it parallelises against the
        cells of *other* experiments when the CLI's ``sweep`` subcommand runs
        every selected figure's cells through one combined ``runner.run()``.
        """
        from repro.runner import GridSpec

        config = self.config
        return GridSpec.product(
            "fig4",
            config.scenario,
            seeds=resolve_seeds(config.seed, seeds),
            sample_sizes=config.sample_sizes,
            trials=config.trials,
            mode=config.mode,
            entropy_bin_width=config.entropy_bin_width,
            collect_piat_stats=True,
        )

    def cells(self, seeds: Optional[Sequence[int]] = None) -> "List[SweepCell]":
        """The experiment's grid as sweep-runner cells."""
        return self.grid(seeds).cells()

    def run(
        self,
        runner: "Optional[SweepRunner]" = None,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> Fig4Result:
        """Collect captures, run the attack at every sample size, compare with theory."""
        from repro.runner import SweepRunner

        runner = runner if runner is not None else SweepRunner()
        return self.assemble(runner.run(self.cells(seeds)), seeds=seeds, confidence=confidence)

    def assemble(
        self,
        report,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> Fig4Result:
        """Build the figure result from a sweep report containing this grid's cells."""
        from repro.runner import experiment_view

        config = self.config
        resolved = resolve_seeds(config.seed, seeds)
        view = experiment_view(report, self.grid(resolved), confidence=confidence)
        cell = view["fig4"]

        r_model = config.scenario.variance_ratio()
        empirical = cell.empirical_detection_rate
        theoretical: Dict[str, Dict[int, float]] = {name: {} for name in empirical}
        exact: Dict[str, Dict[int, float]] = {name: {} for name in empirical}
        for name in empirical:
            for n in config.sample_sizes:
                if name == "mean":
                    theoretical[name][n] = detection_rate_mean(r_model)
                    exact[name][n] = detection_rate_mean_exact(r_model)
                elif name == "variance":
                    theoretical[name][n] = detection_rate_variance(r_model, n)
                    exact[name][n] = detection_rate_variance_exact(r_model, n)
                else:
                    theoretical[name][n] = detection_rate_entropy(r_model, n)
                    exact[name][n] = detection_rate_variance_exact(r_model, n)
        empirical_ci = getattr(cell, "detection_rate_ci", None)
        return Fig4Result(
            config=config,
            r_model=r_model,
            r_measured=cell.measured_variance_ratio,
            piat_stats=cell.piat_stats,
            empirical_detection_rate=empirical,
            theoretical_detection_rate=theoretical,
            exact_detection_rate=exact,
            empirical_ci=empirical_ci,
            r_measured_ci=getattr(cell, "variance_ratio_ci", None),
            n_seeds=len(resolved),
            confidence=getattr(cell, "confidence", None),
        )


__all__ = ["Fig4Config", "Fig4Experiment", "Fig4Result"]
