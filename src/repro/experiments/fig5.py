"""Figure 5: VIT padding defeats the attack.

* **Figure 5(a)** — empirical detection rate as a function of the timer
  standard deviation ``sigma_T`` at a fixed sample size (2000 in the paper):
  as ``sigma_T`` grows past the gateway's own jitter, the detection rate of
  every feature collapses to the 50 % floor.
* **Figure 5(b)** — the theoretical sample size needed for 99 % detection as
  a function of ``sigma_T`` (from the inverted Theorems 2 and 3): it explodes
  beyond any collectable amount of traffic, e.g. > 1e11 intervals at
  ``sigma_T = 1 ms``.

The ``sigma_T`` sweep is a :class:`~repro.runner.grid.GridSpec` over one
explicit grid point per timer spread (one CIT policy for the 0 point, one VIT
policy per positive value); running it over several seeds reports mean ±
bootstrap CI per grid point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.sample_size import sample_size_vs_sigma_t
from repro.core.theorems import (
    detection_rate_entropy,
    detection_rate_mean,
    detection_rate_variance,
)
from repro.exceptions import ConfigurationError
from repro.experiments.base import CollectionMode, ScenarioConfig, resolve_seeds
from repro.experiments.report import (
    format_table,
    render_experiment_report,
    seed_suffix,
    with_ci_column,
)
from repro.padding.policies import PaddingPolicy, cit_policy, vit_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.runner import GridSpec, SweepCell, SweepRunner


@dataclass(frozen=True)
class Fig5Config:
    """Configuration for the Figure 5 reproduction.

    Attributes
    ----------
    sigma_t_values:
        Timer standard deviations swept on the x-axis (seconds).  0 means CIT
        and serves as the reference point.
    sample_size:
        PIAT sample size used by the adversary (2000 in the paper).
    trials:
        Training and test samples per class per point.
    features:
        Which feature statistics to evaluate empirically.
    target_detection_rate:
        The target used for the Figure 5(b) sample-size curve (0.99).
    sigma_t_curve:
        ``sigma_T`` grid for the theoretical Figure 5(b) curve (defaults to
        a finer grid spanning the empirical sweep).
    """

    sigma_t_values: Tuple[float, ...] = (0.0, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3)
    sample_size: int = 2000
    trials: int = 20
    features: Tuple[str, ...] = ("mean", "variance", "entropy")
    mode: CollectionMode = CollectionMode.SIMULATION
    seed: int = 2003
    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    entropy_bin_width: Optional[float] = None
    target_detection_rate: float = 0.99
    sigma_t_curve: Tuple[float, ...] = (
        1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
    )

    def __post_init__(self) -> None:
        if not self.sigma_t_values:
            raise ConfigurationError("sigma_t_values must be non-empty")
        if any(s < 0.0 for s in self.sigma_t_values):
            raise ConfigurationError("sigma_T values must be >= 0")
        if self.sample_size < 2 or self.trials < 2:
            raise ConfigurationError("sample_size and trials must be >= 2")
        if not self.features:
            raise ConfigurationError("features must be non-empty")
        if not 0.5 < self.target_detection_rate < 1.0:
            raise ConfigurationError("target_detection_rate must lie in (0.5, 1)")

    def policy_for(self, sigma_t: float) -> PaddingPolicy:
        """The padding policy realising the given ``sigma_T``."""
        if sigma_t == 0.0:
            return cit_policy(self.scenario.policy.mean_interval)
        return vit_policy(sigma_t=sigma_t, mean_interval=self.scenario.policy.mean_interval)

    def scenario_for(self, sigma_t: float) -> ScenarioConfig:
        """The scenario with the padding policy set to the given ``sigma_T``."""
        return self.scenario.with_policy(self.policy_for(sigma_t))


@dataclass
class Fig5Result:
    """Numeric content of both Figure 5 panels."""

    config: Fig5Config
    empirical_detection_rate: Dict[str, Dict[float, float]]
    theoretical_detection_rate: Dict[str, Dict[float, float]]
    variance_ratios: Dict[float, float]
    required_sample_for_target: Dict[str, Dict[float, float]]
    empirical_ci: Optional[Dict[str, Dict[float, Tuple[float, float]]]] = None
    n_seeds: int = 1
    confidence: Optional[float] = None

    def rows_panel_a(self):
        """(feature, sigma_T, r, empirical, theoretical) rows."""
        for feature, by_sigma in sorted(self.empirical_detection_rate.items()):
            for sigma_t, empirical in sorted(by_sigma.items()):
                yield (
                    feature,
                    sigma_t,
                    self.variance_ratios[sigma_t],
                    empirical,
                    self.theoretical_detection_rate[feature][sigma_t],
                )

    def rows_panel_b(self):
        """(feature, sigma_T, required sample size) rows."""
        for feature, by_sigma in sorted(self.required_sample_for_target.items()):
            for sigma_t, required in sorted(by_sigma.items()):
                yield (feature, sigma_t, required)

    def to_text(self) -> str:
        title_a = (
            f"Figure 5(a): detection rate vs sigma_T (sample size {self.config.sample_size})"
            + seed_suffix(self.n_seeds)
        )
        headers_a = ["feature", "sigma_T (s)", "r", "empirical", "theorem"]
        rows_a = self.rows_panel_a()
        if self.empirical_ci is not None:
            headers_a, rows_a = with_ci_column(
                headers_a,
                rows_a,
                4,
                self.confidence,
                lambda row: self.empirical_ci.get(row[0], {}).get(row[1]),
            )
        sections = [
            (title_a, format_table(headers_a, rows_a)),
            (
                f"Figure 5(b): sample size for {self.config.target_detection_rate:.0%} detection",
                format_table(["feature", "sigma_T (s)", "required sample"], self.rows_panel_b()),
            ),
        ]
        return render_experiment_report("Figure 5 — VIT padding", sections)


class Fig5Experiment:
    """Runs the Figure 5 reproduction."""

    #: Registry name; also the prefix of every cell key this experiment emits.
    name = "fig5"

    def __init__(self, config: Optional[Fig5Config] = None) -> None:
        self.config = config if config is not None else Fig5Config()

    def describe(self) -> str:
        """One-line summary shown by ``repro list`` and ``Experiment.describe``."""
        return (
            "Figure 5: VIT padding — detection rate vs the timer standard deviation "
            "sigma_T, and the sample size needed for 99% detection"
        )

    @staticmethod
    def point_key(sigma_t: float) -> str:
        """The grid-point key of one ``sigma_T`` value.

        Keyed by the exact value, not the policy display name — policy names
        round ``sigma_T`` to three significant digits, which would collide
        for fine-grained sweeps.
        """
        return f"fig5/sigma_t={sigma_t!r}"

    def grid(self, seeds: Optional[Sequence[int]] = None) -> "GridSpec":
        """The ``sigma_T`` sweep: one explicit grid point per timer spread.

        Conceptually a policy axis, but built from explicit points so each
        key carries the exact ``sigma_T`` value (see :meth:`point_key`).
        """
        from repro.runner import GridPoint, GridSpec

        config = self.config
        return GridSpec.from_points(
            "fig5",
            [
                GridPoint(key=self.point_key(sigma_t), scenario=config.scenario_for(sigma_t))
                for sigma_t in config.sigma_t_values
            ],
            seeds=resolve_seeds(config.seed, seeds),
            sample_sizes=(config.sample_size,),
            trials=config.trials,
            mode=config.mode,
            features=tuple(config.features),
            entropy_bin_width=config.entropy_bin_width,
        )

    def cells(self, seeds: Optional[Sequence[int]] = None) -> "List[SweepCell]":
        """One sweep-runner cell per (``sigma_T``, seed) grid point."""
        return self.grid(seeds).cells()

    def run(
        self,
        runner: "Optional[SweepRunner]" = None,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> Fig5Result:
        from repro.runner import SweepRunner

        runner = runner if runner is not None else SweepRunner()
        return self.assemble(runner.run(self.cells(seeds)), seeds=seeds, confidence=confidence)

    def assemble(
        self,
        report,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> Fig5Result:
        """Build the figure result from a sweep report containing this grid's cells."""
        from repro.runner import experiment_view

        config = self.config
        resolved = resolve_seeds(config.seed, seeds)
        view = experiment_view(report, self.grid(resolved), confidence=confidence)
        empirical: Dict[str, Dict[float, float]] = {name: {} for name in config.features}
        theoretical: Dict[str, Dict[float, float]] = {name: {} for name in config.features}
        ratios: Dict[float, float] = {}
        empirical_ci: Dict[str, Dict[float, Tuple[float, float]]] = {
            name: {} for name in config.features
        }
        has_ci = False
        result_confidence: Optional[float] = None
        for sigma_t in config.sigma_t_values:
            cell = view[self.point_key(sigma_t)]
            cell_ci = getattr(cell, "detection_rate_ci", None)
            ratios[sigma_t] = config.scenario_for(sigma_t).variance_ratio()
            for name in config.features:
                empirical[name][sigma_t] = cell.empirical_detection_rate[name][
                    config.sample_size
                ]
                if cell_ci is not None:
                    empirical_ci[name][sigma_t] = cell_ci[name][config.sample_size]
                    has_ci = True
                    result_confidence = getattr(cell, "confidence", None)
                if name == "mean":
                    theoretical[name][sigma_t] = detection_rate_mean(ratios[sigma_t])
                elif name == "variance":
                    theoretical[name][sigma_t] = detection_rate_variance(
                        ratios[sigma_t], config.sample_size
                    )
                elif name == "entropy":
                    theoretical[name][sigma_t] = detection_rate_entropy(
                        ratios[sigma_t], config.sample_size
                    )
                else:
                    # Extension features (mad, iqr) have no closed-form
                    # prediction in the paper; report NaN, not a wrong theorem.
                    theoretical[name][sigma_t] = float("nan")

        required: Dict[str, Dict[float, float]] = {}
        for feature_name in ("variance", "entropy"):
            sizes = sample_size_vs_sigma_t(
                config.sigma_t_curve,
                target_detection_rate=config.target_detection_rate,
                feature=feature_name,
                disturbance=config.scenario.disturbance,
                low_rate_pps=config.scenario.low_rate_pps,
                high_rate_pps=config.scenario.high_rate_pps,
                net_variance=config.scenario.net_piat_variance(),
            )
            required[feature_name] = dict(zip(config.sigma_t_curve, sizes.tolist()))

        return Fig5Result(
            config=config,
            empirical_detection_rate=empirical,
            theoretical_detection_rate=theoretical,
            variance_ratios=ratios,
            required_sample_for_target=required,
            empirical_ci=empirical_ci if has_ci else None,
            n_seeds=len(resolved),
            confidence=result_confidence,
        )


__all__ = ["Fig5Config", "Fig5Experiment", "Fig5Result"]
