"""Experiment harness: one module per figure of the paper's evaluation.

Each experiment pairs a configuration dataclass with an ``Experiment`` class
whose :meth:`run` method wires traffic sources, padding gateways, the
unprotected network and the adversary together, measures empirical detection
rates, evaluates the corresponding closed-form predictions, and returns a
result object with ``rows()`` / ``to_text()`` for reporting.

===========  =============================================================
module       reproduces
===========  =============================================================
``fig4``     Figure 4: CIT padding without cross traffic — PIAT PDFs and
             detection rate vs. sample size for mean/variance/entropy.
``fig5``     Figure 5: VIT padding — detection rate vs. ``sigma_T`` at a
             fixed sample size, and the theoretical sample size needed for
             99 % detection vs. ``sigma_T``.
``fig6``     Figure 6: CIT padding behind a shared router — detection rate
             vs. cross-traffic link utilization.
``fig8``     Figure 8: CIT padding observed across a campus network and a
             WAN over 24 hours of diurnal cross traffic.
===========  =============================================================

Collection modes (see :mod:`repro.experiments.base`):

* ``"simulation"`` — full event-driven simulation (gateway + routers).
* ``"hybrid"`` — event-driven gateway, analytic (M/D/1) network noise; used
  where full simulation of many hops over many hours would be prohibitively
  slow.
* ``"analytic"`` — samples drawn directly from the Gaussian PIAT model; the
  fastest mode, used in unit tests and quick sanity checks.
"""

from repro.experiments.ablations import (
    EstimatorAblationConfig,
    EstimatorAblationExperiment,
    EstimatorAblationResult,
    TapAblationConfig,
    TapAblationExperiment,
    TapAblationResult,
    VitFamilyAblationConfig,
    VitFamilyAblationExperiment,
    VitFamilyAblationResult,
)
from repro.experiments.base import (
    CollectionMode,
    PaddedStreamCapture,
    ScenarioConfig,
    collect_labelled_intervals,
    resolve_seeds,
    simulate_gateway_capture,
)
from repro.experiments.fig4 import Fig4Config, Fig4Experiment, Fig4Result
from repro.experiments.fig5 import Fig5Config, Fig5Experiment, Fig5Result
from repro.experiments.fig6 import Fig6Config, Fig6Experiment, Fig6Result
from repro.experiments.fig8 import Fig8Config, Fig8Experiment, Fig8Result
from repro.experiments.report import (
    format_interval,
    format_table,
    render_experiment_report,
)

__all__ = [
    "CollectionMode",
    "EstimatorAblationConfig",
    "EstimatorAblationExperiment",
    "EstimatorAblationResult",
    "TapAblationConfig",
    "TapAblationExperiment",
    "TapAblationResult",
    "VitFamilyAblationConfig",
    "VitFamilyAblationExperiment",
    "VitFamilyAblationResult",
    "ScenarioConfig",
    "PaddedStreamCapture",
    "collect_labelled_intervals",
    "resolve_seeds",
    "simulate_gateway_capture",
    "Fig4Config",
    "Fig4Experiment",
    "Fig4Result",
    "Fig5Config",
    "Fig5Experiment",
    "Fig5Result",
    "Fig6Config",
    "Fig6Experiment",
    "Fig6Result",
    "Fig8Config",
    "Fig8Experiment",
    "Fig8Result",
    "format_interval",
    "format_table",
    "render_experiment_report",
]
