"""Figure 8: 24-hour detection rates across a campus network and a WAN.

The padded (CIT) stream traverses either a campus network (a few routers,
moderate load) or a wide-area path ("over 15 routers", heavier load); the
adversary taps right in front of the receiver gateway and classifies hourly.
Cross traffic follows a diurnal profile, so the detection rate is highest in
the small hours of the night and dips during the busy afternoon — and the
WAN, with many more congested hops, sits well below the campus curve.

The paper collected one full day per environment on real networks.  Here each
(network, hour) grid point is an independent sweep cell: the gateway is
simulated event-by-event and the per-hour network disturbance is applied
analytically from the M/D/1 model — the ``hybrid`` collection mode.  Full
event simulation of 15 routers for 24 hours is possible with the same code
path (``CollectionMode.SIMULATION``) but takes hours of CPU; the hybrid mode
preserves the quantity the analysis actually depends on (``sigma_net^2`` per
hour) and is the documented substitution for the missing physical testbed.

In hybrid mode the hourly cells are **two-level**: the hour only changes the
analytic network noise, so all of a network's hours share one cacheable
gateway capture (:mod:`repro.runner.capture`) — one gateway simulation per
(network, seed) instead of one per (network, hour, seed), and a warm store
performs none at all.  This also mirrors the paper's testbed, where the same
physical padded stream was observed all day: hours differ by the network
conditions, not by the gateway's behaviour.  Every hour still fans out
across the sweep runner's worker pool and is cached by content hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.theorems import (
    detection_rate_entropy,
    detection_rate_mean,
    detection_rate_variance,
)
from repro.exceptions import ConfigurationError
from repro.experiments.base import CollectionMode, ScenarioConfig, resolve_seeds
from repro.experiments.report import (
    format_table,
    render_experiment_report,
    seed_suffix,
    with_ci_column,
)
from repro.network.topology import TopologySpec, campus_topology, wan_topology
from repro.padding.policies import cit_policy
from repro.traffic.schedule import DiurnalProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.runner import GridSpec, SweepCell, SweepRunner


@dataclass(frozen=True)
class Fig8Config:
    """Configuration for the Figure 8 reproduction.

    Attributes
    ----------
    networks:
        Which environments to run: any subset of ``("campus", "wan")``.
    hours:
        Hours of the day (0-23) at which the adversary classifies.
    sample_size:
        PIAT sample size per classification (1000 in the paper).
    trials:
        Training and test samples per class per hour.
    hourly_multipliers:
        Diurnal load shape shared by both environments.
    """

    networks: Tuple[str, ...] = ("campus", "wan")
    hours: Tuple[int, ...] = tuple(range(0, 24, 2))
    sample_size: int = 1000
    trials: int = 20
    mode: CollectionMode = CollectionMode.HYBRID
    seed: int = 2003
    base_scenario: ScenarioConfig = field(
        default_factory=lambda: ScenarioConfig(policy=cit_policy())
    )
    entropy_bin_width: Optional[float] = None
    hourly_multipliers: Tuple[float, ...] = DiurnalProfile.DEFAULT_MULTIPLIERS

    def __post_init__(self) -> None:
        if not self.networks:
            raise ConfigurationError("networks must be non-empty")
        unknown = set(self.networks) - {"campus", "wan"}
        if unknown:
            raise ConfigurationError(f"unknown networks: {sorted(unknown)}")
        if not self.hours or any(not 0 <= h < 24 for h in self.hours):
            raise ConfigurationError("hours must be a non-empty subset of 0..23")
        if self.sample_size < 2 or self.trials < 2:
            raise ConfigurationError("sample_size and trials must be >= 2")
        if len(self.hourly_multipliers) != 24:
            raise ConfigurationError("hourly_multipliers must contain 24 values")

    def topology(self, network: str) -> TopologySpec:
        """The topology preset for a network name."""
        return campus_topology() if network == "campus" else wan_topology()

    def utilization_at(self, network: str, hour: int) -> float:
        """Total per-hop link utilization of the network at the given hour."""
        spec = self.topology(network)
        padded_util = self.base_scenario.policy.padded_rate_pps * (
            self.base_scenario.packet_size_bytes * 8.0 / spec.link_rate_bps
        )
        peak_cross = max((spec.diurnal_peak_utilization or 0.0) - padded_util, 0.0)
        multipliers = np.asarray(self.hourly_multipliers, dtype=float)
        scale = multipliers[hour] / float(np.max(multipliers))
        return min(padded_util + peak_cross * scale, 0.99)

    def scenario_at(self, network: str, hour: int) -> ScenarioConfig:
        """The padded-link scenario for one network at one hour."""
        spec = self.topology(network)
        return self.base_scenario.with_hops(
            spec.n_hops, link_rate_bps=spec.link_rate_bps
        ).with_cross_utilization(self.utilization_at(network, hour))


@dataclass
class Fig8Result:
    """Hourly detection rates per network and feature."""

    config: Fig8Config
    empirical_detection_rate: Dict[str, Dict[str, Dict[int, float]]]
    theoretical_detection_rate: Dict[str, Dict[str, Dict[int, float]]]
    variance_ratios: Dict[str, Dict[int, float]]
    utilizations: Dict[str, Dict[int, float]]
    empirical_ci: Optional[Dict[str, Dict[str, Dict[int, Tuple[float, float]]]]] = None
    n_seeds: int = 1
    confidence: Optional[float] = None

    def rows(self):
        """(network, feature, hour, per-hop utilization, r, empirical, theory) rows."""
        for network in sorted(self.empirical_detection_rate):
            for feature in sorted(self.empirical_detection_rate[network]):
                for hour in sorted(self.empirical_detection_rate[network][feature]):
                    yield (
                        network,
                        feature,
                        hour,
                        self.utilizations[network][hour],
                        self.variance_ratios[network][hour],
                        self.empirical_detection_rate[network][feature][hour],
                        self.theoretical_detection_rate[network][feature][hour],
                    )

    def nightly_minus_midday(self, network: str, feature: str) -> float:
        """Detection-rate gap between the quietest and busiest measured hours."""
        rates = self.empirical_detection_rate[network][feature]
        utils = self.utilizations[network]
        quiet_hour = min(rates, key=lambda h: utils[h])
        busy_hour = max(rates, key=lambda h: utils[h])
        return rates[quiet_hour] - rates[busy_hour]

    def to_text(self) -> str:
        title = (
            f"Figure 8: hourly detection rate (sample size {self.config.sample_size})"
            + seed_suffix(self.n_seeds)
        )
        headers = ["network", "feature", "hour", "hop utilization", "r", "empirical", "theorem"]
        rows = self.rows()
        if self.empirical_ci is not None:
            headers, rows = with_ci_column(
                headers,
                rows,
                6,
                self.confidence,
                lambda row: self.empirical_ci.get(row[0], {}).get(row[1], {}).get(row[2]),
            )
        sections = [(title, format_table(headers, rows))]
        return render_experiment_report("Figure 8 — campus and wide-area networks", sections)


class Fig8Experiment:
    """Runs the Figure 8 reproduction."""

    #: Registry name; also the prefix of every cell key this experiment emits.
    name = "fig8"

    def __init__(self, config: Optional[Fig8Config] = None) -> None:
        self.config = config if config is not None else Fig8Config()

    def describe(self) -> str:
        """One-line summary shown by ``repro list`` and ``Experiment.describe``."""
        return (
            "Figure 8: 24-hour hourly detection rates across a campus network and "
            "a WAN carrying diurnal cross traffic"
        )

    @staticmethod
    def point_key(network: str, hour: int) -> str:
        """The grid-point key of one (network, hour)."""
        return f"fig8/{network}/hour={hour:02d}"

    def grid(self, seeds: Optional[Sequence[int]] = None) -> "GridSpec":
        """One grid point per (network, hour), fanned out over the seeds.

        In hybrid mode the points of one network share a gateway capture:
        their seed offsets are per-network (the hour only changes the
        analytic noise), and ``shared_capture`` lets the runner factor the
        event simulation out into one cacheable
        :class:`~repro.runner.capture.CaptureSpec` per (network, seed).  The
        network-noise streams stay salted per (network, hour) via
        ``noise_offsets``, so hourly grid points share the gateway but draw
        statistically independent noise — as a physical testbed would.  In
        the other modes every (network, hour) keeps its own fully
        independent capture streams, exactly as before.
        """
        from repro.runner import GridPoint, GridSpec

        config = self.config
        shared = config.mode is CollectionMode.HYBRID
        points = []
        for network in config.networks:
            for hour in config.hours:
                per_hour = (f"train-{network}-{hour}", f"test-{network}-{hour}")
                if shared:
                    offsets = (f"train-{network}", f"test-{network}")
                    noise = per_hour
                else:
                    offsets = per_hour
                    noise = None
                points.append(
                    GridPoint(
                        key=self.point_key(network, hour),
                        scenario=config.scenario_at(network, hour),
                        seed_offsets=offsets,
                        shared_capture=shared,
                        capture_key=f"fig8/{network}/gateway-capture",
                        noise_offsets=noise,
                    )
                )
        return GridSpec.from_points(
            "fig8",
            points,
            seeds=resolve_seeds(config.seed, seeds),
            sample_sizes=(config.sample_size,),
            trials=config.trials,
            mode=config.mode,
            entropy_bin_width=config.entropy_bin_width,
        )

    def cells(self, seeds: Optional[Sequence[int]] = None) -> "List[SweepCell]":
        """One sweep-runner cell per (network, hour, seed) grid point."""
        return self.grid(seeds).cells()

    def run(
        self,
        runner: "Optional[SweepRunner]" = None,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> Fig8Result:
        from repro.runner import SweepRunner

        runner = runner if runner is not None else SweepRunner()
        return self.assemble(runner.run(self.cells(seeds)), seeds=seeds, confidence=confidence)

    def assemble(
        self,
        report,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> Fig8Result:
        """Build the figure result from a sweep report containing this grid's cells."""
        from repro.runner import DEFAULT_FEATURES, experiment_view

        config = self.config
        resolved = resolve_seeds(config.seed, seeds)
        view = experiment_view(report, self.grid(resolved), confidence=confidence)
        empirical: Dict[str, Dict[str, Dict[int, float]]] = {}
        theoretical: Dict[str, Dict[str, Dict[int, float]]] = {}
        ratios: Dict[str, Dict[int, float]] = {}
        utilizations: Dict[str, Dict[int, float]] = {}
        empirical_ci: Dict[str, Dict[str, Dict[int, Tuple[float, float]]]] = {}
        has_ci = False
        result_confidence: Optional[float] = None

        for network in config.networks:
            empirical[network] = {name: {} for name in DEFAULT_FEATURES}
            theoretical[network] = {name: {} for name in DEFAULT_FEATURES}
            empirical_ci[network] = {name: {} for name in DEFAULT_FEATURES}
            ratios[network] = {}
            utilizations[network] = {}
            for hour in config.hours:
                cell = view[self.point_key(network, hour)]
                cell_ci = getattr(cell, "detection_rate_ci", None)
                scenario = config.scenario_at(network, hour)
                utilizations[network][hour] = scenario.cross_utilization
                ratios[network][hour] = scenario.variance_ratio()
                r = ratios[network][hour]
                for name in DEFAULT_FEATURES:
                    empirical[network][name][hour] = cell.empirical_detection_rate[name][
                        config.sample_size
                    ]
                    if cell_ci is not None:
                        empirical_ci[network][name][hour] = cell_ci[name][config.sample_size]
                        has_ci = True
                        result_confidence = getattr(cell, "confidence", None)
                    if name == "mean":
                        theoretical[network][name][hour] = detection_rate_mean(r)
                    elif name == "variance":
                        theoretical[network][name][hour] = detection_rate_variance(
                            r, config.sample_size
                        )
                    else:
                        theoretical[network][name][hour] = detection_rate_entropy(
                            r, config.sample_size
                        )
        return Fig8Result(
            config=config,
            empirical_detection_rate=empirical,
            theoretical_detection_rate=theoretical,
            variance_ratios=ratios,
            utilizations=utilizations,
            empirical_ci=empirical_ci if has_ci else None,
            n_seeds=len(resolved),
            confidence=result_confidence,
        )


__all__ = ["Fig8Config", "Fig8Experiment", "Fig8Result"]
