"""Figure 8: 24-hour detection rates across a campus network and a WAN.

The padded (CIT) stream traverses either a campus network (a few routers,
moderate load) or a wide-area path ("over 15 routers", heavier load); the
adversary taps right in front of the receiver gateway and classifies hourly.
Cross traffic follows a diurnal profile, so the detection rate is highest in
the small hours of the night and dips during the busy afternoon — and the
WAN, with many more congested hops, sits well below the campus curve.

The paper collected one full day per environment on real networks.  Here the
gateway is simulated event-by-event once per payload rate (its behaviour does
not depend on the hour), and the per-hour network disturbance is applied
analytically from the M/D/1 model — the ``hybrid`` collection mode.  Full
event simulation of 15 routers for 24 hours is possible with the same code
path (``CollectionMode.SIMULATION``) but takes hours of CPU; the hybrid mode
preserves the quantity the analysis actually depends on (``sigma_net^2`` per
hour) and is the documented substitution for the missing physical testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.adversary.detection import evaluate_attack
from repro.adversary.features import default_features
from repro.core.theorems import (
    detection_rate_entropy,
    detection_rate_mean,
    detection_rate_variance,
)
from repro.exceptions import ConfigurationError
from repro.experiments.base import (
    CollectionMode,
    ScenarioConfig,
    apply_analytic_network_noise,
    collect_labelled_intervals,
)
from repro.experiments.report import format_table, render_experiment_report
from repro.network.topology import TopologySpec, campus_topology, wan_topology
from repro.padding.policies import cit_policy
from repro.sim.random import RandomStreams
from repro.traffic.schedule import DiurnalProfile


@dataclass(frozen=True)
class Fig8Config:
    """Configuration for the Figure 8 reproduction.

    Attributes
    ----------
    networks:
        Which environments to run: any subset of ``("campus", "wan")``.
    hours:
        Hours of the day (0-23) at which the adversary classifies.
    sample_size:
        PIAT sample size per classification (1000 in the paper).
    trials:
        Training and test samples per class per hour.
    hourly_multipliers:
        Diurnal load shape shared by both environments.
    """

    networks: Tuple[str, ...] = ("campus", "wan")
    hours: Tuple[int, ...] = tuple(range(0, 24, 2))
    sample_size: int = 1000
    trials: int = 20
    mode: CollectionMode = CollectionMode.HYBRID
    seed: int = 2003
    base_scenario: ScenarioConfig = field(
        default_factory=lambda: ScenarioConfig(policy=cit_policy())
    )
    entropy_bin_width: Optional[float] = None
    hourly_multipliers: Tuple[float, ...] = DiurnalProfile.DEFAULT_MULTIPLIERS

    def __post_init__(self) -> None:
        if not self.networks:
            raise ConfigurationError("networks must be non-empty")
        unknown = set(self.networks) - {"campus", "wan"}
        if unknown:
            raise ConfigurationError(f"unknown networks: {sorted(unknown)}")
        if not self.hours or any(not 0 <= h < 24 for h in self.hours):
            raise ConfigurationError("hours must be a non-empty subset of 0..23")
        if self.sample_size < 2 or self.trials < 2:
            raise ConfigurationError("sample_size and trials must be >= 2")
        if len(self.hourly_multipliers) != 24:
            raise ConfigurationError("hourly_multipliers must contain 24 values")

    def topology(self, network: str) -> TopologySpec:
        """The topology preset for a network name."""
        return campus_topology() if network == "campus" else wan_topology()

    def utilization_at(self, network: str, hour: int) -> float:
        """Total per-hop link utilization of the network at the given hour."""
        spec = self.topology(network)
        padded_util = self.base_scenario.policy.padded_rate_pps * (
            self.base_scenario.packet_size_bytes * 8.0 / spec.link_rate_bps
        )
        peak_cross = max((spec.diurnal_peak_utilization or 0.0) - padded_util, 0.0)
        multipliers = np.asarray(self.hourly_multipliers, dtype=float)
        scale = multipliers[hour] / float(np.max(multipliers))
        return min(padded_util + peak_cross * scale, 0.99)

    def scenario_at(self, network: str, hour: int) -> ScenarioConfig:
        """The padded-link scenario for one network at one hour."""
        spec = self.topology(network)
        return replace(
            self.base_scenario,
            n_hops=spec.n_hops,
            link_rate_bps=spec.link_rate_bps,
            cross_utilization=self.utilization_at(network, hour),
        )


@dataclass
class Fig8Result:
    """Hourly detection rates per network and feature."""

    config: Fig8Config
    empirical_detection_rate: Dict[str, Dict[str, Dict[int, float]]]
    theoretical_detection_rate: Dict[str, Dict[str, Dict[int, float]]]
    variance_ratios: Dict[str, Dict[int, float]]
    utilizations: Dict[str, Dict[int, float]]

    def rows(self):
        """(network, feature, hour, per-hop utilization, r, empirical, theory) rows."""
        for network in sorted(self.empirical_detection_rate):
            for feature in sorted(self.empirical_detection_rate[network]):
                for hour in sorted(self.empirical_detection_rate[network][feature]):
                    yield (
                        network,
                        feature,
                        hour,
                        self.utilizations[network][hour],
                        self.variance_ratios[network][hour],
                        self.empirical_detection_rate[network][feature][hour],
                        self.theoretical_detection_rate[network][feature][hour],
                    )

    def nightly_minus_midday(self, network: str, feature: str) -> float:
        """Detection-rate gap between the quietest and busiest measured hours."""
        rates = self.empirical_detection_rate[network][feature]
        utils = self.utilizations[network]
        quiet_hour = min(rates, key=lambda h: utils[h])
        busy_hour = max(rates, key=lambda h: utils[h])
        return rates[quiet_hour] - rates[busy_hour]

    def to_text(self) -> str:
        sections = [
            (
                f"Figure 8: hourly detection rate (sample size {self.config.sample_size})",
                format_table(
                    ["network", "feature", "hour", "hop utilization", "r", "empirical", "theorem"],
                    self.rows(),
                ),
            ),
        ]
        return render_experiment_report("Figure 8 — campus and wide-area networks", sections)


class Fig8Experiment:
    """Runs the Figure 8 reproduction."""

    def __init__(self, config: Optional[Fig8Config] = None) -> None:
        self.config = config if config is not None else Fig8Config()

    def run(self) -> Fig8Result:
        config = self.config
        features = default_features(config.entropy_bin_width)
        intervals_per_class = config.sample_size * config.trials

        # The gateway's behaviour is independent of the hour and of the
        # downstream network, so one pair of gateway-level captures (train and
        # test) per payload rate is collected once and re-noised per hour.
        gateway_scenario = replace(config.base_scenario, n_hops=0, cross_utilization=0.0)
        gateway_mode = (
            CollectionMode.ANALYTIC
            if config.mode is CollectionMode.ANALYTIC
            else CollectionMode.SIMULATION
        )
        gateway_train = collect_labelled_intervals(
            gateway_scenario, intervals_per_class, mode=gateway_mode, seed=config.seed, seed_offset="train"
        )
        gateway_test = collect_labelled_intervals(
            gateway_scenario, intervals_per_class, mode=gateway_mode, seed=config.seed, seed_offset="test"
        )
        noise_streams = RandomStreams(seed=config.seed + 1)

        empirical: Dict[str, Dict[str, Dict[int, float]]] = {}
        theoretical: Dict[str, Dict[str, Dict[int, float]]] = {}
        ratios: Dict[str, Dict[int, float]] = {}
        utilizations: Dict[str, Dict[int, float]] = {}

        for network in config.networks:
            empirical[network] = {name: {} for name in features}
            theoretical[network] = {name: {} for name in features}
            ratios[network] = {}
            utilizations[network] = {}
            for hour in config.hours:
                scenario = config.scenario_at(network, hour)
                utilizations[network][hour] = scenario.cross_utilization
                ratios[network][hour] = scenario.variance_ratio()
                if config.mode is CollectionMode.SIMULATION:
                    train_intervals = collect_labelled_intervals(
                        scenario, intervals_per_class, mode=config.mode,
                        seed=config.seed, seed_offset=f"train-{network}-{hour}",
                    ).intervals
                    test_intervals = collect_labelled_intervals(
                        scenario, intervals_per_class, mode=config.mode,
                        seed=config.seed, seed_offset=f"test-{network}-{hour}",
                    ).intervals
                else:
                    train_intervals = {
                        label: apply_analytic_network_noise(
                            values,
                            scenario,
                            noise_streams.get(f"train-{network}-{hour}-{label}"),
                        )
                        for label, values in gateway_train.intervals.items()
                    }
                    test_intervals = {
                        label: apply_analytic_network_noise(
                            values,
                            scenario,
                            noise_streams.get(f"test-{network}-{hour}-{label}"),
                        )
                        for label, values in gateway_test.intervals.items()
                    }
                for name, feature in features.items():
                    result = evaluate_attack(
                        train_intervals,
                        test_intervals,
                        feature,
                        sample_size=config.sample_size,
                        max_samples_per_class=config.trials,
                    )
                    empirical[network][name][hour] = result.detection_rate
                    r = ratios[network][hour]
                    if name == "mean":
                        theoretical[network][name][hour] = detection_rate_mean(r)
                    elif name == "variance":
                        theoretical[network][name][hour] = detection_rate_variance(
                            r, config.sample_size
                        )
                    else:
                        theoretical[network][name][hour] = detection_rate_entropy(
                            r, config.sample_size
                        )
        return Fig8Result(
            config=config,
            empirical_detection_rate=empirical,
            theoretical_detection_rate=theoretical,
            variance_ratios=ratios,
            utilizations=utilizations,
        )


__all__ = ["Fig8Config", "Fig8Experiment", "Fig8Result"]
