"""Statistics toolbox shared by the adversary and the analysis code.

* :mod:`repro.stats.descriptive` — sample mean/variance and friends with the
  exact conventions used by the paper (unbiased sample variance, etc.).
* :mod:`repro.stats.kde` — Gaussian kernel density estimation with Silverman
  and Scott bandwidth rules; the paper's adversary uses a Gaussian kernel
  estimator to model the feature PDFs during off-line training.
* :mod:`repro.stats.entropy` — histogram-based differential entropy
  estimators, including the Moddemeijer estimator the paper adopts for its
  robustness to outliers.
* :mod:`repro.stats.normality` — diagnostics used to validate the paper's
  Gaussian PIAT assumption on simulated traces.
* :mod:`repro.stats.bootstrap` — bootstrap confidence intervals for the
  empirical detection-rate estimates reported by the experiments.
"""

from repro.stats.bootstrap import bootstrap_ci, bootstrap_detection_rate_ci
from repro.stats.descriptive import (
    coefficient_of_variation,
    sample_mean,
    sample_moments,
    sample_variance,
    standard_error_of_mean,
    summarize,
)
from repro.stats.entropy import (
    histogram_entropy,
    moddemeijer_entropy,
    normal_differential_entropy,
)
from repro.stats.kde import GaussianKDE, scott_bandwidth, silverman_bandwidth
from repro.stats.normality import jarque_bera_normality, normality_report, qq_deviation

__all__ = [
    "sample_mean",
    "sample_variance",
    "sample_moments",
    "standard_error_of_mean",
    "coefficient_of_variation",
    "summarize",
    "GaussianKDE",
    "silverman_bandwidth",
    "scott_bandwidth",
    "histogram_entropy",
    "moddemeijer_entropy",
    "normal_differential_entropy",
    "jarque_bera_normality",
    "qq_deviation",
    "normality_report",
    "bootstrap_ci",
    "bootstrap_detection_rate_ci",
]
