"""Normality diagnostics.

Section 4 of the paper *assumes* that the padded traffic's PIAT is normally
distributed and validates the assumption by looking at the empirical PDFs
("the two distributions are almost bell-shaped", Figure 4(a)).  These helpers
give the same sanity check a quantitative form for the simulated traces used
in this reproduction: a Jarque–Bera style moment test and a simple
quantile–quantile deviation measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.exceptions import AnalysisError


def _validate(sample: np.ndarray, minimum: int) -> np.ndarray:
    array = np.asarray(sample, dtype=float)
    if array.ndim != 1 or array.size < minimum:
        raise AnalysisError(f"need a 1-D sample with at least {minimum} observations")
    if not np.all(np.isfinite(array)):
        raise AnalysisError("sample contains non-finite values")
    return array


def jarque_bera_normality(sample: np.ndarray) -> tuple[float, float]:
    """Jarque–Bera statistic and p-value for the null of normality."""
    array = _validate(sample, 8)
    result = sps.jarque_bera(array)
    return float(result.statistic), float(result.pvalue)


def qq_deviation(sample: np.ndarray) -> float:
    """Root-mean-square deviation of the sample's normal Q–Q plot from its fit line.

    The deviation is normalised by the sample standard deviation, so values
    around or below ~0.1 indicate a distribution that is visually
    indistinguishable from a normal ("almost bell-shaped" in the paper's
    words) while values well above ~0.3 indicate clear departure.
    """
    array = _validate(sample, 8)
    std = float(np.std(array, ddof=1))
    if std == 0.0:
        raise AnalysisError("Q-Q deviation is undefined for a constant sample")
    sorted_values = np.sort(array)
    n = array.size
    quantile_levels = (np.arange(1, n + 1) - 0.5) / n
    theoretical = sps.norm.ppf(quantile_levels, loc=np.mean(array), scale=std)
    return float(np.sqrt(np.mean((sorted_values - theoretical) ** 2)) / std)


@dataclass(frozen=True)
class NormalityReport:
    """Summary of how well a sample matches a normal distribution."""

    size: int
    mean: float
    std: float
    skewness: float
    excess_kurtosis: float
    jarque_bera_statistic: float
    jarque_bera_pvalue: float
    qq_rms_deviation: float

    @property
    def looks_normal(self) -> bool:
        """A pragmatic verdict mirroring the paper's visual check.

        A strict hypothesis test rejects normality for almost any large
        real-world sample; what matters for the Gaussian PIAT model is that
        the shape is close.  We call a sample "normal enough" when the Q–Q
        deviation is small and the third/fourth moments are mild.
        """
        return (
            self.qq_rms_deviation < 0.25
            and abs(self.skewness) < 1.0
            and abs(self.excess_kurtosis) < 3.0
        )


def normality_report(sample: np.ndarray) -> NormalityReport:
    """Build a :class:`NormalityReport` for a sample."""
    array = _validate(sample, 8)
    statistic, pvalue = jarque_bera_normality(array)
    return NormalityReport(
        size=int(array.size),
        mean=float(np.mean(array)),
        std=float(np.std(array, ddof=1)),
        skewness=float(sps.skew(array)),
        excess_kurtosis=float(sps.kurtosis(array)),
        jarque_bera_statistic=statistic,
        jarque_bera_pvalue=pvalue,
        qq_rms_deviation=qq_deviation(array),
    )


__all__ = ["jarque_bera_normality", "qq_deviation", "NormalityReport", "normality_report"]
