"""Gaussian kernel density estimation.

The paper's adversary does not rely on coarse histograms to model the
probability density function of a feature statistic during off-line training;
it uses the Gaussian kernel estimator of Silverman [17].  This module provides
a small, dependency-light implementation (scipy's ``gaussian_kde`` exists, but
implementing it directly keeps bandwidth selection explicit and lets the
classifier evaluate log-densities stably even far in the tails).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import AnalysisError


def silverman_bandwidth(sample: np.ndarray) -> float:
    """Silverman's rule-of-thumb bandwidth.

    ``h = 0.9 * min(std, IQR / 1.34) * n^(-1/5)``, robust to mild bimodality
    and heavy tails.  Returns a tiny positive bandwidth when the sample is
    degenerate (all values equal) so the KDE stays well defined.
    """
    array = np.asarray(sample, dtype=float)
    if array.size < 2:
        raise AnalysisError("bandwidth selection needs at least 2 observations")
    std = float(np.std(array, ddof=1))
    q75, q25 = np.percentile(array, [75.0, 25.0])
    iqr = float(q75 - q25)
    spread_candidates = [value for value in (std, iqr / 1.34) if value > 0.0]
    if not spread_candidates:
        scale = max(abs(float(np.mean(array))), 1.0)
        return 1e-12 * scale
    spread = min(spread_candidates)
    return 0.9 * spread * array.size ** (-0.2)


def scott_bandwidth(sample: np.ndarray) -> float:
    """Scott's rule bandwidth: ``h = 1.06 * std * n^(-1/5)``."""
    array = np.asarray(sample, dtype=float)
    if array.size < 2:
        raise AnalysisError("bandwidth selection needs at least 2 observations")
    std = float(np.std(array, ddof=1))
    if std == 0.0:
        scale = max(abs(float(np.mean(array))), 1.0)
        return 1e-12 * scale
    return 1.06 * std * array.size ** (-0.2)


class GaussianKDE:
    """One-dimensional Gaussian kernel density estimator.

    Parameters
    ----------
    sample:
        Training observations.
    bandwidth:
        Either a positive float, or one of the strings ``"silverman"``
        (default, the paper's choice) / ``"scott"``.
    """

    def __init__(
        self, sample: np.ndarray, bandwidth: Union[str, float] = "silverman"
    ) -> None:
        array = np.asarray(sample, dtype=float)
        if array.ndim != 1:
            raise AnalysisError("GaussianKDE expects a one-dimensional sample")
        if array.size < 2:
            raise AnalysisError("GaussianKDE needs at least 2 observations")
        if not np.all(np.isfinite(array)):
            raise AnalysisError("GaussianKDE received non-finite values")
        self.sample = array
        if isinstance(bandwidth, str):
            rule = bandwidth.strip().lower()
            if rule == "silverman":
                self.bandwidth = silverman_bandwidth(array)
            elif rule == "scott":
                self.bandwidth = scott_bandwidth(array)
            else:
                raise AnalysisError(f"unknown bandwidth rule {bandwidth!r}")
        else:
            self.bandwidth = float(bandwidth)
            if self.bandwidth <= 0.0:
                raise AnalysisError("bandwidth must be positive")

    @property
    def n(self) -> int:
        """Number of training observations."""
        return int(self.sample.size)

    def pdf(self, x: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Estimated density at ``x`` (scalar or array)."""
        return np.exp(self.logpdf(x))

    def logpdf(self, x: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Log-density at ``x``, computed with a stable log-sum-exp.

        Evaluating the log-density directly (instead of ``log(pdf)``) keeps
        Bayes comparisons meaningful even when a test feature lies many
        bandwidths away from every training point.
        """
        points = np.atleast_1d(np.asarray(x, dtype=float))
        z = (points[:, None] - self.sample[None, :]) / self.bandwidth
        log_kernels = -0.5 * z**2 - 0.5 * np.log(2.0 * np.pi) - np.log(self.bandwidth)
        # log mean exp over the kernel axis
        max_log = np.max(log_kernels, axis=1, keepdims=True)
        log_density = (
            max_log[:, 0]
            + np.log(np.mean(np.exp(log_kernels - max_log), axis=1))
        )
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(log_density[0])
        return log_density

    def cdf(self, x: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Estimated cumulative distribution function at ``x``."""
        from scipy.stats import norm

        points = np.atleast_1d(np.asarray(x, dtype=float))
        z = (points[:, None] - self.sample[None, :]) / self.bandwidth
        values = np.mean(norm.cdf(z), axis=1)
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(values[0])
        return values

    def grid(self, n_points: int = 512, padding: float = 3.0) -> np.ndarray:
        """An evaluation grid spanning the sample plus ``padding`` bandwidths."""
        if n_points < 2:
            raise AnalysisError("grid needs at least 2 points")
        low = float(np.min(self.sample)) - padding * self.bandwidth
        high = float(np.max(self.sample)) + padding * self.bandwidth
        return np.linspace(low, high, n_points)


__all__ = ["GaussianKDE", "silverman_bandwidth", "scott_bandwidth"]
