"""Descriptive statistics with the paper's conventions.

The adversary's feature statistics are defined in Section 4 of the paper:
the sample mean (equation (17)) and the *unbiased* sample variance with the
``n - 1`` denominator (equation (19)).  Keeping these tiny wrappers in one
place guarantees that the classifier, the theorems and the tests all use the
same definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import AnalysisError


def _validate_sample(sample: np.ndarray, minimum_size: int, name: str) -> np.ndarray:
    array = np.asarray(sample, dtype=float)
    if array.ndim != 1:
        raise AnalysisError(f"{name} expects a one-dimensional sample, got shape {array.shape}")
    if array.size < minimum_size:
        raise AnalysisError(
            f"{name} needs at least {minimum_size} observations, got {array.size}"
        )
    if not np.all(np.isfinite(array)):
        raise AnalysisError(f"{name} received non-finite values")
    return array


def sample_mean(sample: np.ndarray) -> float:
    """The sample mean, equation (17) of the paper."""
    array = _validate_sample(sample, 1, "sample_mean")
    return float(np.mean(array))


def sample_variance(sample: np.ndarray) -> float:
    """The unbiased sample variance (``n - 1`` denominator), equation (19)."""
    array = _validate_sample(sample, 2, "sample_variance")
    return float(np.var(array, ddof=1))


def sample_moments(sample: np.ndarray) -> Tuple[float, float]:
    """Convenience: ``(sample mean, unbiased sample variance)`` in one pass."""
    array = _validate_sample(sample, 2, "sample_moments")
    return float(np.mean(array)), float(np.var(array, ddof=1))


def standard_error_of_mean(sample: np.ndarray) -> float:
    """Standard error of the sample mean, ``s / sqrt(n)``."""
    array = _validate_sample(sample, 2, "standard_error_of_mean")
    return float(np.std(array, ddof=1) / np.sqrt(array.size))


def coefficient_of_variation(sample: np.ndarray) -> float:
    """Ratio of sample standard deviation to sample mean.

    Raises
    ------
    AnalysisError
        If the sample mean is zero (the ratio is undefined).
    """
    array = _validate_sample(sample, 2, "coefficient_of_variation")
    mean = float(np.mean(array))
    if mean == 0.0:
        raise AnalysisError("coefficient of variation is undefined for zero-mean samples")
    return float(np.std(array, ddof=1) / mean)


@dataclass(frozen=True)
class SampleSummary:
    """A compact numeric summary of one observed sample."""

    size: int
    mean: float
    variance: float
    std: float
    minimum: float
    maximum: float
    median: float
    q25: float
    q75: float

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q75 - self.q25


def summarize(sample: np.ndarray) -> SampleSummary:
    """Compute a :class:`SampleSummary` for a one-dimensional sample."""
    array = _validate_sample(sample, 2, "summarize")
    q25, median, q75 = np.percentile(array, [25.0, 50.0, 75.0])
    return SampleSummary(
        size=int(array.size),
        mean=float(np.mean(array)),
        variance=float(np.var(array, ddof=1)),
        std=float(np.std(array, ddof=1)),
        minimum=float(np.min(array)),
        maximum=float(np.max(array)),
        median=float(median),
        q25=float(q25),
        q75=float(q75),
    )


__all__ = [
    "sample_mean",
    "sample_variance",
    "sample_moments",
    "standard_error_of_mean",
    "coefficient_of_variation",
    "SampleSummary",
    "summarize",
]
