"""Bootstrap confidence intervals for empirical estimates.

The empirical detection rates reported by the experiment harness are averages
over a finite number of classification trials; their sampling error matters
when comparing against the closed-form predictions.  A simple percentile
bootstrap keeps the reporting honest without assuming anything about the
estimator's distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.exceptions import AnalysisError
from repro.sim.random import derived_rng

#: Master seed of the fallback resampling stream used when no ``rng`` is
#: passed.  Bootstrap resampling is part of reported confidence intervals, so
#: the fallback must be deterministic: the same sample always yields the same
#: interval, byte for byte, whether or not the caller threads a generator.
DEFAULT_BOOTSTRAP_SEED = 0


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate with a percentile-bootstrap confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    resamples: int

    @property
    def width(self) -> float:
        """Width of the confidence interval."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
    seed: int = DEFAULT_BOOTSTRAP_SEED,
) -> BootstrapResult:
    """Percentile bootstrap confidence interval for ``statistic(sample)``.

    Parameters
    ----------
    sample:
        Observed values (at least 2).
    statistic:
        Function mapping an array to a scalar; defaults to the mean.
    confidence:
        Two-sided coverage, e.g. 0.95.
    resamples:
        Number of bootstrap resamples.
    rng:
        Random generator.  When omitted, a deterministic generator derived
        from ``seed`` is used, so repeated calls on the same sample return
        the same interval.
    seed:
        Seed of the fallback resampling stream; ignored when ``rng`` is
        given.
    """
    array = np.asarray(list(sample), dtype=float)
    if array.ndim != 1 or array.size < 2:
        raise AnalysisError("bootstrap needs a 1-D sample with at least 2 observations")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError("confidence must lie in (0, 1)")
    if resamples < 10:
        raise AnalysisError("use at least 10 bootstrap resamples")
    generator = rng if rng is not None else derived_rng("bootstrap", seed)
    estimates = np.empty(resamples)
    n = array.size
    for i in range(resamples):
        indices = generator.integers(0, n, size=n)
        estimates[i] = float(statistic(array[indices]))
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.percentile(estimates, [100.0 * alpha, 100.0 * (1.0 - alpha)])
    return BootstrapResult(
        estimate=float(statistic(array)),
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
        resamples=resamples,
    )


def bootstrap_detection_rate_ci(
    correct_flags: Sequence[bool],
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
    seed: int = DEFAULT_BOOTSTRAP_SEED,
) -> BootstrapResult:
    """Confidence interval for a detection rate from per-trial correctness flags.

    ``correct_flags`` holds one boolean per classification trial (``True`` =
    the adversary identified the payload rate correctly); the detection rate
    is their mean.  Like :func:`bootstrap_ci`, the interval is reproducible
    without threading a generator: the fallback stream is derived from
    ``seed``.
    """
    flags = np.asarray(list(correct_flags), dtype=float)
    if flags.size < 2:
        raise AnalysisError("need at least 2 classification trials")
    if np.any((flags != 0.0) & (flags != 1.0)):
        raise AnalysisError("correct_flags must be boolean")
    return bootstrap_ci(
        flags,
        statistic=np.mean,
        confidence=confidence,
        resamples=resamples,
        rng=rng,
        seed=seed,
    )


__all__ = [
    "DEFAULT_BOOTSTRAP_SEED",
    "BootstrapResult",
    "bootstrap_ci",
    "bootstrap_detection_rate_ci",
]
