"""Entropy estimators.

The paper's third feature statistic is the *sample entropy* of the padded
traffic's PIAT, estimated with the histogram-based method of Moddemeijer
[11]: build a histogram of the sample with bin width ``delta_h``, then

``H_hat = - sum_i (k_i / n) log(k_i / n) + log(delta_h)``   (equation (24))

When the bin width is held constant across the experiment the additive
``log(delta_h)`` term does not affect classification and the paper drops it
(equation (25)).  Both forms are provided here, plus the closed-form
differential entropy of a normal distribution used by Theorem 3.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import AnalysisError


def normal_differential_entropy(variance: float) -> float:
    """Differential entropy (nats) of ``N(mu, variance)``: ``0.5 log(2 pi e sigma^2)``."""
    if variance <= 0.0:
        raise AnalysisError("variance must be positive for a differential entropy")
    return 0.5 * float(np.log(2.0 * np.pi * np.e * variance))


def histogram_entropy(
    sample: np.ndarray,
    bin_width: Optional[float] = None,
    bins: Optional[Union[int, np.ndarray]] = None,
    include_bin_width_term: bool = True,
) -> float:
    """Histogram estimate of differential entropy (nats).

    Parameters
    ----------
    sample:
        One-dimensional observations.
    bin_width:
        Histogram bin width ``delta_h``.  Exactly one of ``bin_width`` and
        ``bins`` may be given; when neither is given the Freedman–Diaconis
        rule chooses the width.
    bins:
        Explicit number of bins or bin edges (passed to ``numpy.histogram``).
    include_bin_width_term:
        Whether to add ``log(delta_h)`` (equation (24)).  The classifier uses
        ``False`` (equation (25)) since a constant offset cannot change a
        Bayes decision; set ``True`` to estimate the actual differential
        entropy.
    """
    array = np.asarray(sample, dtype=float)
    if array.ndim != 1:
        raise AnalysisError("histogram_entropy expects a one-dimensional sample")
    if array.size < 2:
        raise AnalysisError("histogram_entropy needs at least 2 observations")
    if not np.all(np.isfinite(array)):
        raise AnalysisError("histogram_entropy received non-finite values")
    if bin_width is not None and bins is not None:
        raise AnalysisError("give either bin_width or bins, not both")

    if bin_width is not None:
        if bin_width <= 0.0:
            raise AnalysisError("bin_width must be positive")
        low, high = float(np.min(array)), float(np.max(array))
        if high == low:
            # Degenerate sample: all mass in one bin, empirical entropy 0.
            return float(np.log(bin_width)) if include_bin_width_term else 0.0
        n_bins = int(np.ceil((high - low) / bin_width))
        edges = low + bin_width * np.arange(n_bins + 1)
        counts, edges = np.histogram(array, bins=edges)
        width = bin_width
    else:
        if bins is None:
            bins = "fd"
        counts, edges = np.histogram(array, bins=bins)
        widths = np.diff(edges)
        width = float(widths[0]) if widths.size else 1.0

    n = array.size
    probabilities = counts[counts > 0] / n
    discrete_entropy = float(-np.sum(probabilities * np.log(probabilities)))
    if include_bin_width_term:
        return discrete_entropy + float(np.log(width))
    return discrete_entropy


def moddemeijer_entropy(sample: np.ndarray, bin_width: float) -> float:
    """The estimator the paper's adversary uses (equation (25)).

    A fixed ``bin_width`` is used for every sample of an experiment, and the
    constant ``log(bin_width)`` term is dropped: only differences between
    classes matter for the Bayes decision.  The probability-weighted sum makes
    the estimate robust to the occasional outlier interval, which is why the
    paper prefers it over the sample variance under cross traffic.
    """
    return histogram_entropy(sample, bin_width=bin_width, include_bin_width_term=False)


__all__ = ["normal_differential_entropy", "histogram_entropy", "moddemeijer_entropy"]
