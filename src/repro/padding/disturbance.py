"""The gateway disturbance ``delta_gw``.

Section 4.1.2 of the paper decomposes the padded traffic's packet
inter-arrival time as ``X = T + delta_gw + delta_net`` and attributes
``delta_gw`` to two mechanisms inside the sender gateway:

1. **Scheduling jitter** — the context switch into the timer's interrupt
   routine takes a small random time regardless of payload activity.
2. **Interrupt blocking** — a payload packet arriving at the gateway's NIC
   raises its own interrupt which can delay the (already due) padding-timer
   interrupt.  The more payload packets per second, the more often the timer
   is delayed, so the variance of ``delta_gw`` *increases with the payload
   rate*.  This correlation is exactly the information leak that sample
   variance and sample entropy exploit; it is why CIT padding fails.

:class:`InterruptDisturbance` reproduces both mechanisms mechanistically in
the event simulation and also exposes the corresponding analytic variance so
that the closed-form model (:mod:`repro.core`) can be driven by the same
parameters as the simulator.

Default parameters are calibrated so the no-cross-traffic variance ratio
``r = sigma_h^2 / sigma_l^2`` for the paper's 10 pps / 40 pps payloads lands
in the regime that reproduces the Figure 4(b) detection-rate curves (roughly
``r`` between 1.5 and 2.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import PaddingError


@dataclass(frozen=True)
class InterruptDisturbance:
    """Stochastic model of timer-interrupt delay inside the sender gateway.

    Parameters
    ----------
    base_jitter_std:
        Standard deviation (seconds) of the ever-present scheduling jitter.
        Modelled as a half-normal delay (delays are non-negative).
    blocking_window:
        Length (seconds) of the effective window before a timer expiry during
        which a payload NIC interrupt contends with (and slightly delays) the
        timer interrupt.  The default spans most of the 10 ms timer period:
        many small, frequent perturbations rather than rare large ones, which
        keeps the resulting PIAT distribution close to normal (the paper's
        Figure 4(a) observation) while preserving the payload-rate
        correlation.
    blocking_delay_mean:
        Mean additional delay (seconds) contributed by one blocking payload
        interrupt; individual delays are exponential.
    """

    base_jitter_std: float = 20e-6
    blocking_window: float = 8e-3
    blocking_delay_mean: float = 15e-6

    def __post_init__(self) -> None:
        if self.base_jitter_std < 0.0:
            raise PaddingError("base_jitter_std must be >= 0")
        if self.blocking_window < 0.0:
            raise PaddingError("blocking_window must be >= 0")
        if self.blocking_delay_mean < 0.0:
            raise PaddingError("blocking_delay_mean must be >= 0")

    # ------------------------------------------------------------- simulation
    def sample_delay(
        self,
        rng: np.random.Generator,
        payload_arrival_times: Sequence[float],
        timer_due_at: float,
        *,
        jitter_rng: Optional[np.random.Generator] = None,
        blocking_rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Delay (seconds >= 0) applied to the timer interrupt due at ``timer_due_at``.

        Parameters
        ----------
        rng:
            Random stream dedicated to gateway disturbance.
        payload_arrival_times:
            Arrival times of payload packets since the previous timer
            interrupt (only those inside the blocking window matter).
        timer_due_at:
            The scheduled expiry time of the timer interrupt.
        jitter_rng, blocking_rng:
            Optional dedicated streams for the two mechanisms.  When given,
            each mechanism's draws form a homogeneous sequence on its own
            stream, which is what lets :mod:`repro.sim.kernel` batch them
            into single array draws with byte-identical results.  Defaults to
            ``rng`` for both (the historical single-stream behaviour).
        """
        jitter_source = jitter_rng if jitter_rng is not None else rng
        blocking_source = blocking_rng if blocking_rng is not None else rng
        delay = 0.0
        if self.base_jitter_std > 0.0:
            delay += abs(float(jitter_source.normal(0.0, self.base_jitter_std)))
        if self.blocking_delay_mean > 0.0 and self.blocking_window > 0.0:
            window_start = timer_due_at - self.blocking_window
            blocking = sum(1 for t in payload_arrival_times if window_start <= t <= timer_due_at)
            if blocking:
                delay += float(
                    np.sum(blocking_source.exponential(self.blocking_delay_mean, size=blocking))
                )
        return delay

    # --------------------------------------------------------------- analytic
    def delay_variance(self, payload_rate_pps: float) -> float:
        """Variance of the per-interrupt delay at a given payload rate.

        The blocking count within a window of length ``w`` for Poisson-like
        payload arrivals at rate ``lambda`` is approximately Poisson with mean
        ``lambda * w``; a compound Poisson sum of i.i.d. exponential delays
        with mean ``m`` then has variance ``lambda * w * 2 m^2``.  The
        half-normal scheduling jitter contributes
        ``(1 - 2/pi) * base_jitter_std^2``.
        """
        if payload_rate_pps < 0.0:
            raise PaddingError("payload rate must be >= 0")
        half_normal_var = (1.0 - 2.0 / np.pi) * self.base_jitter_std**2
        expected_blockers = payload_rate_pps * self.blocking_window
        compound_poisson_var = expected_blockers * 2.0 * self.blocking_delay_mean**2
        return float(half_normal_var + compound_poisson_var)

    def piat_variance(self, payload_rate_pps: float) -> float:
        """Variance contributed to the padded PIAT by the gateway, ``sigma_gw^2``.

        The PIAT between packets ``i`` and ``i+1`` is
        ``T + d_{i+1} - d_i`` where ``d`` is the per-interrupt delay, so the
        gateway contributes twice the per-interrupt delay variance (delays at
        consecutive interrupts are independent in this model).
        """
        return 2.0 * self.delay_variance(payload_rate_pps)

    def variance_ratio(self, low_rate_pps: float, high_rate_pps: float, timer_variance: float = 0.0, net_variance: float = 0.0) -> float:
        """The paper's ``r`` (equation (16)) for this disturbance model.

        Parameters
        ----------
        low_rate_pps, high_rate_pps:
            The two candidate payload rates.
        timer_variance:
            ``sigma_T^2`` of the padding timer (0 for CIT).
        net_variance:
            ``sigma_net^2`` added by the unprotected network at the tap point.
        """
        if high_rate_pps < low_rate_pps:
            raise PaddingError("high_rate_pps must be >= low_rate_pps")
        numerator = timer_variance + net_variance + self.piat_variance(high_rate_pps)
        denominator = timer_variance + net_variance + self.piat_variance(low_rate_pps)
        if denominator <= 0.0:
            raise PaddingError(
                "total PIAT variance for the low rate is zero; the Gaussian "
                "model is degenerate (add jitter or timer variance)"
            )
        return float(numerator / denominator)


__all__ = ["InterruptDisturbance"]
