"""Link-padding countermeasure: timers, gateways and padding policies.

This subpackage implements the countermeasure the paper analyses.  The
sender-side security gateway (GW1 in the paper's Figure 1) queues payload
packets arriving from the protected subnet and transmits exactly one packet —
payload if available, otherwise a dummy — every time its padding timer fires:

* :mod:`repro.padding.timer` — interval generators: the constant interval
  timer (**CIT**) and several variable interval timer (**VIT**) families
  (normal, uniform, exponential, log-normal) parameterised by mean interval
  ``tau`` and standard deviation ``sigma_T``.
* :mod:`repro.padding.disturbance` — the gateway disturbance ``delta_gw``:
  operating-system jitter on the timer interrupt plus the payload-dependent
  blocking delays that make the padded stream's PIAT variance grow with the
  payload rate (the effect the adversary exploits).
* :mod:`repro.padding.gateway` — the sender gateway (queue + timer + dummy
  injection) and an adaptive-masking variant used as a baseline.
* :mod:`repro.padding.receiver` — the receiver gateway (GW2), which strips
  dummies and forwards payload to the protected destination.
* :mod:`repro.padding.policies` — convenience constructors bundling a timer
  with the metadata the experiments need.
"""

from repro.padding.disturbance import InterruptDisturbance
from repro.padding.gateway import AdaptiveMaskingGateway, SenderGateway
from repro.padding.policies import PaddingPolicy, cit_policy, vit_policy
from repro.padding.receiver import ReceiverGateway
from repro.padding.timer import (
    ConstantInterval,
    ExponentialInterval,
    IntervalGenerator,
    LognormalInterval,
    NormalInterval,
    UniformInterval,
    make_interval_generator,
)

__all__ = [
    "IntervalGenerator",
    "ConstantInterval",
    "NormalInterval",
    "UniformInterval",
    "ExponentialInterval",
    "LognormalInterval",
    "make_interval_generator",
    "InterruptDisturbance",
    "SenderGateway",
    "AdaptiveMaskingGateway",
    "ReceiverGateway",
    "PaddingPolicy",
    "cit_policy",
    "vit_policy",
]
