"""Receiver-side security gateway (GW2): strips dummies, delivers payload."""

from __future__ import annotations

from typing import Callable, Optional

from repro.exceptions import PaddingError
from repro.sim.engine import Simulator
from repro.sim.monitor import CounterMonitor, TimeSeriesMonitor
from repro.traffic.packet import Packet

PacketSink = Callable[[Packet], None]


class ReceiverGateway:
    """The paper's GW2.

    Every packet of the padded stream terminates here: dummy packets are
    discarded (they exist only to confuse the observer on the unprotected
    segment), payload packets are stamped with their reception time and
    forwarded to the protected destination.

    Parameters
    ----------
    simulator:
        Event engine (used for timestamps).
    destination:
        Optional sink for de-padded payload packets (e.g. a receiving
        workstation model).  May be ``None`` when only statistics are needed.
    name:
        Label used in reports.
    """

    def __init__(
        self,
        simulator: Simulator,
        destination: Optional[PacketSink] = None,
        name: str = "GW2",
    ) -> None:
        if destination is not None and not callable(destination):
            raise PaddingError("destination must be callable or None")
        self.simulator = simulator
        self.destination = destination
        self.name = name
        self.counters = CounterMonitor()
        self.latency = TimeSeriesMonitor(f"{name}-payload-latency")

    def accept(self, packet: Packet) -> None:
        """Entry point for packets arriving from the unprotected network."""
        now = self.simulator.now
        packet.received_at = now
        self.counters.increment("packets_received")
        if packet.is_dummy:
            self.counters.increment("dummy_discarded")
            return
        self.counters.increment("payload_delivered")
        self.latency.record(now, packet.latency)
        if self.destination is not None:
            self.destination(packet)

    # compatibility with code that treats gateways as plain sinks
    __call__ = accept

    @property
    def payload_delivered(self) -> int:
        """Number of payload packets forwarded to the protected destination."""
        return self.counters.get("payload_delivered")

    @property
    def dummies_discarded(self) -> int:
        """Number of dummy packets removed from the stream."""
        return self.counters.get("dummy_discarded")

    @property
    def goodput_fraction(self) -> float:
        """Payload fraction of everything received (1 - padding overhead)."""
        total = self.counters.get("packets_received")
        if total == 0:
            raise PaddingError(f"{self.name}: no packets received yet")
        return self.payload_delivered / total

    def mean_payload_latency(self) -> float:
        """Average end-to-end latency of delivered payload packets (seconds)."""
        return self.latency.mean()


__all__ = ["ReceiverGateway"]
