"""Sender-side security gateway (GW1): queue + padding timer + dummy injection.

The gateway implements the padding mechanism of Section 3.2 of the paper:

(a) payload packets arriving from the protected subnet are placed in a queue;
(b) an interrupt-driven timer fires at (approximately) every interval drawn
    from the configured :class:`~repro.padding.timer.IntervalGenerator`;
    the interrupt service routine sends the head-of-queue payload packet if
    one is waiting and a freshly created dummy packet otherwise.

The *approximately* matters: each interrupt is delayed by the
:class:`~repro.padding.disturbance.InterruptDisturbance`, whose magnitude
depends on how many payload packets recently hit the gateway's NIC.  That is
the payload-rate-correlated jitter the adversary exploits.
"""

from __future__ import annotations

from typing import Callable, Deque, List, Optional
from collections import deque

import numpy as np

from repro.exceptions import PaddingError
from repro.sim.engine import Simulator
from repro.sim.monitor import CounterMonitor
from repro.sim.random import derived_rng
from repro.traffic.packet import Packet, PacketKind
from repro.padding.disturbance import InterruptDisturbance
from repro.padding.timer import IntervalGenerator

PacketSink = Callable[[Packet], None]

#: Minimum spacing enforced between consecutive transmissions.  Interrupt
#: delays are microseconds while timer intervals are milliseconds, so this
#: only matters for pathological VIT settings where an interval draw is tiny.
_MIN_TX_SPACING_S = 1e-9


class SenderGateway:
    """The paper's GW1.

    Parameters
    ----------
    simulator:
        Event engine.
    interval_generator:
        CIT or VIT timer law (:mod:`repro.padding.timer`).
    output:
        Sink receiving every transmitted (padded) packet — typically the first
        unprotected link/router or, in the zero-cross-traffic experiments, the
        adversary's tap directly.
    rng:
        Random stream for the timer and (by default) the disturbance model.
    disturbance:
        Gateway jitter model; pass ``None`` for an ideal (disturbance-free)
        gateway, which is useful in unit tests and as an ablation.
    jitter_rng, blocking_rng:
        Optional dedicated streams for the disturbance's scheduling-jitter and
        interrupt-blocking draws.  When provided, each stream carries one
        homogeneous draw sequence, making the event path byte-equivalent to
        the vectorized kernel (:mod:`repro.sim.kernel`).  ``None`` keeps the
        historical behaviour of drawing everything from ``rng``.
    max_queue_packets:
        Capacity of the payload queue; arrivals beyond it are dropped and
        counted.  ``None`` means unbounded.
    dummy_size_bytes:
        Size stamped on generated dummy packets.  Defaults to the size of the
        first payload packet seen (or 512 bytes before any payload arrives) so
        that all packets on the wire share one size, per the paper's
        constant-packet-size assumption.
    """

    def __init__(
        self,
        simulator: Simulator,
        interval_generator: IntervalGenerator,
        output: PacketSink,
        rng: Optional[np.random.Generator] = None,
        disturbance: Optional[InterruptDisturbance] = InterruptDisturbance(),
        max_queue_packets: Optional[int] = None,
        dummy_size_bytes: Optional[int] = None,
        name: str = "GW1",
        jitter_rng: Optional[np.random.Generator] = None,
        blocking_rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not callable(output):
            raise PaddingError("gateway output must be callable")
        if max_queue_packets is not None and max_queue_packets <= 0:
            raise PaddingError("max_queue_packets must be positive or None")
        self.simulator = simulator
        self.interval_generator = interval_generator
        self.output = output
        self.rng = rng if rng is not None else derived_rng(f"gateway-fallback-{name}")
        self.jitter_rng = jitter_rng
        self.blocking_rng = blocking_rng
        self.disturbance = disturbance
        self.max_queue_packets = max_queue_packets
        self.dummy_size_bytes = dummy_size_bytes
        self.name = name

        self.queue: Deque[Packet] = deque()
        self.counters = CounterMonitor()
        self._running = False
        self._arrivals_since_last_interrupt: List[float] = []
        self._last_tx_time: Optional[float] = None
        self._max_queue_seen = 0

    # ------------------------------------------------------------ payload in
    def accept_payload(self, packet: Packet) -> None:
        """Entry point for payload packets from the protected subnet."""
        self.counters.increment("payload_received")
        self._arrivals_since_last_interrupt.append(self.simulator.now)
        if self.dummy_size_bytes is None:
            self.dummy_size_bytes = packet.size_bytes
        if (
            self.max_queue_packets is not None
            and len(self.queue) >= self.max_queue_packets
        ):
            self.counters.increment("payload_dropped")
            return
        self.queue.append(packet)
        self._max_queue_seen = max(self._max_queue_seen, len(self.queue))

    # --------------------------------------------------------------- control
    def start(self, initial_delay: Optional[float] = None) -> None:
        """Arm the padding timer.  The first interrupt fires after one interval."""
        if self._running:
            raise PaddingError(f"{self.name}: padding timer already running")
        self._running = True
        delay = self._next_interval() if initial_delay is None else float(initial_delay)
        self.simulator.schedule(delay, self._on_timer_interrupt, self.simulator.now + delay)

    def stop(self) -> None:
        """Stop padding after the currently scheduled interrupt (idempotent)."""
        self._running = False

    @property
    def running(self) -> bool:
        """Whether the padding timer is armed."""
        return self._running

    @property
    def queue_depth(self) -> int:
        """Number of payload packets currently waiting."""
        return len(self.queue)

    @property
    def max_queue_depth_seen(self) -> int:
        """High-water mark of the payload queue."""
        return self._max_queue_seen

    # ---------------------------------------------------------------- timer
    def _next_interval(self) -> float:
        return self.interval_generator.sample(self.rng)

    def _on_timer_interrupt(self, due_at: float) -> None:
        if not self._running:
            return
        # Reschedule the next interrupt relative to the *due* time so that the
        # interrupt delays do not accumulate into timer drift (this is how a
        # periodic kernel timer behaves).
        next_due = due_at + self._next_interval()
        self.simulator.schedule_at(max(next_due, self.simulator.now), self._on_timer_interrupt, next_due)

        delay = 0.0
        if self.disturbance is not None:
            delay = self.disturbance.sample_delay(
                self.rng,
                self._arrivals_since_last_interrupt,
                due_at,
                jitter_rng=self.jitter_rng,
                blocking_rng=self.blocking_rng,
            )
        self._arrivals_since_last_interrupt = [
            t for t in self._arrivals_since_last_interrupt if t > due_at
        ]
        send_time = due_at + delay
        if self._last_tx_time is not None:
            send_time = max(send_time, self._last_tx_time + _MIN_TX_SPACING_S)
        self._last_tx_time = send_time
        if send_time <= self.simulator.now:
            self._transmit()
        else:
            self.simulator.schedule_at(send_time, self._transmit)

    # ------------------------------------------------------------------- tx
    def _transmit(self) -> None:
        now = self.simulator.now
        if self.queue:
            packet = self.queue.popleft()
            packet.sent_at = now
            self.counters.increment("payload_sent")
        else:
            packet = Packet(
                created_at=now,
                kind=PacketKind.DUMMY,
                size_bytes=self.dummy_size_bytes or 512,
                flow_id=f"{self.name}-dummy",
            )
            packet.sent_at = now
            self.counters.increment("dummy_sent")
        self.counters.increment("packets_sent")
        self.output(packet)

    # ------------------------------------------------------------ statistics
    @property
    def packets_sent(self) -> int:
        """Total packets (payload + dummy) transmitted so far."""
        return self.counters.get("packets_sent")

    @property
    def dummy_fraction(self) -> float:
        """Fraction of transmitted packets that were dummies."""
        total = self.packets_sent
        if total == 0:
            raise PaddingError("no packets transmitted yet")
        return self.counters.get("dummy_sent") / total


class AdaptiveMaskingGateway(SenderGateway):
    """Adaptive traffic-masking baseline (Timmerman-style).

    Instead of padding at a fixed rate, the timer interval tracks an
    exponentially weighted estimate of the recent payload rate scaled by
    ``headroom`` (so some dummies are still sent), clamped to
    ``[min_interval, max_interval]``.  This conserves bandwidth but, as the
    paper's related-work discussion points out, it violates perfect secrecy:
    large-scale payload-rate changes become directly observable in the padded
    rate.  The ablation benchmarks use it as a "what if we save bandwidth"
    comparison point against CIT/VIT.
    """

    def __init__(
        self,
        *args,
        headroom: float = 1.5,
        min_interval: float = 1e-3,
        max_interval: float = 0.1,
        rate_smoothing: float = 0.2,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if headroom < 1.0:
            raise PaddingError("headroom must be >= 1 (padding rate >= payload rate)")
        if not 0.0 < rate_smoothing <= 1.0:
            raise PaddingError("rate_smoothing must be in (0, 1]")
        if min_interval <= 0.0 or max_interval <= min_interval:
            raise PaddingError("need 0 < min_interval < max_interval")
        self.headroom = float(headroom)
        self.min_interval = float(min_interval)
        self.max_interval = float(max_interval)
        self.rate_smoothing = float(rate_smoothing)
        self._rate_estimate_pps = 1.0 / self.max_interval
        self._last_arrival_time: Optional[float] = None

    def accept_payload(self, packet: Packet) -> None:
        now = self.simulator.now
        if self._last_arrival_time is not None:
            gap = now - self._last_arrival_time
            if gap > 0.0:
                instantaneous = 1.0 / gap
                self._rate_estimate_pps = (
                    self.rate_smoothing * instantaneous
                    + (1.0 - self.rate_smoothing) * self._rate_estimate_pps
                )
        self._last_arrival_time = now
        super().accept_payload(packet)

    def _next_interval(self) -> float:
        target_rate = max(self._rate_estimate_pps * self.headroom, 1.0 / self.max_interval)
        interval = 1.0 / target_rate
        return float(min(max(interval, self.min_interval), self.max_interval))


__all__ = ["SenderGateway", "AdaptiveMaskingGateway"]
