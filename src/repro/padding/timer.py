"""Padding-timer interval generators.

The only tunable parameter of the paper's padding mechanism is the time
between consecutive timer interrupts, ``T`` in equation (8):

* **CIT** — constant interval timer: ``T = tau`` exactly
  (``sigma_T = 0``); this is the common link-padding configuration.
* **VIT** — variable interval timer: ``T`` is a random variable with mean
  ``tau`` and standard deviation ``sigma_T > 0``.  The paper models ``T`` as
  normal; uniform, exponential and log-normal variants are provided for the
  distribution-family ablation (the theory only depends on the variance
  contributed by the timer, not the family).

All generators guarantee strictly positive intervals — a draw at or below the
floor is clipped, which slightly truncates extreme VIT settings but keeps the
simulation physically meaningful.  The exact (untruncated) ``sigma_T`` remains
available through :attr:`IntervalGenerator.std` for the analytical model.

RNG-stream contract (relied on by the vectorized simulation kernel)
-------------------------------------------------------------------
Every generator draws **at most one** variate per :meth:`IntervalGenerator.
sample` call, always from the ``rng`` it is handed, and never consults any
other source of randomness or mutable state.  Because a ``numpy``
``Generator`` fills array requests value-by-value from the same bit stream as
repeated scalar calls, :meth:`IntervalGenerator.sample_batch` is guaranteed to
return byte-identical values to ``size`` consecutive ``sample`` calls on the
same stream — that equivalence is what lets
:mod:`repro.sim.kernel` precompute whole firing-time arrays per epoch
(:func:`firing_times`) instead of rescheduling timer events one at a time,
without perturbing a single draw.  ``ConstantInterval`` consumes **zero**
draws per sample; any refactor that makes a family consume a different number
of draws per interval breaks cached captures and fingerprint stability tests.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.exceptions import PaddingError
from repro.units import PAPER_TIMER_INTERVAL_S

#: Smallest interval any generator will return (1 microsecond).  Protects the
#: event loop from zero-length timer periods when ``sigma_T`` is comparable to
#: ``tau``.
MIN_INTERVAL_S = 1e-6


class IntervalGenerator:
    """Interface for padding-timer interval distributions.

    Attributes
    ----------
    mean:
        Design mean interval ``tau`` in seconds.
    std:
        Design standard deviation ``sigma_T`` in seconds (0 for CIT).
    """

    #: Human-readable family name used in reports ("constant", "normal", ...).
    family: str = "abstract"

    def __init__(self, mean: float, std: float) -> None:
        if mean <= 0.0:
            raise PaddingError(f"timer mean interval must be > 0, got {mean!r}")
        if std < 0.0:
            raise PaddingError(f"timer interval std must be >= 0, got {std!r}")
        self.mean = float(mean)
        self.std = float(std)

    @property
    def variance(self) -> float:
        """Design variance ``sigma_T^2`` of the timer interval."""
        return self.std**2

    @property
    def is_constant(self) -> bool:
        """Whether this is a CIT timer (no interval randomness)."""
        return self.std == 0.0

    def sample(self, rng: np.random.Generator) -> float:
        """Draw the next timer interval (seconds, strictly positive)."""
        raise NotImplementedError

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` consecutive intervals as one array.

        Byte-identical to ``size`` successive :meth:`sample` calls on the same
        ``rng`` (see the module docstring for why the built-in families can
        vectorize this).  The base-class fallback literally loops ``sample``
        so that custom subclasses inherit the identity guarantee for free;
        built-in families override it with a single numpy array draw.
        """
        if size < 0:
            raise PaddingError(f"sample_batch size must be >= 0, got {size!r}")
        return np.array([self.sample(rng) for _ in range(size)], dtype=float)

    def _clip(self, value: float) -> float:
        return max(float(value), MIN_INTERVAL_S)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(mean={self.mean!r}, std={self.std!r})"


class ConstantInterval(IntervalGenerator):
    """CIT: every interval equals the design mean ``tau``."""

    family = "constant"

    def __init__(self, mean: float = PAPER_TIMER_INTERVAL_S) -> None:
        super().__init__(mean, 0.0)

    def sample(self, rng: np.random.Generator) -> float:
        return self.mean

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise PaddingError(f"sample_batch size must be >= 0, got {size!r}")
        return np.full(size, self.mean, dtype=float)


class NormalInterval(IntervalGenerator):
    """VIT with normally distributed intervals (the paper's VIT model)."""

    family = "normal"

    def __init__(self, mean: float = PAPER_TIMER_INTERVAL_S, std: float = 0.0) -> None:
        super().__init__(mean, std)

    def sample(self, rng: np.random.Generator) -> float:
        if self.std == 0.0:
            return self.mean
        return self._clip(rng.normal(self.mean, self.std))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise PaddingError(f"sample_batch size must be >= 0, got {size!r}")
        if self.std == 0.0:
            return np.full(size, self.mean, dtype=float)
        return np.maximum(rng.normal(self.mean, self.std, size=size), MIN_INTERVAL_S)


class UniformInterval(IntervalGenerator):
    """VIT with intervals uniform on ``[mean - w, mean + w]``.

    The half-width ``w`` is derived from the requested standard deviation
    (``w = std * sqrt(3)``), so generators of different families with the
    same ``(mean, std)`` are directly comparable in the ablation benchmarks.
    """

    family = "uniform"

    def __init__(self, mean: float = PAPER_TIMER_INTERVAL_S, std: float = 0.0) -> None:
        super().__init__(mean, std)
        self.half_width = self.std * math.sqrt(3.0)
        if self.half_width > self.mean:
            raise PaddingError(
                "uniform VIT half-width exceeds the mean interval; intervals "
                f"would be negative (mean={mean!r}, std={std!r})"
            )

    def sample(self, rng: np.random.Generator) -> float:
        if self.std == 0.0:
            return self.mean
        return self._clip(rng.uniform(self.mean - self.half_width, self.mean + self.half_width))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise PaddingError(f"sample_batch size must be >= 0, got {size!r}")
        if self.std == 0.0:
            return np.full(size, self.mean, dtype=float)
        draws = rng.uniform(self.mean - self.half_width, self.mean + self.half_width, size=size)
        return np.maximum(draws, MIN_INTERVAL_S)


class ExponentialInterval(IntervalGenerator):
    """VIT with shifted-exponential intervals.

    The interval is ``offset + Exp(scale)`` where ``scale`` equals the
    requested ``std`` and ``offset = mean - std`` (an exponential's standard
    deviation equals its mean).  Requires ``std <= mean`` so the offset stays
    non-negative.
    """

    family = "exponential"

    def __init__(self, mean: float = PAPER_TIMER_INTERVAL_S, std: float = 0.0) -> None:
        super().__init__(mean, std)
        if std > mean:
            raise PaddingError(
                f"exponential VIT requires std <= mean (got std={std!r}, mean={mean!r})"
            )
        self.offset = self.mean - self.std

    def sample(self, rng: np.random.Generator) -> float:
        if self.std == 0.0:
            return self.mean
        return self._clip(self.offset + rng.exponential(self.std))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise PaddingError(f"sample_batch size must be >= 0, got {size!r}")
        if self.std == 0.0:
            return np.full(size, self.mean, dtype=float)
        return np.maximum(self.offset + rng.exponential(self.std, size=size), MIN_INTERVAL_S)


class LognormalInterval(IntervalGenerator):
    """VIT with log-normally distributed intervals.

    Parameterised so the *linear-scale* mean and standard deviation match the
    requested values; always strictly positive, so no truncation bias.
    """

    family = "lognormal"

    def __init__(self, mean: float = PAPER_TIMER_INTERVAL_S, std: float = 0.0) -> None:
        super().__init__(mean, std)
        if std == 0.0:
            self._mu = math.log(mean)
            self._sigma = 0.0
        else:
            variance_ratio = (std / mean) ** 2
            self._sigma = math.sqrt(math.log1p(variance_ratio))
            self._mu = math.log(mean) - 0.5 * self._sigma**2

    def sample(self, rng: np.random.Generator) -> float:
        if self.std == 0.0:
            return self.mean
        return self._clip(rng.lognormal(self._mu, self._sigma))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if size < 0:
            raise PaddingError(f"sample_batch size must be >= 0, got {size!r}")
        if self.std == 0.0:
            return np.full(size, self.mean, dtype=float)
        return np.maximum(rng.lognormal(self._mu, self._sigma, size=size), MIN_INTERVAL_S)


_FAMILIES = {
    "constant": ConstantInterval,
    "cit": ConstantInterval,
    "normal": NormalInterval,
    "gaussian": NormalInterval,
    "uniform": UniformInterval,
    "exponential": ExponentialInterval,
    "lognormal": LognormalInterval,
}


def make_interval_generator(
    family: str,
    mean: float = PAPER_TIMER_INTERVAL_S,
    std: Optional[float] = None,
) -> IntervalGenerator:
    """Create an interval generator by family name.

    Parameters
    ----------
    family:
        One of ``constant``/``cit``, ``normal``/``gaussian``, ``uniform``,
        ``exponential``, ``lognormal`` (case-insensitive).
    mean:
        Mean interval ``tau``; defaults to the paper's 10 ms.
    std:
        Standard deviation ``sigma_T``.  Must be omitted or 0 for the
        constant family and must be provided (possibly 0) otherwise.
    """
    key = family.strip().lower()
    if key not in _FAMILIES:
        raise PaddingError(
            f"unknown timer family {family!r}; choose from {sorted(set(_FAMILIES))}"
        )
    cls = _FAMILIES[key]
    if cls is ConstantInterval:
        if std not in (None, 0, 0.0):
            raise PaddingError("a constant (CIT) timer cannot have a non-zero std")
        return ConstantInterval(mean)
    return cls(mean, 0.0 if std is None else float(std))


__all__ = [
    "MIN_INTERVAL_S",
    "IntervalGenerator",
    "ConstantInterval",
    "NormalInterval",
    "UniformInterval",
    "ExponentialInterval",
    "LognormalInterval",
    "make_interval_generator",
]
