"""Padding policies: named bundles of timer parameters.

A policy is what an operator configures: the padding type (CIT/VIT), the mean
interval (which fixes the padded-traffic rate and therefore the bandwidth
overhead) and, for VIT, the interval standard deviation ``sigma_T``.  The
experiment harness and the design-guideline helpers exchange policies rather
than raw interval generators so that reports can show meaningful labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import PaddingError
from repro.padding.timer import IntervalGenerator, make_interval_generator
from repro.units import PAPER_TIMER_INTERVAL_S


@dataclass(frozen=True)
class PaddingPolicy:
    """An operator-level description of a link-padding configuration.

    Attributes
    ----------
    name:
        Display name, e.g. ``"CIT-10ms"`` or ``"VIT-10ms-sd1ms"``.
    kind:
        ``"CIT"`` or ``"VIT"``.
    mean_interval:
        Timer mean interval ``tau`` in seconds.
    sigma_t:
        Timer interval standard deviation ``sigma_T`` in seconds (0 for CIT).
    family:
        VIT interval distribution family (ignored for CIT).
    """

    name: str
    kind: str
    mean_interval: float
    sigma_t: float = 0.0
    family: str = "normal"

    def __post_init__(self) -> None:
        if self.kind not in ("CIT", "VIT"):
            raise PaddingError(f"policy kind must be 'CIT' or 'VIT', got {self.kind!r}")
        if self.mean_interval <= 0.0:
            raise PaddingError("mean_interval must be positive")
        if self.sigma_t < 0.0:
            raise PaddingError("sigma_t must be >= 0")
        if self.kind == "CIT" and self.sigma_t != 0.0:
            raise PaddingError("a CIT policy must have sigma_t == 0")
        if self.kind == "VIT" and self.sigma_t == 0.0:
            raise PaddingError("a VIT policy must have sigma_t > 0")

    @property
    def padded_rate_pps(self) -> float:
        """Long-run padded-traffic rate implied by the mean interval."""
        return 1.0 / self.mean_interval

    @property
    def timer_variance(self) -> float:
        """``sigma_T^2`` of the policy's timer."""
        return self.sigma_t**2

    def make_timer(self) -> IntervalGenerator:
        """Instantiate the interval generator this policy describes."""
        if self.kind == "CIT":
            return make_interval_generator("constant", self.mean_interval)
        return make_interval_generator(self.family, self.mean_interval, self.sigma_t)

    def describe(self) -> str:
        """One-line human-readable summary used in experiment reports."""
        if self.kind == "CIT":
            return f"{self.name}: CIT, tau={self.mean_interval * 1e3:.3g} ms"
        return (
            f"{self.name}: VIT ({self.family}), tau={self.mean_interval * 1e3:.3g} ms, "
            f"sigma_T={self.sigma_t * 1e3:.3g} ms"
        )


def cit_policy(mean_interval: float = PAPER_TIMER_INTERVAL_S, name: Optional[str] = None) -> PaddingPolicy:
    """The paper's constant-interval-timer policy (default: 10 ms)."""
    label = name if name is not None else f"CIT-{mean_interval * 1e3:.0f}ms"
    return PaddingPolicy(name=label, kind="CIT", mean_interval=mean_interval, sigma_t=0.0)


def vit_policy(
    sigma_t: float,
    mean_interval: float = PAPER_TIMER_INTERVAL_S,
    family: str = "normal",
    name: Optional[str] = None,
) -> PaddingPolicy:
    """A variable-interval-timer policy with the given ``sigma_T``."""
    if sigma_t <= 0.0:
        raise PaddingError("a VIT policy needs sigma_t > 0; use cit_policy for sigma_t == 0")
    label = (
        name
        if name is not None
        else f"VIT-{mean_interval * 1e3:.0f}ms-sd{sigma_t * 1e3:.3g}ms"
    )
    return PaddingPolicy(
        name=label,
        kind="VIT",
        mean_interval=mean_interval,
        sigma_t=sigma_t,
        family=family,
    )


__all__ = ["PaddingPolicy", "cit_policy", "vit_policy"]
