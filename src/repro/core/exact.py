"""Exact Bayes detection rates for the Gaussian PIAT model.

The paper derives *approximate* closed forms (Theorems 1-3) because its goal
is to expose how the detection rate scales with ``r`` and ``n``.  Under the
same modelling assumptions (equations (12)-(15): the PIAT is normal with a
rate-independent mean and rate-dependent variance) the Bayes error can also
be computed exactly, which this module does.  The experiments report all
three — empirical, closed-form and exact — so the reader can see how much of
any discrepancy comes from the approximation versus from the Gaussian model
itself.

All functions assume two equiprobable payload rates, the paper's evaluation
setting; the exact expressions only depend on the variance ratio ``r``.
"""

from __future__ import annotations

import math

from scipy import stats as sps

from repro.core.variance_ratio import check_ratio
from repro.exceptions import AnalysisError


def _check_n(sample_size: float) -> int:
    n = int(sample_size)
    if n < 2:
        raise AnalysisError(f"sample size must be >= 2, got {sample_size!r}")
    return n


def detection_rate_mean_exact(r: float) -> float:
    """Exact Bayes detection rate using the sample mean.

    Both conditional sample-mean distributions are normal with the same mean
    and variances ``sigma_l^2/n`` and ``sigma_h^2/n``; the ``1/n`` factor
    cancels from the likelihood-ratio threshold, so the rate depends only on
    ``r`` — the formal statement of Theorem 1's observation that sample size
    does not help the adversary.
    """
    r = check_ratio(r)
    if r == 1.0:
        return 0.5
    # With sigma_l = 1 and sigma_h = sqrt(r), the densities cross at |x| = c:
    c = math.sqrt(r * math.log(r) / (r - 1.0))
    # P(correct | low)  = P(|X_l| < c),  X_l ~ N(0, 1)
    p_low = 2.0 * sps.norm.cdf(c) - 1.0
    # P(correct | high) = P(|X_h| > c),  X_h ~ N(0, r)
    p_high = 2.0 * sps.norm.sf(c / math.sqrt(r))
    # The Bayes rate is >= 0.5 exactly; clamp the ~1e-15 cancellation error
    # the two CDF evaluations can leave just below it for r -> 1.
    return min(max(0.5 * p_low + 0.5 * p_high, 0.5), 1.0)


def detection_rate_variance_exact(r: float, sample_size: float) -> float:
    """Exact Bayes detection rate using the unbiased sample variance.

    For a normal sample, ``(n-1) Y / sigma^2`` is chi-square with ``n-1``
    degrees of freedom.  The likelihood-ratio threshold between the two
    scaled chi-square densities is ``y* = sigma_l^2 r ln r / (r - 1)``, and
    the detection rate follows from the chi-square CDF on either side.
    """
    n = _check_n(sample_size)
    r = check_ratio(r)
    if r == 1.0:
        return 0.5
    dof = n - 1
    # Work in units of sigma_l^2 = 1, sigma_h^2 = r.
    threshold = r * math.log(r) / (r - 1.0)
    p_low = sps.chi2.cdf(dof * threshold, df=dof)           # Y_l <= y*
    p_high = sps.chi2.sf(dof * threshold / r, df=dof)       # Y_h  > y*
    # The Bayes rate is >= 0.5 exactly; clamp the ~1e-15 cancellation error
    # the two CDF evaluations can leave just below it for r -> 1.
    return min(max(0.5 * float(p_low) + 0.5 * float(p_high), 0.5), 1.0)


def detection_rate_entropy_exact(r: float, sample_size: float) -> float:
    """Exact Bayes detection rate for the idealised (plug-in) sample entropy.

    The differential entropy of a normal distribution is a strictly
    increasing function of its variance (``H = 0.5 ln(2 pi e sigma^2)``), so
    the plug-in entropy estimate ``0.5 ln(2 pi e Y)`` is a monotone transform
    of the sample variance ``Y``.  A Bayes decision is invariant under
    monotone transforms of the feature, hence the exact rate coincides with
    :func:`detection_rate_variance_exact`.  (The paper's *histogram*
    estimator is a different statistic with different finite-sample
    behaviour — that difference is what Theorem 3 and the empirical results
    capture.)
    """
    return detection_rate_variance_exact(r, sample_size)


__all__ = [
    "detection_rate_mean_exact",
    "detection_rate_variance_exact",
    "detection_rate_entropy_exact",
]
