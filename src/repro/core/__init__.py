"""Analytical framework: the paper's primary contribution.

Everything in this subpackage is pure computation (no simulation): the
Gaussian decomposition of the padded traffic's packet inter-arrival time, the
variance ratio ``r`` that governs detectability, the closed-form detection
rates of Theorems 1–3, exact numerical Bayes detection rates for the same
Gaussian model, inversion of the formulas into required sample sizes, and the
design guidelines that follow from them.

Typical use::

    from repro.core import GaussianPIATModel, detection_rate_variance, sample_size_for_detection

    model = GaussianPIATModel.from_components(
        tau=0.01, timer_variance=0.0, net_variance=0.0,
        gw_variance_low=4.5e-10, gw_variance_high=8.1e-10,
    )
    r = model.variance_ratio
    predicted = detection_rate_variance(r, sample_size=1000)
    needed = sample_size_for_detection(0.99, r, feature="variance")
"""

from repro.core.exact import (
    detection_rate_entropy_exact,
    detection_rate_mean_exact,
    detection_rate_variance_exact,
)
from repro.core.guidelines import (
    DesignGuideline,
    padding_bandwidth_overhead,
    recommend_policy,
    required_sigma_t,
    safe_observation_budget,
)
from repro.core.model import GaussianPIATModel
from repro.core.sample_size import (
    sample_size_for_detection,
    sample_size_vs_sigma_t,
    sigma_t_for_sample_size,
)
from repro.core.theorems import (
    detection_rate_entropy,
    detection_rate_mean,
    detection_rate_variance,
    entropy_constant,
    variance_constant,
)
from repro.core.variance_ratio import variance_ratio, variance_ratio_from_model

__all__ = [
    "GaussianPIATModel",
    "variance_ratio",
    "variance_ratio_from_model",
    "detection_rate_mean",
    "detection_rate_variance",
    "detection_rate_entropy",
    "variance_constant",
    "entropy_constant",
    "detection_rate_mean_exact",
    "detection_rate_variance_exact",
    "detection_rate_entropy_exact",
    "sample_size_for_detection",
    "sample_size_vs_sigma_t",
    "sigma_t_for_sample_size",
    "DesignGuideline",
    "required_sigma_t",
    "recommend_policy",
    "padding_bandwidth_overhead",
    "safe_observation_budget",
]
