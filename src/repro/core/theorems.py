"""Closed-form detection-rate estimates (Theorems 1-3 of the paper).

All three formulas take the variance ratio ``r`` (equation (16)) and, where
relevant, the sample size ``n``, and return an estimate of the detection rate
— the probability that the Bayes-optimal adversary identifies the payload
rate correctly.  Detection rates are bounded below by 0.5 (random guessing
between two equally likely rates) and above by 1.

Transcription note (also recorded in DESIGN.md and EXPERIMENTS.md): the
supplied text of equation (18) is garbled by OCR and does not satisfy the
properties the paper itself states for it (value 0.5 at ``r = 1``).  Theorem 1
is therefore implemented as ``1 - 1/(sqrt(r) + 1/sqrt(r))``, which has every
stated property — it equals 0.5 at ``r = 1``, increases with ``r``, is
independent of ``n`` — and tracks the exact Bayes rate for two equal-mean
normals (available in :mod:`repro.core.exact`) to within a few percentage
points over the relevant range of ``r``.
"""

from __future__ import annotations

import math

from repro.core.variance_ratio import check_ratio
from repro.exceptions import AnalysisError

#: Detection-rate floor for two equiprobable payload rates: random guessing.
DETECTION_FLOOR = 0.5

#: Treat ratios within this distance of 1 as exactly 1 (the constants in
#: Theorems 2 and 3 diverge as r -> 1, so the detection rate is the floor).
_RATIO_EPSILON = 1e-12


def _check_sample_size(n: float) -> float:
    n = float(n)
    if not n >= 2:
        raise AnalysisError(f"sample size must be >= 2, got {n!r}")
    return n


def detection_rate_mean(r: float) -> float:
    """Theorem 1: detection rate when the adversary uses the sample mean.

    Independent of the sample size: because both conditional distributions of
    the sample mean share the same mean ``tau`` and their variances shrink at
    the same ``1/n`` rate, collecting more packets does not help the
    adversary.  Equals the 0.5 floor at ``r = 1`` and grows slowly with ``r``.
    """
    r = check_ratio(r)
    sqrt_r = math.sqrt(r)
    return 1.0 - 1.0 / (sqrt_r + 1.0 / sqrt_r)


def variance_constant(r: float) -> float:
    """``C_Y`` of Theorem 2 (equation (21)).

    Diverges as ``r -> 1`` (no information: infinite samples needed).
    """
    r = check_ratio(r)
    if r - 1.0 < _RATIO_EPSILON:
        return math.inf
    log_r = math.log(r)
    lower_gap = 1.0 - log_r / (r - 1.0)          # distance of the threshold from sigma_l^2 side
    upper_gap = r * log_r / (r - 1.0) - 1.0      # distance from the sigma_h^2 side
    return 1.0 / (2.0 * lower_gap**2) + 1.0 / (2.0 * upper_gap**2)


def detection_rate_variance(r: float, sample_size: float) -> float:
    """Theorem 2: detection rate when the adversary uses the sample variance.

    ``v_Y ~= max(1 - C_Y / (n - 1), 0.5)`` — increases with both the sample
    size and the variance ratio, reaching 100 % in the limit of an infinitely
    long observation at a fixed payload rate.
    """
    n = _check_sample_size(sample_size)
    constant = variance_constant(r)
    if math.isinf(constant):
        return DETECTION_FLOOR
    return max(1.0 - constant / (n - 1.0), DETECTION_FLOOR)


def entropy_constant(r: float) -> float:
    """``C_H`` of Theorem 3 (equation (23))."""
    r = check_ratio(r)
    if r - 1.0 < _RATIO_EPSILON:
        return math.inf
    log_r = math.log(r)
    first = math.log(r * log_r / (r - 1.0))
    second = math.log((r - 1.0) / log_r)
    return 1.0 / (2.0 * first**2) + 1.0 / (2.0 * second**2)


def detection_rate_entropy(r: float, sample_size: float) -> float:
    """Theorem 3: detection rate when the adversary uses the sample entropy.

    ``v_H ~= max(1 - C_H / n, 0.5)``.
    """
    n = _check_sample_size(sample_size)
    constant = entropy_constant(r)
    if math.isinf(constant):
        return DETECTION_FLOOR
    return max(1.0 - constant / n, DETECTION_FLOOR)


def detection_rate(feature: str, r: float, sample_size: float = 2) -> float:
    """Dispatch helper: detection rate of the named feature statistic."""
    key = feature.strip().lower()
    if key == "mean":
        return detection_rate_mean(r)
    if key == "variance":
        return detection_rate_variance(r, sample_size)
    if key == "entropy":
        return detection_rate_entropy(r, sample_size)
    raise AnalysisError(f"no closed-form detection rate for feature {feature!r}")


__all__ = [
    "DETECTION_FLOOR",
    "detection_rate_mean",
    "variance_constant",
    "detection_rate_variance",
    "entropy_constant",
    "detection_rate_entropy",
    "detection_rate",
]
