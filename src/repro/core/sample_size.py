"""Sample-size arithmetic: how long must the adversary observe?

Figure 5(b) of the paper asks the design question in reverse: for a given VIT
setting, how many packet inter-arrival times does the adversary need to reach
a target detection rate?  Inverting Theorems 2 and 3 gives

``n_variance(p) = C_Y(r) / (1 - p) + 1``     and
``n_entropy(p)  = C_H(r) / n`` inverted to ``C_H(r) / (1 - p)``

which explode as ``sigma_T`` pushes ``r`` toward 1 — the quantitative version
of "VIT padding makes the attack need astronomically many packets".
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.core.theorems import detection_rate_mean, entropy_constant, variance_constant
from repro.core.variance_ratio import check_ratio, variance_ratio
from repro.exceptions import AnalysisError
from repro.padding.disturbance import InterruptDisturbance
from repro.units import PAPER_HIGH_RATE_PPS, PAPER_LOW_RATE_PPS


def _check_target(target_detection_rate: float) -> float:
    p = float(target_detection_rate)
    if not 0.5 < p < 1.0:
        raise AnalysisError(
            f"target detection rate must lie in (0.5, 1), got {target_detection_rate!r}"
        )
    return p


def sample_size_for_detection(
    target_detection_rate: float, r: float, feature: str = "variance"
) -> float:
    """Sample size needed to reach ``target_detection_rate`` with the given feature.

    Returns ``math.inf`` when the target is unreachable (``r = 1``, or any
    target above the Theorem 1 ceiling when the feature is the sample mean).
    """
    p = _check_target(target_detection_rate)
    r = check_ratio(r)
    key = feature.strip().lower()
    if key == "mean":
        # Sample size has no effect; either the asymptotic rate already meets
        # the target (any n works -> report the minimum useful sample) or it
        # never will.
        return 2.0 if detection_rate_mean(r) >= p else math.inf
    if key == "variance":
        constant = variance_constant(r)
        return math.inf if math.isinf(constant) else constant / (1.0 - p) + 1.0
    if key == "entropy":
        constant = entropy_constant(r)
        return math.inf if math.isinf(constant) else constant / (1.0 - p)
    raise AnalysisError(f"no sample-size formula for feature {feature!r}")


def sample_size_vs_sigma_t(
    sigma_t_values: Sequence[float],
    target_detection_rate: float = 0.99,
    feature: str = "variance",
    disturbance: Optional[InterruptDisturbance] = None,
    low_rate_pps: float = PAPER_LOW_RATE_PPS,
    high_rate_pps: float = PAPER_HIGH_RATE_PPS,
    net_variance: float = 0.0,
) -> np.ndarray:
    """The Figure 5(b) curve: required sample size as a function of ``sigma_T``.

    For each candidate timer standard deviation, the variance ratio is
    computed from the (calibrated) gateway disturbance model and the formula
    of :func:`sample_size_for_detection` is applied.
    """
    disturbance = disturbance if disturbance is not None else InterruptDisturbance()
    gw_low = disturbance.piat_variance(low_rate_pps)
    gw_high = disturbance.piat_variance(high_rate_pps)
    results = []
    for sigma_t in sigma_t_values:
        if sigma_t < 0.0:
            raise AnalysisError("sigma_T values must be >= 0")
        r = variance_ratio(gw_low, gw_high, timer_variance=sigma_t**2, net_variance=net_variance)
        results.append(sample_size_for_detection(target_detection_rate, r, feature=feature))
    return np.asarray(results, dtype=float)


def sigma_t_for_sample_size(
    minimum_required_sample: float,
    target_detection_rate: float = 0.99,
    feature: str = "variance",
    disturbance: Optional[InterruptDisturbance] = None,
    low_rate_pps: float = PAPER_LOW_RATE_PPS,
    high_rate_pps: float = PAPER_HIGH_RATE_PPS,
    net_variance: float = 0.0,
    sigma_t_bounds: tuple = (1e-7, 1.0),
) -> float:
    """Smallest ``sigma_T`` that forces the adversary to need at least the given sample.

    This is the design-guideline direction: the operator picks how large a
    sample they consider infeasible for an attacker to collect at a constant
    payload rate (e.g. 1e9 intervals ≈ four months of 10 ms padding), and the
    function returns the timer standard deviation that guarantees it.  Solved
    by bisection on the monotone map ``sigma_T -> n(p)``.
    """
    if minimum_required_sample <= 2:
        raise AnalysisError("minimum_required_sample must exceed 2")
    p = _check_target(target_detection_rate)
    disturbance = disturbance if disturbance is not None else InterruptDisturbance()
    lo, hi = (float(sigma_t_bounds[0]), float(sigma_t_bounds[1]))
    if not 0.0 < lo < hi:
        raise AnalysisError("sigma_t_bounds must satisfy 0 < low < high")

    def required_sample(sigma_t: float) -> float:
        sizes = sample_size_vs_sigma_t(
            [sigma_t],
            target_detection_rate=p,
            feature=feature,
            disturbance=disturbance,
            low_rate_pps=low_rate_pps,
            high_rate_pps=high_rate_pps,
            net_variance=net_variance,
        )
        return float(sizes[0])

    if required_sample(lo) >= minimum_required_sample:
        return lo
    if required_sample(hi) < minimum_required_sample:
        raise AnalysisError(
            "even the largest sigma_T in sigma_t_bounds does not force the "
            "requested sample size; widen the bounds"
        )
    for _ in range(200):
        mid = math.sqrt(lo * hi)  # geometric bisection: sigma_T spans decades
        if required_sample(mid) >= minimum_required_sample:
            hi = mid
        else:
            lo = mid
        if hi / lo < 1.0 + 1e-9:
            break
    return hi


__all__ = ["sample_size_for_detection", "sample_size_vs_sigma_t", "sigma_t_for_sample_size"]
