"""The variance ratio ``r`` (equation (16)).

Every closed-form detection rate in the paper depends on the padded traffic's
PIAT variances conditioned on the two payload rates only through their ratio

``r = sigma_h^2 / sigma_l^2
    = (sigma_T^2 + sigma_net^2 + sigma_gw,h^2) /
      (sigma_T^2 + sigma_net^2 + sigma_gw,l^2)  >= 1``

The formula makes the paper's design story explicit: the payload-dependent
gateway term ``sigma_gw`` is the leak, and both the timer variance
``sigma_T^2`` (VIT padding) and the network disturbance ``sigma_net^2``
(a noisy tap position) dilute it, pushing ``r`` toward 1 and the detection
rate toward the 50 % floor.
"""

from __future__ import annotations

from repro.exceptions import AnalysisError


def variance_ratio(
    gw_variance_low: float,
    gw_variance_high: float,
    timer_variance: float = 0.0,
    net_variance: float = 0.0,
) -> float:
    """Compute ``r`` from its four components (all in seconds squared).

    Parameters
    ----------
    gw_variance_low, gw_variance_high:
        PIAT variance contributed by the gateway disturbance under the low
        and high payload rates (``sigma_gw,l^2`` and ``sigma_gw,h^2``).
    timer_variance:
        ``sigma_T^2`` of the padding timer; 0 for CIT.
    net_variance:
        ``sigma_net^2`` added by the unprotected network at the tap position;
        0 when the adversary taps right at the sender gateway.

    Raises
    ------
    AnalysisError
        If any variance is negative, if the denominator is zero (a fully
        deterministic padded stream, for which the Gaussian model is
        degenerate), or if ``gw_variance_high < gw_variance_low`` (the model
        requires the high-rate disturbance to be at least as large).
    """
    for name, value in (
        ("gw_variance_low", gw_variance_low),
        ("gw_variance_high", gw_variance_high),
        ("timer_variance", timer_variance),
        ("net_variance", net_variance),
    ):
        if value < 0.0:
            raise AnalysisError(f"{name} must be >= 0, got {value!r}")
    if gw_variance_high < gw_variance_low:
        raise AnalysisError(
            "gw_variance_high must be >= gw_variance_low; the gateway disturbance "
            "grows with the payload rate in this model"
        )
    denominator = timer_variance + net_variance + gw_variance_low
    if denominator <= 0.0:
        raise AnalysisError(
            "total low-rate PIAT variance is zero; a perfectly deterministic "
            "padded stream has no Gaussian model (and nothing to detect)"
        )
    numerator = timer_variance + net_variance + gw_variance_high
    return float(numerator / denominator)


def variance_ratio_from_model(model) -> float:
    """``r`` of a :class:`repro.core.model.GaussianPIATModel` (convenience)."""
    return model.variance_ratio


def check_ratio(r: float) -> float:
    """Validate a variance ratio and return it as ``float``.

    Shared by the theorem implementations: ``r`` must be finite and >= 1.
    """
    r = float(r)
    if not r >= 1.0:
        raise AnalysisError(f"variance ratio must be >= 1, got {r!r}")
    if r == float("inf"):
        raise AnalysisError("variance ratio must be finite")
    return r


__all__ = ["variance_ratio", "variance_ratio_from_model", "check_ratio"]
