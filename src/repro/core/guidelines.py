"""Design guidelines for configuring a link-padding system.

The paper's stated goal is to let a manager "properly configure a system in
order to minimize the detection rate".  Concretely, the guidance that follows
from Theorems 1–3 and the evaluations is:

1. **CIT padding is unsafe** whenever the adversary can collect a moderately
   large sample anywhere on the path — even behind many noisy routers
   (Figure 8) — because ``r > 1`` whenever the gateway's jitter is
   payload-dependent.
2. **VIT padding works** because its timer variance ``sigma_T^2`` appears in
   both the numerator and the denominator of ``r``, driving it toward 1 and
   the required attack sample size toward infinity (Figure 5).
3. The price of padding is bandwidth: the padded rate must be at least the
   highest payload rate to bound queueing delay, and everything above the
   current payload rate is dummy overhead.

The helpers below quantify these statements so an operator can pick
``sigma_T`` (and see the overhead) for a target security level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.sample_size import sample_size_for_detection
from repro.core.theorems import (
    detection_rate_entropy,
    detection_rate_mean,
    detection_rate_variance,
)
from repro.core.variance_ratio import variance_ratio
from repro.exceptions import AnalysisError
from repro.padding.disturbance import InterruptDisturbance
from repro.padding.policies import PaddingPolicy, vit_policy
from repro.units import PAPER_HIGH_RATE_PPS, PAPER_LOW_RATE_PPS, PAPER_TIMER_INTERVAL_S


def padding_bandwidth_overhead(payload_rate_pps: float, padded_rate_pps: float) -> float:
    """Fraction of the padded stream that is dummy traffic.

    ``(padded - payload) / padded`` — e.g. the paper's configuration pads a
    10 pps payload to 100 pps, a 90 % overhead, and a 40 pps payload to
    100 pps, a 60 % overhead.
    """
    if padded_rate_pps <= 0.0:
        raise AnalysisError("padded rate must be positive")
    if payload_rate_pps < 0.0:
        raise AnalysisError("payload rate must be >= 0")
    if payload_rate_pps > padded_rate_pps:
        raise AnalysisError(
            "payload rate exceeds the padded rate; the padding queue would grow "
            "without bound (pick a shorter timer interval)"
        )
    return (padded_rate_pps - payload_rate_pps) / padded_rate_pps


def worst_case_detection_rate(
    sample_size: int,
    sigma_t: float,
    disturbance: Optional[InterruptDisturbance] = None,
    low_rate_pps: float = PAPER_LOW_RATE_PPS,
    high_rate_pps: float = PAPER_HIGH_RATE_PPS,
    net_variance: float = 0.0,
) -> float:
    """Highest detection rate over the three paper features for one configuration.

    The operator must assume the adversary picks the best feature; with
    ``net_variance = 0`` this is also the adversary's best tap position
    (right at the sender gateway), making the result a true worst case.
    """
    if sample_size < 2:
        raise AnalysisError("sample_size must be >= 2")
    if sigma_t < 0.0:
        raise AnalysisError("sigma_t must be >= 0")
    disturbance = disturbance if disturbance is not None else InterruptDisturbance()
    r = variance_ratio(
        disturbance.piat_variance(low_rate_pps),
        disturbance.piat_variance(high_rate_pps),
        timer_variance=sigma_t**2,
        net_variance=net_variance,
    )
    return max(
        detection_rate_mean(r),
        detection_rate_variance(r, sample_size),
        detection_rate_entropy(r, sample_size),
    )


def required_sigma_t(
    max_detection_rate: float,
    max_observable_sample: int,
    disturbance: Optional[InterruptDisturbance] = None,
    low_rate_pps: float = PAPER_LOW_RATE_PPS,
    high_rate_pps: float = PAPER_HIGH_RATE_PPS,
    net_variance: float = 0.0,
) -> float:
    """Smallest ``sigma_T`` keeping the worst-case detection rate below a budget.

    Parameters
    ----------
    max_detection_rate:
        Detection-rate budget in (0.5, 1), e.g. 0.6.
    max_observable_sample:
        The largest PIAT sample the operator believes an adversary could
        realistically collect while the payload stays at one rate.
    """
    if not 0.5 < max_detection_rate < 1.0:
        raise AnalysisError("max_detection_rate must lie in (0.5, 1)")
    if max_observable_sample < 2:
        raise AnalysisError("max_observable_sample must be >= 2")
    disturbance = disturbance if disturbance is not None else InterruptDisturbance()

    # The worst-case detection rate is monotone decreasing in sigma_T, so a
    # geometric bisection over a generous range finds the boundary.
    lo, hi = 1e-7, 1.0
    if (
        worst_case_detection_rate(
            max_observable_sample, lo, disturbance, low_rate_pps, high_rate_pps, net_variance
        )
        <= max_detection_rate
    ):
        return lo
    if (
        worst_case_detection_rate(
            max_observable_sample, hi, disturbance, low_rate_pps, high_rate_pps, net_variance
        )
        > max_detection_rate
    ):
        raise AnalysisError("no sigma_T below 1 s meets the requested budget")
    for _ in range(200):
        mid = math.sqrt(lo * hi)
        if (
            worst_case_detection_rate(
                max_observable_sample, mid, disturbance, low_rate_pps, high_rate_pps, net_variance
            )
            <= max_detection_rate
        ):
            hi = mid
        else:
            lo = mid
        if hi / lo < 1.0 + 1e-9:
            break
    return hi


@dataclass(frozen=True)
class DesignGuideline:
    """The outcome of a design run: a policy plus the security it buys."""

    policy: PaddingPolicy
    worst_case_detection: float
    attack_sample_for_99pct: float
    bandwidth_overhead_low: float
    bandwidth_overhead_high: float

    def summary(self) -> str:
        """Multi-line human-readable description for reports and examples."""
        attack = (
            "unbounded"
            if math.isinf(self.attack_sample_for_99pct)
            else f"{self.attack_sample_for_99pct:.3g} intervals"
        )
        return "\n".join(
            [
                self.policy.describe(),
                f"  worst-case detection rate        : {self.worst_case_detection:.3f}",
                f"  sample needed for 99% detection  : {attack}",
                f"  dummy overhead at low payload    : {self.bandwidth_overhead_low:.0%}",
                f"  dummy overhead at high payload   : {self.bandwidth_overhead_high:.0%}",
            ]
        )


def recommend_policy(
    max_detection_rate: float = 0.6,
    max_observable_sample: int = 100_000,
    mean_interval: float = PAPER_TIMER_INTERVAL_S,
    disturbance: Optional[InterruptDisturbance] = None,
    low_rate_pps: float = PAPER_LOW_RATE_PPS,
    high_rate_pps: float = PAPER_HIGH_RATE_PPS,
    net_variance: float = 0.0,
    safety_factor: float = 2.0,
) -> DesignGuideline:
    """End-to-end guideline: pick a VIT policy for a detection-rate budget.

    The recommended ``sigma_T`` is the minimum required value multiplied by
    ``safety_factor`` (default 2) to absorb modelling error, then capped at
    40 % of the mean interval so the timer stays physically reasonable.
    """
    if safety_factor < 1.0:
        raise AnalysisError("safety_factor must be >= 1")
    if high_rate_pps > 1.0 / mean_interval:
        raise AnalysisError(
            "the padded rate (1/mean_interval) must be at least the highest "
            "payload rate, otherwise payload queues without bound"
        )
    disturbance = disturbance if disturbance is not None else InterruptDisturbance()
    minimal = required_sigma_t(
        max_detection_rate,
        max_observable_sample,
        disturbance,
        low_rate_pps,
        high_rate_pps,
        net_variance,
    )
    sigma_t = min(minimal * safety_factor, 0.4 * mean_interval)
    policy = vit_policy(sigma_t=sigma_t, mean_interval=mean_interval)
    gw_low = disturbance.piat_variance(low_rate_pps)
    gw_high = disturbance.piat_variance(high_rate_pps)
    r = variance_ratio(gw_low, gw_high, timer_variance=sigma_t**2, net_variance=net_variance)
    return DesignGuideline(
        policy=policy,
        worst_case_detection=worst_case_detection_rate(
            max_observable_sample, sigma_t, disturbance, low_rate_pps, high_rate_pps, net_variance
        ),
        attack_sample_for_99pct=sample_size_for_detection(0.99, r, feature="entropy"),
        bandwidth_overhead_low=padding_bandwidth_overhead(low_rate_pps, policy.padded_rate_pps),
        bandwidth_overhead_high=padding_bandwidth_overhead(high_rate_pps, policy.padded_rate_pps),
    )


def safe_observation_budget(
    policy: PaddingPolicy,
    max_detection_rate: float = 0.6,
    disturbance: Optional[InterruptDisturbance] = None,
    low_rate_pps: float = PAPER_LOW_RATE_PPS,
    high_rate_pps: float = PAPER_HIGH_RATE_PPS,
    net_variance: float = 0.0,
) -> float:
    """Largest attack sample size for which a policy stays within the budget.

    For a CIT policy this is typically small (the attack succeeds quickly);
    for a well-chosen VIT policy it is astronomically large or infinite.
    Returned in *intervals*; multiply by the policy's mean interval for the
    observation time.
    """
    if not 0.5 < max_detection_rate < 1.0:
        raise AnalysisError("max_detection_rate must lie in (0.5, 1)")
    disturbance = disturbance if disturbance is not None else InterruptDisturbance()
    r = variance_ratio(
        disturbance.piat_variance(low_rate_pps),
        disturbance.piat_variance(high_rate_pps),
        timer_variance=policy.timer_variance,
        net_variance=net_variance,
    )
    if detection_rate_mean(r) > max_detection_rate:
        return 0.0
    budgets = []
    for feature in ("variance", "entropy"):
        needed = sample_size_for_detection(max_detection_rate, r, feature=feature)
        budgets.append(needed)
    return float(min(budgets))


__all__ = [
    "padding_bandwidth_overhead",
    "worst_case_detection_rate",
    "required_sigma_t",
    "DesignGuideline",
    "recommend_policy",
    "safe_observation_budget",
]
