"""The Gaussian decomposition of the padded traffic's PIAT (Section 4.1.2).

``X = T + delta_gw + delta_net`` with every term normal:

==================  =======================================  =================
term                meaning                                  distribution
==================  =======================================  =================
``T``               designed timer interval                  ``N(tau, sigma_T^2)``
``delta_gw``        gateway interrupt disturbance            ``N(0, sigma_gw^2)`` (payload-rate dependent)
``delta_net``       queueing noise on the unprotected path   ``N(0, sigma_net^2)``
==================  =======================================  =================

:class:`GaussianPIATModel` holds the resulting conditional PIAT distributions
``X_l ~ N(mu, sigma_l^2)`` and ``X_h ~ N(mu, sigma_h^2)``, knows its variance
ratio ``r``, can generate synthetic PIAT samples (for fast validation of the
adversary without the event simulator), and can be constructed directly from
the mechanistic system components (padding policy, gateway disturbance model,
path utilizations) so that theory and simulation share one parameterisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.variance_ratio import variance_ratio
from repro.exceptions import AnalysisError
from repro.network.delay_models import path_piat_variance
from repro.sim.random import derived_rng
from repro.padding.disturbance import InterruptDisturbance
from repro.padding.policies import PaddingPolicy
from repro.units import PAPER_HIGH_RATE_PPS, PAPER_LOW_RATE_PPS, PAPER_TIMER_INTERVAL_S


@dataclass(frozen=True)
class GaussianPIATModel:
    """Conditional Gaussian model of the padded traffic's inter-arrival time.

    Attributes
    ----------
    tau:
        Mean PIAT (the padding timer's mean interval), seconds.
    sigma_low:
        PIAT standard deviation when the payload rate is low.
    sigma_high:
        PIAT standard deviation when the payload rate is high.
    """

    tau: float
    sigma_low: float
    sigma_high: float

    def __post_init__(self) -> None:
        if self.tau <= 0.0:
            raise AnalysisError("tau must be positive")
        if self.sigma_low <= 0.0 or self.sigma_high <= 0.0:
            raise AnalysisError("PIAT standard deviations must be positive")
        if self.sigma_high < self.sigma_low:
            raise AnalysisError("sigma_high must be >= sigma_low")

    # ------------------------------------------------------------ properties
    @property
    def variance_low(self) -> float:
        """``sigma_l^2``."""
        return self.sigma_low**2

    @property
    def variance_high(self) -> float:
        """``sigma_h^2``."""
        return self.sigma_high**2

    @property
    def variance_ratio(self) -> float:
        """``r = sigma_h^2 / sigma_l^2`` (equation (16))."""
        return self.variance_high / self.variance_low

    @property
    def padded_rate_pps(self) -> float:
        """Long-run padded packet rate implied by ``tau``."""
        return 1.0 / self.tau

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_components(
        cls,
        gw_variance_low: float,
        gw_variance_high: float,
        timer_variance: float = 0.0,
        net_variance: float = 0.0,
        tau: float = PAPER_TIMER_INTERVAL_S,
    ) -> "GaussianPIATModel":
        """Build the model from the variances of equation (13)/(15)."""
        # variance_ratio() performs the non-negativity/ordering validation.
        variance_ratio(gw_variance_low, gw_variance_high, timer_variance, net_variance)
        low = timer_variance + net_variance + gw_variance_low
        high = timer_variance + net_variance + gw_variance_high
        return cls(tau=tau, sigma_low=float(np.sqrt(low)), sigma_high=float(np.sqrt(high)))

    @classmethod
    def from_system(
        cls,
        policy: PaddingPolicy,
        disturbance: Optional[InterruptDisturbance] = None,
        low_rate_pps: float = PAPER_LOW_RATE_PPS,
        high_rate_pps: float = PAPER_HIGH_RATE_PPS,
        path_utilizations: Sequence[float] = (),
        hop_service_time: float = 0.0,
        queueing_model: str = "md1",
    ) -> "GaussianPIATModel":
        """Build the model from the mechanistic system description.

        Parameters
        ----------
        policy:
            The padding policy (provides ``tau`` and ``sigma_T``).
        disturbance:
            Gateway disturbance model; defaults to the calibrated
            :class:`~repro.padding.disturbance.InterruptDisturbance`.
        low_rate_pps, high_rate_pps:
            The two candidate payload rates.
        path_utilizations:
            Total utilization of every hop between the sender gateway and the
            adversary's tap (empty when the tap sits at the gateway output).
        hop_service_time:
            Per-hop serialisation time of a padded packet; required when
            ``path_utilizations`` is non-empty.
        queueing_model:
            ``"md1"`` or ``"mm1"`` — forwarded to
            :func:`repro.network.delay_models.path_piat_variance`.
        """
        if high_rate_pps <= low_rate_pps:
            raise AnalysisError("high_rate_pps must exceed low_rate_pps")
        disturbance = disturbance if disturbance is not None else InterruptDisturbance()
        utilizations = list(path_utilizations)
        if utilizations:
            if hop_service_time <= 0.0:
                raise AnalysisError(
                    "hop_service_time must be positive when path_utilizations is given"
                )
            net_variance = path_piat_variance(
                utilizations, [hop_service_time] * len(utilizations), model=queueing_model
            )
        else:
            net_variance = 0.0
        return cls.from_components(
            gw_variance_low=disturbance.piat_variance(low_rate_pps),
            gw_variance_high=disturbance.piat_variance(high_rate_pps),
            timer_variance=policy.timer_variance,
            net_variance=net_variance,
            tau=policy.mean_interval,
        )

    # -------------------------------------------------------------- sampling
    def sample_intervals(
        self,
        rate_label: str,
        n_intervals: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Draw synthetic PIATs for one payload-rate class.

        Used for fast, simulator-free validation of the adversary pipeline
        and for property-based tests; intervals are clipped at a tiny
        positive floor exactly like
        :func:`repro.traffic.traces.generate_piat_trace`.
        """
        if n_intervals < 1:
            raise AnalysisError("n_intervals must be >= 1")
        sigma = self._sigma_for(rate_label)
        generator = rng if rng is not None else derived_rng(f"model-{rate_label}")
        draws = generator.normal(self.tau, sigma, size=n_intervals)
        return np.maximum(draws, 1e-9)

    def pdf(self, rate_label: str, x: np.ndarray) -> np.ndarray:
        """Model PDF of the PIAT under the given payload-rate class."""
        from scipy.stats import norm

        sigma = self._sigma_for(rate_label)
        return norm.pdf(np.asarray(x, dtype=float), loc=self.tau, scale=sigma)

    def _sigma_for(self, rate_label: str) -> float:
        label = str(rate_label).strip().lower()
        if label in ("low", "l"):
            return self.sigma_low
        if label in ("high", "h"):
            return self.sigma_high
        raise AnalysisError(f"rate_label must be 'low' or 'high', got {rate_label!r}")

    def describe(self) -> str:
        """One-line summary used in experiment reports."""
        return (
            f"PIAT ~ N({self.tau * 1e3:.3g} ms, sigma_l={self.sigma_low * 1e6:.3g} us, "
            f"sigma_h={self.sigma_high * 1e6:.3g} us), r={self.variance_ratio:.4f}"
        )


__all__ = ["GaussianPIATModel"]
