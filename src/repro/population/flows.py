"""Flow populations: placement, rate mix, and the sweep grids they compile to.

A *flow* is one protected sender: it lives in an AS (placed with probability
proportional to the AS's degree, mirroring how address space concentrates in
well-connected networks) and transmits payload at one of a small number of
rate classes.  Flows in the same AS share that AS's sender gateway, so the
population compiles into *per-AS* sweep cells rather than per-flow ones — a
thousand flows cost as many cells as there are inhabited ASes:

* :func:`hybrid_population_grid` — one binary (lowest-vs-highest rate) cell
  per inhabited AS.  In hybrid mode all ASes share **one** cached gateway
  capture (the gateway configuration is identical everywhere; only the
  rendered path differs), reusing the two-level capture machinery and the
  vectorized kernel.
* :func:`multiclass_population_grid` — one analytic multi-rate cell per
  distinct path depth, carrying the full rate mix through
  ``SweepCell.rate_classes`` so the results include confusion matrices.

Placement and rate assignment draw from the declared ``population-placement``
and ``population-mix`` streams.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.experiments.base import CollectionMode, ScenarioConfig
from repro.population.topology import ASTopology
from repro.sim.random import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.runner import GridSpec


@dataclass(frozen=True)
class RateClass:
    """One payload-rate class of the population mix."""

    rate_pps: float
    weight: float

    def __post_init__(self) -> None:
        if self.rate_pps <= 0.0:
            raise ConfigurationError(f"rate_pps={self.rate_pps!r} must be positive")
        if self.weight <= 0.0:
            raise ConfigurationError(f"weight={self.weight!r} must be positive")


@dataclass(frozen=True)
class Flow:
    """One protected sender: its id, home AS, and payload-rate class."""

    flow_id: int
    as_id: int
    rate_pps: float


@dataclass(frozen=True)
class FlowPopulation:
    """A placed population: the topology plus every flow's AS and rate."""

    topology: ASTopology
    flows: Tuple[Flow, ...]

    @property
    def rate_classes(self) -> Tuple[float, ...]:
        """The distinct payload rates present, sorted ascending."""
        return tuple(sorted(set(flow.rate_pps for flow in self.flows)))

    def sender_ases(self) -> Tuple[int, ...]:
        """ASes with at least one flow, sorted by id."""
        return tuple(sorted(set(flow.as_id for flow in self.flows)))

    def flows_per_as(self) -> Dict[int, int]:
        """Number of flows homed in each inhabited AS."""
        counts: Dict[int, int] = {}
        for flow in self.flows:
            counts[flow.as_id] = counts.get(flow.as_id, 0) + 1
        return dict(sorted(counts.items()))

    def cell_sizes(self) -> Dict[Tuple[int, str], int]:
        """Anonymity-cell sizes: flows per ``(AS, rate label)`` pair.

        Flows sharing a gateway *and* a rate class are indistinguishable to
        the rate-classifying adversary — they form one anonymity set.
        """
        sizes: Dict[Tuple[int, str], int] = {}
        for flow in self.flows:
            cell = (flow.as_id, f"{flow.rate_pps:g}")
            sizes[cell] = sizes.get(cell, 0) + 1
        return dict(sorted(sizes.items()))


def assemble_population(
    topology: ASTopology, n_flows: int, rate_mix: Sequence[RateClass], seed: int
) -> FlowPopulation:
    """Place ``n_flows`` senders onto the topology and assign their rates.

    Placement weight is the AS's degree (the core AS is excluded — it hosts
    the receiver gateway, not senders); rate classes are drawn from the mix's
    normalised weights.  Both draws come from their own declared stream, so
    changing the mix never re-shuffles the placement and vice versa.
    """
    if n_flows < 1:
        raise ConfigurationError(f"n_flows={n_flows!r} must be >= 1")
    if not rate_mix:
        raise ConfigurationError("rate_mix must be non-empty")
    rates = [rate_class.rate_pps for rate_class in rate_mix]
    if len(set(rates)) != len(rates):
        raise ConfigurationError(f"rate_mix rates {rates!r} contain duplicates")

    degrees = topology.degrees()
    candidates = [
        as_id for as_id in range(topology.spec.n_as) if as_id != topology.core_as
    ]
    weights = np.asarray([degrees[as_id] for as_id in candidates], dtype=float)
    placement_p = weights / weights.sum()

    mix_weights = np.asarray([rate_class.weight for rate_class in rate_mix], dtype=float)
    mix_p = mix_weights / mix_weights.sum()

    streams = RandomStreams(seed=seed)
    placement_rng = streams.get("population-placement")
    mix_rng = streams.get("population-mix")
    homes = placement_rng.choice(np.asarray(candidates), size=n_flows, p=placement_p)
    flow_rates = mix_rng.choice(np.asarray(rates, dtype=float), size=n_flows, p=mix_p)

    flows = tuple(
        Flow(flow_id=i, as_id=int(homes[i]), rate_pps=float(flow_rates[i]))
        for i in range(n_flows)
    )
    return FlowPopulation(topology=topology, flows=flows)


def _binary_base(scenario: ScenarioConfig, rates: Tuple[float, ...]) -> ScenarioConfig:
    """The base scenario with the mix's extreme rates as the binary pair."""
    if len(rates) < 2:
        raise ConfigurationError(
            f"a population needs at least two distinct rates, got {rates!r}"
        )
    return replace(scenario, low_rate_pps=rates[0], high_rate_pps=rates[-1])


def hybrid_population_grid(
    population: FlowPopulation,
    scenario: ScenarioConfig,
    *,
    sample_sizes: Sequence[int],
    trials: int,
    mode: CollectionMode = CollectionMode.HYBRID,
    seeds: Sequence[int] = (2003,),
    prefix: str = "population",
) -> "GridSpec":
    """One binary sweep cell per inhabited AS, sharing a single gateway capture.

    Every AS's gateway runs the identical padding configuration — only the
    rendered AS-path (hops, utilization) differs — so in hybrid mode all
    per-AS cells are children of **one** :class:`CaptureSpec` per sweep seed,
    with per-AS noise salts keeping the path noise independent.
    """
    from repro.runner import GridPoint, GridSpec

    base = _binary_base(scenario, population.rate_classes)
    points = [
        GridPoint(
            key=f"{prefix}/as={as_id}",
            scenario=population.topology.scenario_for(base, as_id),
            shared_capture=True,
            capture_key=f"{prefix}/gateway-capture",
            noise_offsets=(f"train-as{as_id}", f"test-as{as_id}"),
        )
        for as_id in population.sender_ases()
    ]
    return GridSpec.from_points(
        prefix,
        points,
        seeds=tuple(seeds),
        sample_sizes=tuple(sample_sizes),
        trials=trials,
        mode=mode,
    )


def multiclass_population_grid(
    population: FlowPopulation,
    scenario: ScenarioConfig,
    *,
    sample_sizes: Sequence[int],
    trials: int,
    seeds: Sequence[int] = (2003,),
    max_depth_points: int = 3,
    prefix: str = "population",
) -> "GridSpec":
    """Analytic multi-rate cells at representative path depths.

    The multiclass adversary's difficulty depends on the rendered path, which
    the population summarises by its AS-path depth; one cell per distinct
    depth (up to ``max_depth_points``, evenly subsampled) carries the full
    rate mix via ``SweepCell.rate_classes``, so its results include the
    ``matrix[true][predicted]`` confusion counts.
    """
    from repro.runner import GridPoint, GridSpec

    if max_depth_points < 1:
        raise ConfigurationError(
            f"max_depth_points={max_depth_points!r} must be >= 1"
        )
    rates = population.rate_classes
    if len(rates) < 3:
        raise ConfigurationError(
            f"the multi-rate grid needs at least three rate classes, got {rates!r}"
        )
    base = _binary_base(scenario, rates)
    topology = population.topology

    by_depth: Dict[int, int] = {}
    for as_id in population.sender_ases():
        depth = topology.path_depth(as_id)
        # The representative AS of a depth is the lowest inhabited id there.
        if depth not in by_depth:
            by_depth[depth] = as_id
    depths = sorted(by_depth)
    if len(depths) > max_depth_points:
        picks = np.linspace(0, len(depths) - 1, max_depth_points)
        depths = sorted(set(depths[int(round(i))] for i in picks))

    points: List[GridPoint] = []
    for depth in depths:
        points.append(
            GridPoint(
                key=f"{prefix}/mix/depth={depth}",
                scenario=topology.scenario_for(base, by_depth[depth]),
                rate_classes=rates,
            )
        )
    return GridSpec.from_points(
        f"{prefix}/mix",
        points,
        seeds=tuple(seeds),
        sample_sizes=tuple(sample_sizes),
        trials=trials,
        mode=CollectionMode.ANALYTIC,
    )


__all__ = [
    "Flow",
    "FlowPopulation",
    "RateClass",
    "assemble_population",
    "hybrid_population_grid",
    "multiclass_population_grid",
]
