"""Deterministic multi-AS topology generation.

The generator grows an autonomous-system graph by preferential attachment —
each new AS connects to ``m_attach`` existing ASes sampled proportionally to
their degree — which reproduces the heavy-tailed degree structure of measured
AS graphs.  Edges carry a ``relationship`` label in the style of CAIDA's
AS-relationship datasets: the first link a new AS buys is a
``customer-provider`` edge (the new AS is the customer), later links are
``peer`` with probability ``peer_fraction``.

The highest-degree AS is the *core*: the receiver gateway (GW2 of the
paper's Figure 3) sits there, and every sender's traffic follows the shortest
AS-path towards it.  A sender's AS-path renders into the existing single-path
machinery — a :class:`~repro.experiments.base.ScenarioConfig` whose hop count
and cross-traffic utilization summarise the traversed ASes, and a
:class:`~repro.network.topology.TopologySpec` that
:func:`~repro.network.topology.build_path` can materialise into a wired
:class:`~repro.network.path.UnprotectedPath`.

All randomness is drawn from two declared streams of one
:class:`~repro.sim.random.RandomStreams` registry: ``population-topology``
(growth and edge labels) and ``population-utilization`` (per-AS load), so the
graph is a pure function of the spec and regenerating it can never perturb
any other stream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.exceptions import ConfigurationError
from repro.experiments.base import ScenarioConfig
from repro.network.link import PacketSink
from repro.network.path import UnprotectedPath
from repro.network.topology import TopologySpec, build_path
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

#: Edge relationship labels (CAIDA convention: ``customer-provider`` edges
#: are stored with the customer first, ``peer`` edges are symmetric).
CUSTOMER_PROVIDER = "customer-provider"
PEER = "peer"


@dataclass(frozen=True)
class ASGraphSpec:
    """Declarative description of a generated multi-AS topology.

    Attributes
    ----------
    n_as:
        Number of autonomous systems.
    m_attach:
        Links each new AS creates when it joins (preferential attachment).
    peer_fraction:
        Probability that an attachment link beyond the first is a ``peer``
        edge rather than a ``customer-provider`` edge.
    hops_per_as:
        Router hops the padded stream traverses inside each AS on its path.
    min_utilization, max_utilization:
        Range of the per-AS shared-link utilization (uniform draw).
    link_rate_bps:
        Output-link capacity of every router.
    seed:
        Master seed of the ``population-*`` streams.
    """

    n_as: int = 12
    m_attach: int = 2
    peer_fraction: float = 0.25
    hops_per_as: int = 2
    min_utilization: float = 0.08
    max_utilization: float = 0.3
    link_rate_bps: float = 80e6
    seed: int = 2003

    def __post_init__(self) -> None:
        if self.n_as < 3:
            raise ConfigurationError(f"n_as={self.n_as!r} must be >= 3")
        if not 1 <= self.m_attach <= self.n_as - 2:
            raise ConfigurationError(
                f"m_attach={self.m_attach!r} must lie in [1, n_as - 2]"
            )
        if not 0.0 <= self.peer_fraction <= 1.0:
            raise ConfigurationError(
                f"peer_fraction={self.peer_fraction!r} must lie in [0, 1]"
            )
        if self.hops_per_as < 1:
            raise ConfigurationError(f"hops_per_as={self.hops_per_as!r} must be >= 1")
        if not 0.0 <= self.min_utilization <= self.max_utilization < 1.0:
            raise ConfigurationError(
                f"utilization range [{self.min_utilization!r}, "
                f"{self.max_utilization!r}] must satisfy 0 <= min <= max < 1"
            )
        if self.link_rate_bps <= 0:
            raise ConfigurationError(
                f"link_rate_bps={self.link_rate_bps!r} must be positive"
            )


@dataclass(frozen=True)
class ASTopology:
    """A generated AS graph: edges, per-AS load, and the core AS.

    ``edges`` holds ``(a, b, relationship)`` triples in creation order;
    ``customer-provider`` edges store the customer first.  ``utilizations``
    is indexed by AS id.  ``core_as`` is the highest-degree AS (lowest id on
    ties) — the receiver gateway's AS that every sender routes towards.
    """

    spec: ASGraphSpec
    edges: Tuple[Tuple[int, int, str], ...]
    utilizations: Tuple[float, ...]
    core_as: int

    # --------------------------------------------------------------- views
    def degrees(self) -> Dict[int, int]:
        """Degree of every AS."""
        degree = {as_id: 0 for as_id in range(self.spec.n_as)}
        for a, b, _ in self.edges:
            degree[a] += 1
            degree[b] += 1
        return degree

    def adjacency(self) -> Dict[int, List[int]]:
        """Sorted adjacency lists (sorted so traversals are deterministic)."""
        neighbours: Dict[int, List[int]] = {as_id: [] for as_id in range(self.spec.n_as)}
        for a, b, _ in self.edges:
            neighbours[a].append(b)
            neighbours[b].append(a)
        return {as_id: sorted(adj) for as_id, adj in neighbours.items()}

    def as_path(self, src: int) -> Tuple[int, ...]:
        """The shortest AS-path from ``src`` to the core (BFS, lowest-id ties).

        The tie-break is the sorted adjacency order, so the path depends only
        on the graph — never on dict iteration or networkx internals.
        """
        if not 0 <= src < self.spec.n_as:
            raise ConfigurationError(f"AS {src!r} is not in the topology")
        if src == self.core_as:
            return (src,)
        adjacency = self.adjacency()
        parent: Dict[int, int] = {src: src}
        frontier = [src]
        while frontier and self.core_as not in parent:
            next_frontier: List[int] = []
            for node in frontier:
                for neighbour in adjacency[node]:
                    if neighbour not in parent:
                        parent[neighbour] = node
                        next_frontier.append(neighbour)
            frontier = next_frontier
        if self.core_as not in parent:
            raise ConfigurationError(
                f"AS {src!r} has no path to the core AS {self.core_as!r}"
            )
        path = [self.core_as]
        while path[-1] != src:
            path.append(parent[path[-1]])
        return tuple(reversed(path))

    def path_depth(self, src: int) -> int:
        """Number of inter-AS hops from ``src`` to the core."""
        return len(self.as_path(src)) - 1

    def path_utilization(self, src: int) -> float:
        """Mean per-AS utilization over every AS the stream traverses.

        The sender's own AS counts too — its gateway-to-border hops share
        that AS's links — which is what differentiates senders sitting at
        the same depth.  A sender inside the core is tapped at its gateway
        and reports zero.
        """
        path = self.as_path(src)
        if len(path) < 2:
            return 0.0
        traversed = [self.utilizations[as_id] for as_id in path]
        return round(sum(traversed) / len(traversed), 4)

    # ----------------------------------------------------------- rendering
    def scenario_for(self, base: ScenarioConfig, src: int) -> ScenarioConfig:
        """Render ``src``'s AS-path into a single-path scenario.

        The path collapses into the existing per-hop model: ``hops_per_as``
        router hops per traversed AS (the sender's own AS included), all at
        the path's mean utilization and the spec's link rate.  This is what
        lets population cells reuse the calibrated M/D/1 noise model and the
        vectorized capture kernel unchanged.
        """
        depth = self.path_depth(src)
        return replace(
            base,
            n_hops=self.spec.hops_per_as * (depth + 1) if depth else 0,
            cross_utilization=self.path_utilization(src) if depth else 0.0,
            link_rate_bps=self.spec.link_rate_bps,
        )


def generate_as_topology(spec: ASGraphSpec) -> ASTopology:
    """Grow the AS graph by preferential attachment, deterministically.

    The first ``m_attach + 1`` ASes form a fully-meshed peering core; each
    later AS attaches to ``m_attach`` distinct earlier ASes sampled from the
    degree-proportional "repeated nodes" list.  The same spec always yields
    the same graph: the only entropy source is the ``population-topology``
    stream, and node ids are assigned in creation order.
    """
    streams = RandomStreams(seed=spec.seed)
    growth_rng = streams.get("population-topology")
    utilization_rng = streams.get("population-utilization")

    edges: List[Tuple[int, int, str]] = []
    # Degree-proportional sampling: each endpoint appears once per incident
    # edge, so a uniform index draw is a draw proportional to degree.
    repeated: List[int] = []
    core_size = spec.m_attach + 1
    for a in range(core_size):
        for b in range(a + 1, core_size):
            edges.append((a, b, PEER))
            repeated.extend((a, b))

    for new_as in range(core_size, spec.n_as):
        targets: List[int] = []
        while len(targets) < spec.m_attach:
            pick = repeated[int(growth_rng.integers(len(repeated)))]
            if pick not in targets:
                targets.append(pick)
        for rank, target in enumerate(targets):
            if rank == 0:
                relationship = CUSTOMER_PROVIDER
            else:
                relationship = (
                    PEER
                    if float(growth_rng.random()) < spec.peer_fraction
                    else CUSTOMER_PROVIDER
                )
            edges.append((new_as, target, relationship))
            repeated.extend((new_as, target))

    utilizations = tuple(
        round(float(u), 4)
        for u in utilization_rng.uniform(
            spec.min_utilization, spec.max_utilization, size=spec.n_as
        )
    )

    degree = {as_id: 0 for as_id in range(spec.n_as)}
    for a, b, _ in edges:
        degree[a] += 1
        degree[b] += 1
    core_as = max(sorted(degree), key=lambda as_id: degree[as_id])

    return ASTopology(
        spec=spec, edges=tuple(edges), utilizations=utilizations, core_as=core_as
    )


def as_graph(topology: ASTopology) -> nx.Graph:
    """The :mod:`networkx` view of an AS topology for inspection and docs.

    Nodes carry ``role`` (``"core"``/``"edge"``) and ``utilization``
    attributes; edges carry their ``relationship`` label.  The companion of
    :func:`repro.network.topology.topology_graph` one level up the hierarchy:
    that one draws the routers inside a single path, this one draws the AS
    graph those paths are routed over.
    """
    graph = nx.Graph(name=f"as-graph-{topology.spec.seed}")
    for as_id in range(topology.spec.n_as):
        graph.add_node(
            as_id,
            role="core" if as_id == topology.core_as else "edge",
            utilization=topology.utilizations[as_id],
        )
    for a, b, relationship in topology.edges:
        graph.add_edge(a, b, relationship=relationship)
    return graph


def sender_topology_spec(topology: ASTopology, src: int) -> TopologySpec:
    """The :class:`TopologySpec` of one sender's rendered AS-path.

    Bridges the population layer into the existing topology machinery: the
    returned spec names its streams ``population-as<k>-...``, which stays
    inside the declared ``population-*`` namespace.
    """
    depth = topology.path_depth(src)
    return TopologySpec(
        name=f"population-as{src}",
        n_hops=topology.spec.hops_per_as * (depth + 1) if depth else 0,
        link_rate_bps=topology.spec.link_rate_bps,
        cross_utilization=topology.path_utilization(src) if depth else 0.0,
    )


def build_sender_path(
    topology: ASTopology,
    src: int,
    simulator: Simulator,
    exit_sink: PacketSink,
    streams: Optional[RandomStreams] = None,
) -> UnprotectedPath:
    """Materialise one sender's AS-path as a wired :class:`UnprotectedPath`."""
    return build_path(
        sender_topology_spec(topology, src), simulator, exit_sink, streams=streams
    )


__all__ = [
    "CUSTOMER_PROVIDER",
    "PEER",
    "ASGraphSpec",
    "ASTopology",
    "as_graph",
    "build_sender_path",
    "generate_as_topology",
    "sender_topology_spec",
]
