"""Population-scale topology subsystem.

The paper evaluates one protected sender at a time; a realistic deployment
protects a *population* of flows scattered across an internetwork.  This
package generates deterministic multi-AS topologies (preferential-attachment
degree structure with customer/provider and peer edge labels, in the style of
CAIDA AS-relationship graphs), places hundreds-to-thousands of flows onto
shared sender gateways, and evaluates the traffic-analysis attack against the
whole population:

* :mod:`repro.population.topology` — the AS-graph generator and the rendering
  of each sender's AS-path into the existing per-hop path machinery.
* :mod:`repro.population.flows` — flow placement and the per-AS / multi-rate
  sweep grids.
* :mod:`repro.population.metrics` — anonymity-set sizes, the fraction of the
  population an adversary identifies at a given sample size, and summed
  multi-rate confusion matrices.
* :mod:`repro.population.experiment` — the registered ``population``
  experiment tying it all together.

All randomness flows through :class:`~repro.sim.random.RandomStreams` under
the declared ``population-*`` stream names, so the whole subsystem is
reproducible from one integer seed and ``repro check`` can audit every call
site.
"""

from repro.population.topology import (
    ASGraphSpec,
    ASTopology,
    as_graph,
    build_sender_path,
    generate_as_topology,
    sender_topology_spec,
)
from repro.population.flows import (
    Flow,
    FlowPopulation,
    RateClass,
    assemble_population,
    hybrid_population_grid,
    multiclass_population_grid,
)
from repro.population.metrics import (
    aggregate_confusion,
    anonymity_set_distribution,
    anonymity_summary,
    identification_curve,
)
from repro.population.experiment import (
    PopulationConfig,
    PopulationExperiment,
    PopulationResult,
)

__all__ = [
    "ASGraphSpec",
    "ASTopology",
    "Flow",
    "FlowPopulation",
    "PopulationConfig",
    "PopulationExperiment",
    "PopulationResult",
    "RateClass",
    "aggregate_confusion",
    "anonymity_set_distribution",
    "anonymity_summary",
    "as_graph",
    "assemble_population",
    "build_sender_path",
    "generate_as_topology",
    "hybrid_population_grid",
    "identification_curve",
    "multiclass_population_grid",
    "sender_topology_spec",
]
