"""Population-level anonymity metrics.

Three views of "how exposed is the population":

* **Anonymity sets** — flows that share a gateway (an AS) *and* a rate class
  are indistinguishable to the rate-classifying adversary; the distribution
  of those set sizes is the population's structural protection, independent
  of how well the attack performs.
* **Identification curve** — the expected fraction of the population whose
  rate class the adversary identifies at sample size ``n``: each AS's flows
  weighted by that AS's measured detection rate.
* **Confusion matrices** — the multi-rate cells' ``matrix[true][predicted]``
  counts, summed across seeds (and optionally depths) so the report shows
  one total matrix per feature with rows ordered low-to-high rate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro.adversary.multiclass import sorted_labels
from repro.exceptions import AnalysisError
from repro.population.flows import FlowPopulation

#: feature -> sample size -> true label -> predicted label -> count
ConfusionByFeature = Dict[str, Dict[int, Dict[str, Dict[str, int]]]]


def anonymity_set_distribution(population: FlowPopulation) -> Dict[int, int]:
    """``set size -> number of sets`` over the (AS, rate class) cells."""
    distribution: Dict[int, int] = {}
    for size in population.cell_sizes().values():
        distribution[size] = distribution.get(size, 0) + 1
    return dict(sorted(distribution.items()))


def anonymity_summary(population: FlowPopulation) -> Dict[str, float]:
    """Summary statistics of the anonymity-set size distribution."""
    sizes = sorted(population.cell_sizes().values())
    if not sizes:
        raise AnalysisError("the population has no flows")
    half = len(sizes) // 2
    if len(sizes) % 2:
        median = float(sizes[half])
    else:
        median = (sizes[half - 1] + sizes[half]) / 2.0
    return {
        "n_sets": float(len(sizes)),
        "min": float(sizes[0]),
        "median": median,
        "mean": sum(sizes) / len(sizes),
        "max": float(sizes[-1]),
    }


def identification_curve(
    population: FlowPopulation,
    per_as_rates: Mapping[int, Mapping[int, float]],
    sample_sizes: Iterable[int],
) -> Dict[int, float]:
    """Fraction of the population identified, per sample size.

    ``per_as_rates`` maps ``AS -> sample size -> detection rate`` (one
    feature's rates from the per-AS sweep).  Each AS contributes its flow
    count times its detection rate; the sum over ASes, divided by the
    population size, is the expected identified fraction.
    """
    counts = population.flows_per_as()
    total = sum(counts.values())
    if total == 0:
        raise AnalysisError("the population has no flows")
    curve: Dict[int, float] = {}
    for n in sample_sizes:
        identified = 0.0
        for as_id, n_flows in counts.items():
            try:
                rate = per_as_rates[as_id][n]
            except KeyError:
                raise AnalysisError(
                    f"per_as_rates is missing AS {as_id!r} at sample size {n!r}"
                ) from None
            identified += n_flows * float(rate)
        curve[int(n)] = identified / total
    return curve


def aggregate_confusion(results: Iterable[object]) -> ConfusionByFeature:
    """Sum the confusion matrices of several cell results.

    ``results`` are :class:`~repro.runner.cells.CellResult`-likes; entries
    without a non-empty ``confusion`` attribute (binary cells, synthetic
    results) are skipped, so the function degrades to an empty dict when no
    multi-rate cell ran.  Summing is how multi-seed totals are reported: the
    per-seed matrices count disjoint trials of the same grid point.
    """
    total: ConfusionByFeature = {}
    for result in results:
        confusion = getattr(result, "confusion", None)
        if not confusion:
            continue
        for feature, by_n in confusion.items():
            feature_total = total.setdefault(feature, {})
            for n, matrix in by_n.items():
                matrix_total = feature_total.setdefault(int(n), {})
                for true_label, row in matrix.items():
                    row_total = matrix_total.setdefault(true_label, {})
                    for predicted, count in row.items():
                        row_total[predicted] = row_total.get(predicted, 0) + int(count)
    return total


def confusion_rows(
    matrix: Mapping[str, Mapping[str, int]]
) -> Tuple[List[str], List[Tuple[object, ...]]]:
    """``(headers, rows)`` of one confusion matrix, labels low-to-high.

    Ready for :func:`repro.experiments.report.format_table`: the first
    column is the true label, the remaining columns the predicted counts.
    """
    labels = sorted_labels(
        set(map(str, matrix)) | {p for row in matrix.values() for p in row}
    )
    headers = ["true \\ predicted"] + list(labels)
    rows: List[Tuple[object, ...]] = []
    for true_label in labels:
        row = matrix.get(true_label, {})
        rows.append(
            tuple([true_label] + [int(row.get(predicted, 0)) for predicted in labels])
        )
    return headers, rows


__all__ = [
    "ConfusionByFeature",
    "aggregate_confusion",
    "anonymity_set_distribution",
    "anonymity_summary",
    "confusion_rows",
    "identification_curve",
]
