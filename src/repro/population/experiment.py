"""The ``population`` experiment: anonymity at the scale of an internetwork.

Generates a multi-AS topology, places a population of flows onto it, and
mounts the attack against every inhabited AS plus a multi-rate mix sweep:

* per-AS binary cells (lowest vs highest rate) measure how identifiable each
  gateway's flows are at their rendered path depth and load;
* analytic multi-rate cells at representative depths carry the full rate mix
  and produce confusion matrices;
* population metrics (anonymity-set sizes, identified-fraction curve) weight
  the per-AS rates by where the flows actually live.

The population *structure* — graph, placement, mix — derives exclusively
from the experiment's configured seed through the ``population-*`` streams.
Sweep seeds vary only the capture randomness, so multi-seed runs aggregate
the same grid points (a requirement of the seed-aggregation layer) and the
confidence bands speak about capture noise, not about topology resampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.experiments.base import CollectionMode, ScenarioConfig, resolve_seeds
from repro.experiments.report import (
    format_table,
    render_experiment_report,
    seed_suffix,
    with_ci_column,
)
from repro.population.flows import (
    FlowPopulation,
    RateClass,
    assemble_population,
    hybrid_population_grid,
    multiclass_population_grid,
)
from repro.population.metrics import (
    ConfusionByFeature,
    aggregate_confusion,
    anonymity_set_distribution,
    anonymity_summary,
    confusion_rows,
    identification_curve,
)
from repro.population.topology import ASGraphSpec, ASTopology, generate_as_topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.runner import GridSpec, SweepCell, SweepRunner

#: Feature statistics evaluated by the population experiment.
_POPULATION_FEATURES: Tuple[str, ...] = ("mean", "variance", "entropy")


@dataclass(frozen=True)
class PopulationConfig:
    """Configuration of the population experiment.

    Attributes
    ----------
    n_as, m_attach, peer_fraction, hops_per_as, min_utilization,
    max_utilization:
        Forwarded to :class:`~repro.population.topology.ASGraphSpec`.
    n_flows:
        Population size (senders placed onto the topology).
    rate_classes:
        The payload-rate mix, sorted ascending (at least three rates so the
        multi-rate grid is well defined).
    rate_weights:
        Relative abundance of each rate class in the population.
    sample_sizes:
        Adversary sample sizes; the identification curve spans all of them
        and the per-AS table reports the largest.
    trials:
        Training/test samples per class per sample size.
    mode:
        Collection mode of the per-AS binary grid (the mix grid is always
        analytic).  Hybrid shares one gateway capture across every AS.
    mix_depth_points:
        Maximum number of path depths the multi-rate grid evaluates.
    seed:
        Master seed: population structure *and* default sweep seed.
    scenario:
        Base padded-link scenario (policy, disturbance, packet size).
    """

    n_as: int = 12
    m_attach: int = 2
    peer_fraction: float = 0.25
    hops_per_as: int = 2
    min_utilization: float = 0.08
    max_utilization: float = 0.3
    n_flows: int = 600
    rate_classes: Tuple[float, ...] = (2.0, 5.0, 10.0)
    rate_weights: Tuple[float, ...] = (0.5, 0.3, 0.2)
    sample_sizes: Tuple[int, ...] = (100, 500, 1000)
    trials: int = 12
    mode: CollectionMode = CollectionMode.HYBRID
    mix_depth_points: int = 3
    seed: int = 2003
    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "rate_classes", tuple(float(r) for r in self.rate_classes)
        )
        object.__setattr__(
            self, "rate_weights", tuple(float(w) for w in self.rate_weights)
        )
        object.__setattr__(
            self, "sample_sizes", tuple(int(n) for n in self.sample_sizes)
        )
        object.__setattr__(self, "mode", CollectionMode(self.mode))
        if len(self.rate_classes) < 3:
            raise ConfigurationError(
                f"rate_classes={self.rate_classes!r} must hold at least three rates"
            )
        if list(self.rate_classes) != sorted(set(self.rate_classes)):
            raise ConfigurationError(
                f"rate_classes={self.rate_classes!r} must be distinct and sorted"
            )
        if len(self.rate_weights) != len(self.rate_classes):
            raise ConfigurationError(
                f"rate_weights={self.rate_weights!r} must match rate_classes"
            )
        if any(w <= 0.0 for w in self.rate_weights):
            raise ConfigurationError("every rate weight must be positive")
        if not self.sample_sizes:
            raise ConfigurationError("sample_sizes must be non-empty")
        if self.trials < 2:
            raise ConfigurationError(f"trials={self.trials!r} must be >= 2")
        if self.mode is CollectionMode.SIMULATION:
            raise ConfigurationError(
                "the population grid renders AS-paths analytically; use hybrid "
                "or analytic mode"
            )
        # Construct eagerly so an invalid graph parameterisation fails at
        # configuration time with the graph spec's own message.
        self.graph_spec()

    def graph_spec(self) -> ASGraphSpec:
        """The AS-graph spec this configuration generates."""
        return ASGraphSpec(
            n_as=self.n_as,
            m_attach=self.m_attach,
            peer_fraction=self.peer_fraction,
            hops_per_as=self.hops_per_as,
            min_utilization=self.min_utilization,
            max_utilization=self.max_utilization,
            link_rate_bps=self.scenario.link_rate_bps,
            seed=self.seed,
        )

    def rate_mix(self) -> Tuple[RateClass, ...]:
        """The rate mix as :class:`RateClass` entries."""
        return tuple(
            RateClass(rate_pps=rate, weight=weight)
            for rate, weight in zip(self.rate_classes, self.rate_weights)
        )


@dataclass
class PopulationResult:
    """The assembled population report."""

    config: PopulationConfig
    n_edges: int
    core_as: int
    as_depths: Dict[int, int]
    as_utilizations: Dict[int, float]
    flows_per_as: Dict[int, int]
    per_as_rates: Dict[str, Dict[int, Dict[int, float]]]
    curve: Dict[str, Dict[int, float]]
    anonymity_distribution: Dict[int, int]
    anonymity_stats: Dict[str, float]
    mix_rates: Dict[str, Dict[int, float]]
    confusion: ConfusionByFeature
    per_as_ci: Optional[Dict[str, Dict[int, Tuple[float, float]]]] = None
    n_seeds: int = 1
    confidence: Optional[float] = None

    def to_text(self) -> str:
        config = self.config
        n_max = max(config.sample_sizes)
        sections: List[Tuple[str, str]] = []

        headers = ["AS", "depth", "utilization", "flows"] + [
            f for f in _POPULATION_FEATURES
        ]
        rows = []
        for as_id in sorted(self.flows_per_as):
            rows.append(
                tuple(
                    [
                        as_id,
                        self.as_depths[as_id],
                        self.as_utilizations[as_id],
                        self.flows_per_as[as_id],
                    ]
                    + [
                        self.per_as_rates[feature][as_id][n_max]
                        for feature in _POPULATION_FEATURES
                    ]
                )
            )
        if self.per_as_ci is not None:
            variance_ci = self.per_as_ci.get("variance", {})
            headers, rows = with_ci_column(
                headers, rows, len(headers), self.confidence,
                lambda row: variance_ci.get(row[0]),
            )
        sections.append(
            (
                f"Per-AS detection rate (n={n_max})" + seed_suffix(self.n_seeds),
                format_table(headers, rows),
            )
        )

        stats = self.anonymity_stats
        sections.append(
            (
                f"Anonymity sets — flows per (AS, rate class) cell "
                f"({stats['n_sets']:.0f} sets, median size {stats['median']:g}, "
                f"max {stats['max']:.0f})",
                format_table(
                    ["set size", "count"],
                    [(size, count) for size, count in self.anonymity_distribution.items()],
                ),
            )
        )

        curve_rows = [
            tuple([n] + [self.curve[feature][n] for feature in _POPULATION_FEATURES])
            for n in config.sample_sizes
        ]
        sections.append(
            (
                "Fraction of population identified vs sample size"
                + seed_suffix(self.n_seeds),
                format_table(
                    ["sample size"] + list(_POPULATION_FEATURES), curve_rows
                ),
            )
        )

        if self.mix_rates:
            mix_rows = [
                tuple(
                    [depth]
                    + [self.mix_rates[feature][depth] for feature in _POPULATION_FEATURES]
                )
                for depth in sorted(self.mix_rates[_POPULATION_FEATURES[0]])
            ]
            sections.append(
                (
                    f"Multi-rate mix detection ({len(config.rate_classes)} classes, "
                    f"n={n_max})" + seed_suffix(self.n_seeds),
                    format_table(["AS-path depth"] + list(_POPULATION_FEATURES), mix_rows),
                )
            )

        for feature in _POPULATION_FEATURES:
            matrix = self.confusion.get(feature, {}).get(n_max)
            if not matrix:
                continue
            matrix_headers, matrix_rows = confusion_rows(matrix)
            sections.append(
                (
                    f"Confusion matrix — {feature} feature (n={n_max}, summed over "
                    f"depths and seeds)",
                    format_table(matrix_headers, matrix_rows),
                )
            )

        title = (
            f"Population-scale anonymity ({config.n_flows} flows, "
            f"{config.n_as} ASes, core AS {self.core_as}, {self.n_edges} inter-AS links)"
        )
        return render_experiment_report(title, sections)


class PopulationExperiment:
    """Generated multi-AS topology, flow population, anonymity-set metrics."""

    name = "population"

    def __init__(self, config: Optional[PopulationConfig] = None) -> None:
        self.config = config if config is not None else PopulationConfig()
        self._topology: Optional[ASTopology] = None
        self._population: Optional[FlowPopulation] = None

    def describe(self) -> str:
        """One-line summary shown by ``repro list`` and ``Experiment.describe``."""
        return (
            "Population-scale anonymity: generated multi-AS topology, "
            "thousand-flow rate mix, per-AS detection rates, anonymity-set "
            "sizes and multi-rate confusion matrices"
        )

    # ------------------------------------------------------------ population
    def topology(self) -> ASTopology:
        """The generated AS topology (cached; derived from ``config.seed``)."""
        if self._topology is None:
            self._topology = generate_as_topology(self.config.graph_spec())
        return self._topology

    def population(self) -> FlowPopulation:
        """The placed flow population (cached; derived from ``config.seed``)."""
        if self._population is None:
            self._population = assemble_population(
                self.topology(),
                self.config.n_flows,
                self.config.rate_mix(),
                self.config.seed,
            )
        return self._population

    @staticmethod
    def as_point_key(as_id: int) -> str:
        """The grid-point key of one inhabited AS."""
        return f"population/as={as_id}"

    @staticmethod
    def mix_point_key(depth: int) -> str:
        """The grid-point key of one multi-rate depth point."""
        return f"population/mix/depth={depth}"

    # ----------------------------------------------------------------- grids
    def hybrid_grid(self, seeds: Optional[Sequence[int]] = None) -> "GridSpec":
        """The per-AS binary grid (one shared gateway capture in hybrid mode)."""
        config = self.config
        return hybrid_population_grid(
            self.population(),
            config.scenario,
            sample_sizes=config.sample_sizes,
            trials=config.trials,
            mode=config.mode,
            seeds=resolve_seeds(config.seed, seeds),
        )

    def mix_grid(self, seeds: Optional[Sequence[int]] = None) -> "GridSpec":
        """The analytic multi-rate grid over representative path depths."""
        config = self.config
        return multiclass_population_grid(
            self.population(),
            config.scenario,
            sample_sizes=config.sample_sizes,
            trials=config.trials,
            seeds=resolve_seeds(config.seed, seeds),
            max_depth_points=config.mix_depth_points,
        )

    def cells(self, seeds: Optional[Sequence[int]] = None) -> "List[SweepCell]":
        """Every schedulable cell: per-AS binary plus multi-rate mix."""
        return self.hybrid_grid(seeds).cells() + self.mix_grid(seeds).cells()

    # ------------------------------------------------------------------- run
    def run(
        self,
        runner: "Optional[SweepRunner]" = None,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> PopulationResult:
        from repro.runner import SweepRunner

        runner = runner if runner is not None else SweepRunner()
        return self.assemble(runner.run(self.cells(seeds)), seeds=seeds, confidence=confidence)

    def assemble(
        self,
        report,
        seeds: Optional[Sequence[int]] = None,
        confidence: Optional[float] = None,
    ) -> PopulationResult:
        """Build the population report from a sweep report containing its cells."""
        from repro.runner import experiment_view

        config = self.config
        resolved = resolve_seeds(config.seed, seeds)
        population = self.population()
        topology = self.topology()
        hybrid_grid = self.hybrid_grid(resolved)
        mix_grid = self.mix_grid(resolved)
        hybrid_view = experiment_view(report, hybrid_grid, confidence=confidence)
        mix_view = experiment_view(report, mix_grid, confidence=confidence)
        n_max = max(config.sample_sizes)

        per_as_rates: Dict[str, Dict[int, Dict[int, float]]] = {
            feature: {} for feature in _POPULATION_FEATURES
        }
        per_as_ci: Dict[str, Dict[int, Tuple[float, float]]] = {
            feature: {} for feature in _POPULATION_FEATURES
        }
        as_depths: Dict[int, int] = {}
        as_utilizations: Dict[int, float] = {}
        has_ci = False
        result_confidence: Optional[float] = None
        for as_id in population.sender_ases():
            cell = hybrid_view[self.as_point_key(as_id)]
            cell_ci = getattr(cell, "detection_rate_ci", None)
            as_depths[as_id] = topology.path_depth(as_id)
            as_utilizations[as_id] = topology.path_utilization(as_id)
            for feature in _POPULATION_FEATURES:
                per_as_rates[feature][as_id] = {
                    n: cell.empirical_detection_rate[feature][n]
                    for n in config.sample_sizes
                }
                if cell_ci is not None:
                    per_as_ci[feature][as_id] = cell_ci[feature][n_max]
                    has_ci = True
                    result_confidence = getattr(cell, "confidence", None)

        curve = {
            feature: identification_curve(
                population, per_as_rates[feature], config.sample_sizes
            )
            for feature in _POPULATION_FEATURES
        }

        mix_rates: Dict[str, Dict[int, float]] = {
            feature: {} for feature in _POPULATION_FEATURES
        }
        for point in mix_grid.points:
            depth = int(point.key.rsplit("=", 1)[1])
            cell = mix_view[point.key]
            for feature in _POPULATION_FEATURES:
                mix_rates[feature][depth] = cell.empirical_detection_rate[feature][n_max]

        # Confusion matrices live only on raw multi-rate cell results (the
        # seed-aggregation layer reduces scalars, not count matrices), so sum
        # them straight off the report — across seeds and depths.
        mix_results = []
        for mix_cell in mix_grid.cells():
            try:
                mix_results.append(report[mix_cell.key])
            except KeyError:
                continue
        confusion = aggregate_confusion(mix_results)

        return PopulationResult(
            config=config,
            n_edges=len(topology.edges),
            core_as=topology.core_as,
            as_depths=as_depths,
            as_utilizations=as_utilizations,
            flows_per_as=population.flows_per_as(),
            per_as_rates=per_as_rates,
            curve=curve,
            anonymity_distribution=anonymity_set_distribution(population),
            anonymity_stats=anonymity_summary(population),
            mix_rates=mix_rates,
            confusion=confusion,
            per_as_ci=per_as_ci if has_ci else None,
            n_seeds=len(resolved),
            confidence=result_confidence,
        )


__all__ = [
    "PopulationConfig",
    "PopulationExperiment",
    "PopulationResult",
]
