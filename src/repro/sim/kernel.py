"""Vectorized fast path for the padded-link gateway capture.

The event engine (:mod:`repro.sim.engine`) replays a gateway capture one
Python callback at a time: every timer interrupt, payload arrival and
transmission is a heap operation plus a handful of attribute lookups.
Profiling a cold ``--preset fast`` sweep shows ~98% of the wall clock inside
that loop.  This module computes the *same* capture in closed form with a
fixed number of numpy array operations, reproducing the event path
byte-for-byte.

Why the two paths agree exactly
-------------------------------
The no-network gateway capture has a special structure that makes it
replayable without a scheduler:

1. **Timer due times** are a pure cumulative sum.  The gateway reschedules
   each interrupt relative to its *due* time (no drift), so
   ``due_k = I_0 + ... + I_k`` where the ``I_k`` are successive draws from
   the interval generator's dedicated stream.  An interrupt fires iff
   ``due_k <= horizon``.
2. **Payload arrivals** are an independent cumulative sum of exponential
   gaps on the source's dedicated stream; the gateway never influences the
   source.
3. **Interrupt blocking counts** depend only on how many arrivals fall in
   ``[due_k - window, due_k]`` and after ``due_{k-1}`` — a pair of
   ``searchsorted`` calls.
4. **Disturbance draws** live on their own dedicated streams (scheduling
   jitter, blocking delays), so each stream carries one homogeneous draw
   sequence.  A numpy ``Generator`` fills array requests value-by-value from
   the same bit stream as repeated scalar calls, hence one array draw equals
   the event path's per-interrupt scalar draws.
5. **Transmission times** are ``due_k + delay_k`` passed through the
   gateway's monotonic minimum-spacing clamp, which is a running maximum.

The equivalence additionally relies on the engine's deterministic
tie-breaking (see :mod:`repro.sim.engine`) and on
:class:`repro.sim.process.PeriodicProcess` drawing exactly one interval per
activation.  The only event-path behaviour *not* reproduced is the ordering
of a payload arrival landing at *exactly* a timer due time at double
precision — a measure-zero tie that cannot occur with continuous draws on
independent streams.

The entry point is :func:`simulate_padded_capture`; the routing decision
(which captures may take this path) lives with the experiment code in
:mod:`repro.experiments.base`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exceptions import SimulationError

#: Mirrors ``repro.padding.gateway._MIN_TX_SPACING_S`` — duplicated rather
#: than imported to keep this module free of upward imports; the kernel
#: equivalence test pins the two values against each other.
MIN_TX_SPACING_S = 1e-9

#: Mirrors the floor in ``repro.traffic.sources.PoissonSource._next_interval``.
MIN_PAYLOAD_GAP_S = 1e-12


def _event_times_until(
    draw_chunk: Callable[[int], np.ndarray],
    horizon: float,
    expected_count: int,
) -> np.ndarray:
    """Cumulative-sum event times for draws generated chunk-by-chunk.

    Returns every event time ``<= horizon``.  The cumulative sum is always
    recomputed over the full concatenated draw array so the additions happen
    in exactly the sequential order of the event path (``np.cumsum`` is a
    sequential accumulation).
    """
    if horizon < 0.0:
        raise SimulationError(f"horizon must be >= 0, got {horizon!r}")
    chunk = max(256, int(expected_count * 1.05) + 16)
    chunks = [draw_chunk(chunk)]
    approx_total = float(np.sum(chunks[-1]))
    while approx_total <= horizon:
        chunks.append(draw_chunk(chunk))
        approx_total += float(np.sum(chunks[-1]))
    times = np.cumsum(np.concatenate(chunks) if len(chunks) > 1 else chunks[0])
    # The per-chunk guard total is a pairwise sum and can differ from the
    # sequential cumsum in the last bits; top up in the (astronomically rare)
    # case the exact final time still lies inside the horizon.
    while times.size and times[-1] <= horizon:
        chunks.append(draw_chunk(chunk))
        times = np.cumsum(np.concatenate(chunks))
    return times[times <= horizon]


def timer_due_times(
    interval_generator,
    rng: np.random.Generator,
    horizon: float,
) -> np.ndarray:
    """Due times of every timer interrupt that fires by ``horizon``.

    Byte-identical to the event path: the gateway draws its first interval at
    start (time 0) and every subsequent interval at the preceding interrupt,
    rescheduling relative to the due time, so due times are the cumulative
    sum of successive :meth:`sample` draws.
    """
    mean = float(getattr(interval_generator, "mean", 0.0))
    if mean <= 0.0:
        raise SimulationError("interval generator must have a positive mean")
    expected = int(horizon / mean) + 1
    return _event_times_until(
        lambda size: np.asarray(interval_generator.sample_batch(rng, size), dtype=float),
        horizon,
        expected,
    )


def poisson_arrival_times(
    rng: np.random.Generator,
    rate_pps: float,
    horizon: float,
) -> np.ndarray:
    """Arrival times of a Poisson source up to ``horizon``.

    Matches :class:`repro.traffic.sources.PoissonSource` exactly: gaps are
    ``max(Exp(1/rate), MIN_PAYLOAD_GAP_S)`` and the first arrival is a full
    gap after time 0.
    """
    if rate_pps < 0.0:
        raise SimulationError(f"rate must be >= 0, got {rate_pps!r}")
    if rate_pps == 0.0:
        return np.empty(0, dtype=float)
    scale = 1.0 / rate_pps
    expected = int(horizon * rate_pps) + 1
    return _event_times_until(
        lambda size: np.maximum(rng.exponential(scale, size=size), MIN_PAYLOAD_GAP_S),
        horizon,
        expected,
    )


def blocking_counts(
    arrival_times: np.ndarray,
    due_times: np.ndarray,
    window: float,
) -> np.ndarray:
    """Per-interrupt count of arrivals inside the blocking window.

    For interrupt ``k`` this is ``#{t : t > due_{k-1},
    due_k - window <= t <= due_k}`` (with ``due_{-1} = -inf``), which is the
    set the gateway hands to the disturbance model: arrivals recorded since
    the previous interrupt, restricted to the window.
    """
    if due_times.size == 0:
        return np.zeros(0, dtype=np.int64)
    hi = np.searchsorted(arrival_times, due_times, side="right")
    lo_window = np.searchsorted(arrival_times, due_times - window, side="left")
    prev_hi = np.concatenate(([0], hi[:-1]))
    return hi - np.maximum(lo_window, prev_hi)


def _blocking_delay_sums(
    rng: np.random.Generator,
    counts: np.ndarray,
    delay_mean: float,
) -> np.ndarray:
    """Per-interrupt sums of exponential blocking delays.

    The event path draws ``rng.exponential(mean, size=b_k)`` once per
    interrupt with ``b_k > 0`` and sums it with ``np.sum``.  Consecutive
    array draws concatenate to one big draw, so a single draw of total size
    reproduces the stream; the per-group sums must then replicate
    ``np.sum``'s reduction order, which is plain left-to-right for fewer
    than 8 elements (``np.add.reduceat``'s order) and pairwise above that —
    hence the slice-summing fallback for large groups.
    """
    sums = np.zeros(counts.size, dtype=float)
    nonzero = counts > 0
    if not np.any(nonzero):
        return sums
    group_sizes = counts[nonzero]
    draws = rng.exponential(delay_mean, size=int(group_sizes.sum()))
    starts = np.concatenate(([0], np.cumsum(group_sizes)[:-1]))
    if int(group_sizes.max()) < 8:
        sums[nonzero] = np.add.reduceat(draws, starts)
    else:
        ends = starts + group_sizes
        sums[nonzero] = [float(np.sum(draws[s:e])) for s, e in zip(starts, ends)]
    return sums


def clamp_min_spacing(send_times: np.ndarray, spacing: float = MIN_TX_SPACING_S) -> np.ndarray:
    """Apply the gateway's monotonic minimum-spacing clamp.

    Sequential rule: ``t_0 = s_0``; ``t_k = max(s_k, t_{k-1} + spacing)``.
    When every consecutive pair already satisfies the spacing (the common
    case — timer intervals are milliseconds, delays microseconds) the input
    is returned untouched; otherwise the rare violating tail is fixed with
    an explicit sequential pass so the floating-point result matches the
    event path bit-for-bit.
    """
    if send_times.size < 2:
        return send_times
    floor = send_times[:-1] + spacing
    if bool(np.all(send_times[1:] >= floor)):
        return send_times
    clamped = send_times.copy()
    first = int(np.flatnonzero(clamped[1:] < floor)[0]) + 1
    last = clamped[first - 1]
    for k in range(first, clamped.size):
        earliest = last + spacing
        if clamped[k] < earliest:
            clamped[k] = earliest
        last = clamped[k]
    return clamped


def simulate_padded_capture(
    *,
    interval_generator,
    payload_rate_pps: float,
    duration: float,
    timer_rng: np.random.Generator,
    payload_rng: np.random.Generator,
    jitter_rng: Optional[np.random.Generator] = None,
    blocking_rng: Optional[np.random.Generator] = None,
    base_jitter_std: float = 0.0,
    blocking_window: float = 0.0,
    blocking_delay_mean: float = 0.0,
) -> np.ndarray:
    """Transmission timestamps of a no-network gateway capture, in closed form.

    Byte-identical to running :class:`repro.padding.gateway.SenderGateway`
    (with split ``jitter_rng``/``blocking_rng`` streams) fed by a
    :class:`repro.traffic.sources.PoissonSource` on the event engine for
    ``Simulator.run(until=duration)`` and reading the tap's timestamps.

    Parameters
    ----------
    interval_generator:
        Timer law; must honour the :meth:`sample_batch` identity contract of
        :mod:`repro.padding.timer`.
    payload_rate_pps:
        Poisson payload rate (0 disables payload, hence blocking).
    duration:
        Simulation horizon in seconds.
    timer_rng, payload_rng, jitter_rng, blocking_rng:
        The four dedicated streams.  ``jitter_rng``/``blocking_rng`` may be
        ``None`` when the corresponding mechanism is disabled.
    base_jitter_std, blocking_window, blocking_delay_mean:
        The :class:`repro.padding.disturbance.InterruptDisturbance`
        parameters (all 0 for a disturbance-free gateway).
    """
    if duration <= 0.0:
        raise SimulationError(f"duration must be > 0, got {duration!r}")
    due = timer_due_times(interval_generator, timer_rng, duration)
    n_fired = due.size
    if n_fired == 0:
        return np.empty(0, dtype=float)

    delay = np.zeros(n_fired, dtype=float)
    if base_jitter_std > 0.0:
        if jitter_rng is None:
            raise SimulationError("base_jitter_std > 0 requires a jitter_rng")
        delay += np.abs(jitter_rng.normal(0.0, base_jitter_std, size=n_fired))
    if blocking_delay_mean > 0.0 and blocking_window > 0.0 and payload_rate_pps > 0.0:
        if blocking_rng is None:
            raise SimulationError("interrupt blocking requires a blocking_rng")
        arrivals = poisson_arrival_times(payload_rng, payload_rate_pps, duration)
        counts = blocking_counts(arrivals, due, blocking_window)
        delay += _blocking_delay_sums(blocking_rng, counts, blocking_delay_mean)

    send_times = clamp_min_spacing(due + delay)
    return send_times[send_times <= duration]


__all__ = [
    "MIN_TX_SPACING_S",
    "MIN_PAYLOAD_GAP_S",
    "timer_due_times",
    "poisson_arrival_times",
    "blocking_counts",
    "clamp_min_spacing",
    "simulate_padded_capture",
]
