"""The discrete-event simulation engine.

The engine is a classic calendar/heap scheduler: entities schedule callbacks
at absolute or relative simulated times, and :meth:`Simulator.run` pops events
in time order and fires them until the horizon is reached or the event heap
drains.  It is intentionally small — the padding gateways, traffic sources and
routers built on top of it only need ``schedule``/``cancel``/``now`` — but it
enforces the invariants that make long runs trustworthy:

* time never moves backwards,
* events scheduled for identical times fire in scheduling order,
* a run can be resumed (``run`` may be called repeatedly with increasing
  horizons),
* the number of processed events is bounded by an explicit safety limit so a
  runaway feedback loop fails loudly instead of spinning forever.

Event-ordering contract (relied on by the vectorized fast path)
---------------------------------------------------------------
Events are totally ordered by ``(time, priority, sequence)`` where
``sequence`` is a global creation counter, so simultaneous events always fire
in the order they were scheduled — *including* events inserted through
:meth:`Simulator.schedule_batch`, which assigns sequence numbers in list
order before (possibly) re-heapifying.  :mod:`repro.sim.kernel` computes
capture timestamps in closed form instead of replaying the event loop; its
byte-for-byte equivalence proof assumes exactly this deterministic ordering
plus the fact that ``run(until=h)`` fires every event with ``time <= h`` and
leaves later events on the heap.  Changing the tie-breaking rule, the horizon
comparison (``<=`` vs ``<``), or the one-draw-per-activation discipline of
:class:`repro.sim.process.PeriodicProcess` silently breaks that equivalence
and therefore cached capture fingerprints — treat all three as frozen
contracts.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.exceptions import SchedulingError, SimulationError
from repro.sim.events import Event


class Simulator:
    """Event-driven simulation kernel.

    Parameters
    ----------
    start_time:
        Initial simulation clock value in seconds (default 0).
    max_events:
        Hard cap on the number of events processed over the simulator's
        lifetime.  Exceeding it raises :class:`SimulationError`.  The default
        (200 million) is far beyond any experiment in this repository but
        protects against accidental self-rescheduling loops.
    """

    def __init__(self, start_time: float = 0.0, max_events: int = 200_000_000) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._processed = 0
        self._max_events = int(max_events)
        self._running = False

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events fired so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may later cancel.

        Raises
        ------
        SchedulingError
            If ``delay`` is negative or not finite.
        """
        return self.schedule_at(self._now + float(delay), callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        time = float(time)
        if not time == time or time in (float("inf"), float("-inf")):  # NaN / inf guard
            raise SchedulingError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event in the past: t={time:.9f} < now={self._now:.9f}"
            )
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {callback!r}")
        event = Event(time=time, priority=priority, callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_batch(
        self,
        times: Sequence[float],
        callback: Callable[..., None],
        args_list: Optional[Sequence[Tuple[Any, ...]]] = None,
        priority: int = 0,
    ) -> List[Event]:
        """Bulk-insert many events for one callback at absolute times.

        Semantically identical to calling :meth:`schedule_at` once per entry
        of ``times`` (same validation, same tie-breaking order), but the heap
        is rebuilt with a single :func:`heapq.heapify` when the batch is large
        relative to the pending-event count — O(n + m) instead of
        O(m log n) — which is what makes scheduling a whole trace or a
        precomputed timer epoch cheap.

        Parameters
        ----------
        times:
            Absolute simulation times, each finite and ``>= now``.
        callback:
            Callable fired for every event.
        args_list:
            Optional per-event positional arguments; must match ``times`` in
            length.  Omitted means every callback fires with no arguments.
        priority:
            Priority shared by all events in the batch.
        """
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {callback!r}")
        stamps = [float(t) for t in times]
        if args_list is not None and len(args_list) != len(stamps):
            raise SchedulingError(
                f"args_list has {len(args_list)} entries for {len(stamps)} times"
            )
        for time in stamps:
            if not time == time or time in (float("inf"), float("-inf")):
                raise SchedulingError(f"event time must be finite, got {time!r}")
            if time < self._now:
                raise SchedulingError(
                    f"cannot schedule event in the past: t={time:.9f} < now={self._now:.9f}"
                )
        events = [
            Event(
                time=time,
                priority=priority,
                callback=callback,
                args=() if args_list is None else tuple(args_list[i]),
            )
            for i, time in enumerate(stamps)
        ]
        # Rebuilding the heap is cheaper than m pushes once the batch is of
        # the same order as the pending set; Event's total ordering (time,
        # priority, sequence) makes heapify preserve the firing order.
        if len(events) >= 16 and len(events) >= len(self._heap) // 2:
            self._heap.extend(events)
            heapq.heapify(self._heap)
        else:
            for event in events:
                heapq.heappush(self._heap, event)
        return events

    @staticmethod
    def cancel(event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        event.cancel()

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None) -> float:
        """Process events in time order.

        Parameters
        ----------
        until:
            Simulation horizon in seconds.  Events scheduled strictly after
            ``until`` are left on the heap and the clock is advanced to
            ``until``.  When omitted the simulator runs until the heap is
            empty.

        Returns
        -------
        float
            The simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        if until is not None:
            until = float(until)
            if until < self._now:
                raise SchedulingError(
                    f"horizon {until!r} lies before current time {self._now!r}"
                )
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                if event.time < self._now:
                    raise SimulationError(
                        "event heap yielded an event in the past "
                        f"({event.time!r} < {self._now!r}); this is a bug"
                    )
                self._now = event.time
                self._processed += 1
                if self._processed > self._max_events:
                    raise SimulationError(
                        f"exceeded max_events={self._max_events}; "
                        "possible runaway self-rescheduling loop"
                    )
                event.fire()
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event.

        Returns ``True`` if an event fired, ``False`` if the heap is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.fire()
            return True
        return False

    def drain_cancelled(self) -> int:
        """Remove cancelled events from the heap; returns the number removed.

        Long runs that cancel many timers can call this occasionally to keep
        the heap small.  It never changes observable behaviour.
        """
        before = len(self._heap)
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        return before - len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Simulator(now={self._now:.6f}, pending={len(self._heap)}, "
            f"processed={self._processed})"
        )


__all__ = ["Simulator"]
