"""Helpers for writing recurring processes on top of the callback scheduler.

The simulator core is callback-based.  Most entities (sources, timers, cross
traffic) are naturally expressed as "do something, then reschedule myself
after a delay drawn from some distribution".  :class:`PeriodicProcess`
captures that pattern once so that entity code stays focused on *what*
happens per activation rather than on the rescheduling bookkeeping.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.exceptions import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import Event


def delayed_call(
    simulator: Simulator,
    delay: float,
    callback: Callable[..., None],
    *args: Any,
) -> Event:
    """Schedule a one-shot ``callback(*args)`` after ``delay`` seconds.

    Thin convenience wrapper over :meth:`Simulator.schedule`; exists so call
    sites read as intent ("fire once later") rather than mechanism.
    """
    return simulator.schedule(delay, callback, *args)


class PeriodicProcess:
    """A self-rescheduling activity.

    Parameters
    ----------
    simulator:
        The event engine to schedule on.
    interval_fn:
        Zero-argument callable returning the delay (seconds) until the *next*
        activation.  Called once per activation, so stochastic intervals
        (VIT timers, Poisson sources) simply return a fresh draw each time.
    action:
        Callable invoked at every activation with the current simulation time.
    name:
        Optional label used in error messages.

    Notes
    -----
    ``interval_fn`` must return a strictly positive, finite delay.  A
    non-positive delay would allow an unbounded number of activations at a
    single simulated instant; the process raises :class:`SimulationError`
    instead of silently looping.
    """

    def __init__(
        self,
        simulator: Simulator,
        interval_fn: Callable[[], float],
        action: Callable[[float], None],
        name: str = "periodic-process",
    ) -> None:
        self._simulator = simulator
        self._interval_fn = interval_fn
        self._action = action
        self.name = name
        self._pending: Optional[Event] = None
        self._active = False
        self.activations = 0

    @property
    def active(self) -> bool:
        """Whether the process is currently scheduled."""
        return self._active

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin activations.

        Parameters
        ----------
        initial_delay:
            Delay before the first activation.  Defaults to a fresh draw from
            ``interval_fn`` so that, e.g., a Poisson source's first packet is
            exponentially distributed like every later gap.
        """
        if self._active:
            raise SimulationError(f"process {self.name!r} is already running")
        delay = self._draw() if initial_delay is None else float(initial_delay)
        if delay < 0.0:
            raise SimulationError(f"initial delay must be >= 0, got {delay!r}")
        self._active = True
        self._pending = self._simulator.schedule(delay, self._activate)

    def stop(self) -> None:
        """Cancel the next activation and halt the process (idempotent)."""
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._active = False

    def _draw(self) -> float:
        delay = float(self._interval_fn())
        if not delay > 0.0:
            raise SimulationError(
                f"process {self.name!r}: interval_fn returned a non-positive "
                f"delay ({delay!r}); intervals must be strictly positive"
            )
        return delay

    def _activate(self) -> None:
        if not self._active:
            return
        self.activations += 1
        self._action(self._simulator.now)
        if self._active:
            self._pending = self._simulator.schedule(self._draw(), self._activate)


__all__ = ["PeriodicProcess", "delayed_call"]
