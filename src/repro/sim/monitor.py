"""Measurement probes attached to simulation entities.

Monitors never influence the simulation; they only record.  Three flavours
cover everything the experiments need:

* :class:`CounterMonitor` — named integer counters (packets sent, dummies
  injected, drops, ...).
* :class:`TimeSeriesMonitor` — ``(time, value)`` observations, e.g. queue
  length over time, with summary statistics.
* :class:`IntervalMonitor` — successive event timestamps, exposing the
  inter-arrival times; this is what the adversary's tap uses to build PIAT
  samples.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


class CounterMonitor:
    """A bag of named monotone counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to counter ``name``."""
        if amount < 0:
            raise ValueError("counters are monotone; amount must be >= 0")
        self._counts[name] = self._counts.get(name, 0) + int(amount)

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def reset(self) -> None:
        """Zero every counter."""
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CounterMonitor({self._counts!r})"


class TimeSeriesMonitor:
    """Records ``(time, value)`` observations.

    Parameters
    ----------
    name:
        Label used in reports.
    """

    def __init__(self, name: str = "series") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one observation.  Times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"observations must be recorded in time order "
                f"({time!r} < {self._times[-1]!r})"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Observation times as an array."""
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        """Observation values as an array."""
        return np.asarray(self._values, dtype=float)

    def mean(self) -> float:
        """Unweighted mean of the recorded values."""
        if not self._values:
            raise ValueError(f"monitor {self.name!r} has no observations")
        return float(np.mean(self._values))

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted average assuming the value holds until the next sample.

        ``until`` extends the last observation to the given time; when omitted
        the last observation gets zero weight (pure step-function average over
        the observed span).
        """
        if not self._values:
            raise ValueError(f"monitor {self.name!r} has no observations")
        times = self.times
        values = self.values
        if until is None:
            until = times[-1]
        if until < times[-1]:
            raise ValueError("'until' must not precede the last observation")
        edges = np.append(times, until)
        widths = np.diff(edges)
        total = float(np.sum(widths))
        if total == 0.0:
            return float(values[-1])
        return float(np.sum(widths * values) / total)

    def maximum(self) -> float:
        """Largest recorded value."""
        if not self._values:
            raise ValueError(f"monitor {self.name!r} has no observations")
        return float(np.max(self._values))

    def reset(self) -> None:
        """Discard all observations."""
        self._times.clear()
        self._values.clear()


class IntervalMonitor:
    """Records event timestamps and exposes their inter-arrival times.

    This is the measurement primitive behind the adversary tap: every packet
    observed on the wire calls :meth:`record`, and :meth:`intervals` returns
    the PIAT sequence the classifier consumes.
    """

    def __init__(self, name: str = "intervals") -> None:
        self.name = name
        self._timestamps: List[float] = []

    def record(self, time: float) -> None:
        """Record one event occurrence at simulation time ``time``."""
        if self._timestamps and time < self._timestamps[-1]:
            raise ValueError(
                f"timestamps must be non-decreasing ({time!r} < {self._timestamps[-1]!r})"
            )
        self._timestamps.append(float(time))

    def __len__(self) -> int:
        return len(self._timestamps)

    @property
    def timestamps(self) -> np.ndarray:
        """All recorded timestamps."""
        return np.asarray(self._timestamps, dtype=float)

    def intervals(self) -> np.ndarray:
        """Inter-arrival times between consecutive recorded events.

        Returns an empty array when fewer than two events were recorded.
        """
        if len(self._timestamps) < 2:
            return np.empty(0, dtype=float)
        return np.diff(self.timestamps)

    def rate(self) -> float:
        """Average event rate (events per second) over the observation span."""
        if len(self._timestamps) < 2:
            raise ValueError("need at least two events to estimate a rate")
        span = self._timestamps[-1] - self._timestamps[0]
        if span <= 0.0:
            raise ValueError("all events share one timestamp; rate is undefined")
        return (len(self._timestamps) - 1) / span

    def reset(self) -> None:
        """Discard all recorded timestamps."""
        self._timestamps.clear()


__all__ = ["CounterMonitor", "TimeSeriesMonitor", "IntervalMonitor"]
