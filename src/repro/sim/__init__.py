"""Discrete-event simulation kernel.

This subpackage provides the minimal but complete event-driven simulation
machinery on which the traffic sources, padding gateways and network elements
are built:

* :class:`repro.sim.engine.Simulator` — the event loop (a time-ordered heap of
  scheduled callbacks) with deterministic tie-breaking.
* :class:`repro.sim.events.Event` — a schedulable, cancellable callback.
* :class:`repro.sim.random.RandomStreams` — named, independent random number
  streams derived from a single master seed, so that experiments are
  reproducible and substreams (payload, cross traffic, gateway jitter, ...)
  are statistically independent.
* :mod:`repro.sim.monitor` — probes that record counters and time series
  during a run.
* :mod:`repro.sim.process` — small helpers for writing generator-style
  processes on top of the callback scheduler.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.monitor import CounterMonitor, IntervalMonitor, TimeSeriesMonitor
from repro.sim.process import PeriodicProcess, delayed_call
from repro.sim.random import RandomStreams

__all__ = [
    "Simulator",
    "Event",
    "RandomStreams",
    "CounterMonitor",
    "IntervalMonitor",
    "TimeSeriesMonitor",
    "PeriodicProcess",
    "delayed_call",
]
