"""Event objects scheduled on the :class:`repro.sim.engine.Simulator` heap."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Tuple

#: Monotonically increasing sequence number used to break ties between events
#: scheduled for the same simulated time.  Ties are resolved in scheduling
#: order, which keeps runs fully deterministic.
_sequence = itertools.count()


def _next_sequence() -> int:
    return next(_sequence)


@dataclass(order=True)
class Event:
    """A callback scheduled to fire at a simulated time.

    Events are ordered by ``(time, priority, sequence)``.  Lower priority
    values fire first among events scheduled for the same time; the sequence
    number guarantees a total, deterministic order.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Secondary ordering key; defaults to 0.
    sequence:
        Tie-breaking counter assigned at creation time.
    callback:
        Callable invoked as ``callback(*args)`` when the event fires.
    args:
        Positional arguments passed to the callback.
    cancelled:
        When ``True`` the simulator silently discards the event instead of
        firing it.  Use :meth:`cancel` rather than mutating directly.
    """

    time: float
    priority: int = 0
    sequence: int = field(default_factory=_next_sequence)
    callback: Callable[..., None] = field(compare=False, default=lambda: None)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will never fire."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (unless cancelled)."""
        if not self.cancelled:
            self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " (cancelled)" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, prio={self.priority}, cb={name}{state})"


__all__ = ["Event"]
