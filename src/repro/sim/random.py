"""Reproducible, independent random-number streams.

Every stochastic component in the simulation (payload source, VIT timer,
gateway disturbance, per-hop cross traffic, adversary capture jitter, ...)
draws from its *own* named stream.  Streams are spawned from a single master
``numpy.random.SeedSequence`` so that

* the whole experiment is reproducible from one integer seed,
* adding a new component (a new stream name) does not perturb the draws seen
  by existing components, and
* streams are statistically independent by construction
  (``SeedSequence.spawn`` guarantees this).

The performance-critical property this module leans on is that a numpy
``Generator`` consumes its bit stream value-by-value: ``rng.normal(m, s,
size=n)`` returns exactly the values of ``n`` successive scalar
``rng.normal(m, s)`` calls, and chunked array calls concatenate to one big
call.  :class:`ChunkedDraws` packages that guarantee so hot loops can keep
scalar call sites while paying numpy's per-call overhead once per chunk
instead of once per draw.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

#: The declared stream-name registry: every name passed to
#: :meth:`RandomStreams.get` anywhere in this package must match one of these
#: templates (``*`` stands for a formatted value such as a class label or a
#: seed-offset tag).  ``repro check`` (rule RNG004) verifies call sites
#: statically, so a typo in a stream name — which would silently derive a
#: *different* independent stream and change every number downstream — is a
#: lint error instead of a wrong figure.  Adding a component means adding its
#: template here in the same change that introduces the ``get`` call.
DECLARED_STREAMS: Tuple[str, ...] = (
    "analytic-*",  # analytic-mode interval draws: analytic-<offset>-<label>
    "cross-*",  # per-hop cross-traffic sources: cross-<label>-hop<n>
    "gateway-*",  # gateway padding timer: gateway-<label>
    "gateway-blocking-*",  # disturbance blocking-duration draws
    "gateway-jitter-*",  # disturbance jitter draws
    "net-noise-*",  # hybrid analytic network noise: net-noise-<tag>-<label>
    "payload",  # payload source (no class split)
    "payload-*",  # payload source: payload-<label>
    "population-*",  # population subsystem: AS-graph growth, flow placement, rate mix
)


def seeded_rng(seed: int) -> np.random.Generator:
    """The sanctioned constructor for an explicitly seeded generator.

    Thin wrapper over ``np.random.default_rng(seed)`` — bit-identical to
    calling it directly — that exists so determinism tooling can tell an
    *explicitly seeded* generator from an unseeded one: ``repro check``
    forbids ``default_rng`` calls outside this module (rule RNG001), and code
    that legitimately derives a generator from data (e.g. a grid point's
    digest) routes through here.
    """
    return np.random.default_rng(seed)


def derived_rng(component: str, seed: int = 0) -> np.random.Generator:
    """A deterministic per-component generator for unthreaded call sites.

    Components that accept an optional ``rng`` parameter (taps, gateways,
    payload sources, the bootstrap) historically fell back to an *unseeded*
    ``np.random.default_rng()`` — which made any run that forgot to thread a
    generator silently irreproducible.  This is the replacement fallback: the
    stream is derived from ``(seed, component)`` exactly like
    :meth:`RandomStreams.get` derives named streams, so

    * the same component falls back to the same stream in every run, and
    * different components fall back to *independent* streams even at the
      same ``seed``.

    Experiment paths still thread named streams explicitly; this fallback
    exists for interactive use and direct component construction.
    """
    if not isinstance(component, str) or not component:
        raise ValueError(f"component must be a non-empty string, got {component!r}")
    digest = np.frombuffer(component.encode("utf-8"), dtype=np.uint8)
    child = np.random.SeedSequence(
        entropy=seed, spawn_key=tuple(int(b) for b in digest)
    )
    return np.random.default_rng(child)


class RandomStreams:
    """A registry of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Master seed.  ``None`` produces OS entropy (non-reproducible runs);
        experiments in this repository always pass an explicit integer.

    Examples
    --------
    >>> streams = RandomStreams(seed=7)
    >>> payload_rng = streams.get("payload")
    >>> jitter_rng = streams.get("gateway-jitter")
    >>> payload_rng is streams.get("payload")   # streams are cached by name
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)
        self._generators: Dict[str, np.random.Generator] = {}
        self._children: Dict[str, np.random.SeedSequence] = {}

    @property
    def seed(self) -> Optional[int]:
        """The master seed this registry was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The child seed is derived from the master seed and the stream name
        only, so the same ``(seed, name)`` pair always yields the same stream
        regardless of creation order.
        """
        if not isinstance(name, str) or not name:
            raise ValueError(f"stream name must be a non-empty string, got {name!r}")
        if name not in self._generators:
            # Derive the child from the master entropy plus a stable hash of
            # the name.  Using the name (not the creation order) keeps streams
            # stable when new components are added to an experiment.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(int(b) for b in digest),
            )
            self._children[name] = child
            self._generators[name] = np.random.default_rng(child)
        return self._generators[name]

    def spawn(self, name: str, count: int) -> List[np.random.Generator]:
        """Create ``count`` independent sub-streams under ``name``.

        Useful for per-hop cross-traffic sources: ``spawn("cross", 15)``
        returns fifteen independent generators that are all reproducible from
        the master seed.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.get(f"{name}[{i}]") for i in range(count)]

    def names(self) -> List[str]:
        """Names of the streams created so far (sorted for determinism)."""
        return sorted(self._generators)

    def __contains__(self, name: str) -> bool:
        return name in self._generators

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RandomStreams(seed={self._seed!r}, streams={len(self._generators)})"


class ChunkedDraws:
    """Scalar draws served from batched numpy calls, bit-identical to scalar use.

    Wraps one distribution method of one ``Generator`` and refills an internal
    buffer ``chunk`` values at a time.  Because numpy fills array requests
    from the same bit stream as repeated scalar calls, the sequence returned
    by :meth:`next` is byte-for-byte the sequence ``float(rng.<dist>(*args))``
    would have produced — only ~50x cheaper per draw.

    The wrapped generator must be used **exclusively** through this buffer:
    interleaving direct draws on the same ``rng`` would observe a stream that
    has already advanced past the buffered values.  That is why every consumer
    in this repository owns a dedicated named stream.

    Parameters
    ----------
    rng:
        The generator to draw from (takes exclusive ownership).
    distribution:
        Name of the ``Generator`` method to call (``"exponential"``,
        ``"normal"``, ...).
    args:
        Positional parameters of the distribution (e.g. the scale).
    chunk:
        Buffer size; any positive value yields the identical sequence.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        distribution: str,
        args: Tuple[float, ...],
        chunk: int = 1024,
    ) -> None:
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk!r}")
        method = getattr(rng, distribution, None)
        if not callable(method):
            raise ValueError(f"generator has no distribution method {distribution!r}")
        self._method = method
        self._args = tuple(args)
        self._chunk = int(chunk)
        self._buffer = np.empty(0, dtype=float)
        self._index = 0

    def next(self) -> float:
        """The next value of the stream (refilling the buffer when drained)."""
        if self._index >= self._buffer.size:
            self._buffer = self._method(*self._args, size=self._chunk)
            self._index = 0
        value = self._buffer[self._index]
        self._index += 1
        return float(value)

    __call__ = next


__all__ = [
    "DECLARED_STREAMS",
    "ChunkedDraws",
    "RandomStreams",
    "derived_rng",
    "seeded_rng",
]
