"""Reproducible, independent random-number streams.

Every stochastic component in the simulation (payload source, VIT timer,
gateway disturbance, per-hop cross traffic, adversary capture jitter, ...)
draws from its *own* named stream.  Streams are spawned from a single master
``numpy.random.SeedSequence`` so that

* the whole experiment is reproducible from one integer seed,
* adding a new component (a new stream name) does not perturb the draws seen
  by existing components, and
* streams are statistically independent by construction
  (``SeedSequence.spawn`` guarantees this).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np


class RandomStreams:
    """A registry of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Master seed.  ``None`` produces OS entropy (non-reproducible runs);
        experiments in this repository always pass an explicit integer.

    Examples
    --------
    >>> streams = RandomStreams(seed=7)
    >>> payload_rng = streams.get("payload")
    >>> jitter_rng = streams.get("gateway-jitter")
    >>> payload_rng is streams.get("payload")   # streams are cached by name
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)
        self._generators: Dict[str, np.random.Generator] = {}
        self._children: Dict[str, np.random.SeedSequence] = {}

    @property
    def seed(self) -> Optional[int]:
        """The master seed this registry was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The child seed is derived from the master seed and the stream name
        only, so the same ``(seed, name)`` pair always yields the same stream
        regardless of creation order.
        """
        if not isinstance(name, str) or not name:
            raise ValueError(f"stream name must be a non-empty string, got {name!r}")
        if name not in self._generators:
            # Derive the child from the master entropy plus a stable hash of
            # the name.  Using the name (not the creation order) keeps streams
            # stable when new components are added to an experiment.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(int(b) for b in digest),
            )
            self._children[name] = child
            self._generators[name] = np.random.default_rng(child)
        return self._generators[name]

    def spawn(self, name: str, count: int) -> Iterable[np.random.Generator]:
        """Create ``count`` independent sub-streams under ``name``.

        Useful for per-hop cross-traffic sources: ``spawn("cross", 15)``
        returns fifteen independent generators that are all reproducible from
        the master seed.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.get(f"{name}[{i}]") for i in range(count)]

    def names(self) -> Iterable[str]:
        """Names of the streams created so far (sorted for determinism)."""
        return sorted(self._generators)

    def __contains__(self, name: str) -> bool:
        return name in self._generators

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RandomStreams(seed={self._seed!r}, streams={len(self._generators)})"


__all__ = ["RandomStreams"]
