"""``python -m repro`` — regenerate the paper's evaluation figures."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
