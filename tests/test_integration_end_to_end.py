"""End-to-end integration tests: the full system wired together by hand.

The experiment harness (tests/experiments) drives the same components through
the ``ScenarioConfig`` path; these tests build the Figure 1 system explicitly
— payload source → sender gateway → unprotected path with cross traffic →
adversary tap → receiver gateway → destination — and check the cross-cutting
invariants that no single-module test can see:

* payload is conserved end to end and dummies never reach the destination,
* the padded stream observed by the tap hides the payload *rate* but leaks
  its *variance signature* under CIT padding,
* the same wiring with a VIT timer removes the leak,
* the analytical model built from the same parameters predicts what the
  simulation measures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import Tap, VarianceFeature, evaluate_attack
from repro.core import GaussianPIATModel, detection_rate_variance
from repro.network import CountingSink, UnprotectedPath
from repro.network.crosstraffic import cross_traffic_rate_for_utilization
from repro.padding import (
    InterruptDisturbance,
    ReceiverGateway,
    SenderGateway,
    cit_policy,
    vit_policy,
)
from repro.sim import RandomStreams, Simulator
from repro.traffic import PacketKind, PoissonSource
from repro.units import PAPER_PACKET_SIZE_BYTES


def build_system(policy, payload_rate_pps, utilization, seed, duration):
    """Wire the complete Figure 1 system and run it for ``duration`` seconds."""
    streams = RandomStreams(seed=seed)
    simulator = Simulator()
    destination = CountingSink()
    receiver = ReceiverGateway(simulator, destination=destination)
    tap = Tap(simulator)

    def tap_then_receive(packet):
        tap.observe(packet)
        receiver.accept(packet)

    path = UnprotectedPath(simulator, exit_sink=tap_then_receive, n_hops=1, link_rate_bps=80e6)
    if utilization > 0.0:
        cross_rate = cross_traffic_rate_for_utilization(
            utilization, 80e6, PAPER_PACKET_SIZE_BYTES, padded_rate_pps=policy.padded_rate_pps
        )
        path.attach_cross_traffic(0, cross_rate, rng=streams.get("cross"))
        path.start_cross_traffic()
    gateway = SenderGateway(
        simulator,
        policy.make_timer(),
        output=path.entry,
        rng=streams.get("gateway"),
        disturbance=InterruptDisturbance(),
    )
    source = PoissonSource(
        simulator, gateway.accept_payload, rate=payload_rate_pps, rng=streams.get("payload")
    )
    gateway.start()
    source.start()
    simulator.run(until=duration)
    source.stop()
    gateway.stop()
    path.stop_cross_traffic()
    simulator.run(until=duration + 0.5)
    return {
        "gateway": gateway,
        "path": path,
        "tap": tap,
        "receiver": receiver,
        "destination": destination,
    }


class TestEndToEndDataPath:
    @pytest.fixture(scope="class")
    def system(self):
        return build_system(cit_policy(), payload_rate_pps=40.0, utilization=0.2, seed=1, duration=60.0)

    def test_payload_conservation(self, system):
        gateway = system["gateway"]
        receiver = system["receiver"]
        destination = system["destination"]
        sent_payload = gateway.counters.get("payload_sent")
        assert destination.total == sent_payload
        assert receiver.payload_delivered == sent_payload
        assert gateway.counters.get("payload_dropped") == 0

    def test_dummies_are_stripped_at_gw2(self, system):
        receiver = system["receiver"]
        destination = system["destination"]
        assert receiver.dummies_discarded == system["gateway"].counters.get("dummy_sent")
        assert all(p.kind is PacketKind.PAYLOAD for p in destination.packets)

    def test_cross_traffic_never_reaches_the_receiver(self, system):
        assert system["receiver"].counters.get("packets_received") == system["gateway"].packets_sent

    def test_tap_sees_the_padded_rate_not_the_payload_rate(self, system):
        observed = system["tap"].observed_rate_pps()
        assert observed == pytest.approx(100.0, rel=0.02)
        assert not observed == pytest.approx(40.0, rel=0.2)

    def test_padded_piat_mean_equals_timer_interval(self, system):
        intervals = system["tap"].intervals(since=2.0)
        assert np.mean(intervals) == pytest.approx(0.01, rel=1e-3)

    def test_router_utilization_matches_target(self, system):
        assert system["path"].routers[0].measured_utilization() == pytest.approx(0.2, rel=0.1)

    def test_payload_latency_is_bounded(self, system):
        # 100 pps padding drains a 40 pps payload: latency stays near one interval.
        assert system["receiver"].mean_payload_latency() < 0.03


class TestEndToEndAttack:
    def _captures(self, policy, utilization, seed):
        captures = {}
        for label, rate in (("low", 10.0), ("high", 40.0)):
            system = build_system(policy, rate, utilization, seed=seed + hash(label) % 1000, duration=130.0)
            captures[label] = system["tap"].intervals(since=2.0)[:12_000]
        return captures

    def test_cit_leaks_and_vit_does_not(self):
        feature = VarianceFeature()
        sample_size = 1000

        cit_train = self._captures(cit_policy(), 0.0, seed=10)
        cit_test = self._captures(cit_policy(), 0.0, seed=20)
        cit = evaluate_attack(cit_train, cit_test, feature, sample_size)

        vit_policy_ = vit_policy(sigma_t=1e-3)
        vit_train = self._captures(vit_policy_, 0.0, seed=30)
        vit_test = self._captures(vit_policy_, 0.0, seed=40)
        vit = evaluate_attack(vit_train, vit_test, feature, sample_size)

        assert cit.detection_rate > 0.85
        assert vit.detection_rate < 0.7
        assert cit.detection_rate - vit.detection_rate > 0.2

    def test_simulation_matches_analytic_model(self):
        """The measured PIAT variances agree with the Gaussian model the theory uses."""
        policy = cit_policy()
        captures = self._captures(policy, 0.0, seed=50)
        model = GaussianPIATModel.from_system(policy, InterruptDisturbance())
        measured_low = float(np.var(captures["low"]))
        measured_high = float(np.var(captures["high"]))
        assert measured_low == pytest.approx(model.variance_low, rel=0.3)
        assert measured_high == pytest.approx(model.variance_high, rel=0.3)
        measured_r = measured_high / measured_low
        assert measured_r == pytest.approx(model.variance_ratio, rel=0.3)
        # And the closed form evaluated at the *measured* r still predicts a
        # highly effective attack at n = 1000, as observed empirically above.
        assert detection_rate_variance(measured_r, 1000) > 0.9
