"""Tests for sample-size inversion (Figure 5(b) arithmetic)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    detection_rate_entropy,
    detection_rate_variance,
    sample_size_for_detection,
    sample_size_vs_sigma_t,
    sigma_t_for_sample_size,
)
from repro.exceptions import AnalysisError
from repro.padding import InterruptDisturbance


class TestSampleSizeForDetection:
    def test_inverts_theorem_2(self):
        r, target = 1.8, 0.95
        n = sample_size_for_detection(target, r, feature="variance")
        assert detection_rate_variance(r, n) == pytest.approx(target, abs=1e-9)

    def test_inverts_theorem_3(self):
        r, target = 1.6, 0.9
        n = sample_size_for_detection(target, r, feature="entropy")
        assert detection_rate_entropy(r, n) == pytest.approx(target, abs=1e-9)

    def test_unreachable_at_r_equal_one(self):
        assert math.isinf(sample_size_for_detection(0.99, 1.0, feature="variance"))
        assert math.isinf(sample_size_for_detection(0.99, 1.0, feature="entropy"))

    def test_mean_feature_cannot_reach_high_targets(self):
        assert math.isinf(sample_size_for_detection(0.99, 1.5, feature="mean"))

    def test_mean_feature_reachable_target_needs_minimal_sample(self):
        # With r = 100 Theorem 1 already gives ~0.9 regardless of n.
        assert sample_size_for_detection(0.55, 100.0, feature="mean") == 2.0

    def test_higher_targets_need_larger_samples(self):
        sizes = [sample_size_for_detection(p, 1.5, "variance") for p in (0.6, 0.9, 0.99, 0.999)]
        assert all(b > a for a, b in zip(sizes, sizes[1:]))

    def test_validation(self):
        with pytest.raises(AnalysisError):
            sample_size_for_detection(0.4, 2.0)
        with pytest.raises(AnalysisError):
            sample_size_for_detection(1.0, 2.0)
        with pytest.raises(AnalysisError):
            sample_size_for_detection(0.9, 2.0, feature="mad")


class TestSampleSizeVsSigmaT:
    def test_required_sample_explodes_with_sigma_t(self):
        """The Figure 5(b) shape: n(99%) grows without bound as sigma_T grows."""
        sigma_ts = [0.0, 1e-5, 1e-4, 1e-3, 1e-2]
        sizes = sample_size_vs_sigma_t(sigma_ts, target_detection_rate=0.99, feature="variance")
        assert sizes.shape == (5,)
        assert all(b > a for a, b in zip(sizes, sizes[1:]))
        # CIT (sigma_T = 0) is attackable with a modest sample...
        assert sizes[0] < 10_000
        # ...while sigma_T = 1 ms needs an astronomically large one.
        assert sizes[3] > 1e8

    def test_entropy_and_variance_are_similar_orders(self):
        sizes_v = sample_size_vs_sigma_t([1e-3], feature="variance")
        sizes_h = sample_size_vs_sigma_t([1e-3], feature="entropy")
        assert 0.1 < sizes_v[0] / sizes_h[0] < 10.0

    def test_net_variance_also_inflates_required_sample(self):
        clean = sample_size_vs_sigma_t([0.0], feature="variance")[0]
        noisy = sample_size_vs_sigma_t([0.0], feature="variance", net_variance=1e-8)[0]
        assert noisy > clean

    def test_negative_sigma_rejected(self):
        with pytest.raises(AnalysisError):
            sample_size_vs_sigma_t([-1e-3])


class TestSigmaTForSampleSize:
    def test_round_trip(self):
        disturbance = InterruptDisturbance()
        sigma_t = sigma_t_for_sample_size(1e9, target_detection_rate=0.99, disturbance=disturbance)
        required = sample_size_vs_sigma_t(
            [sigma_t], target_detection_rate=0.99, disturbance=disturbance
        )[0]
        assert required >= 1e9
        # And just below the returned sigma_T the requirement is not yet met.
        required_below = sample_size_vs_sigma_t(
            [sigma_t * 0.9], target_detection_rate=0.99, disturbance=disturbance
        )[0]
        assert required_below < 1e9

    def test_monotone_in_required_sample(self):
        small = sigma_t_for_sample_size(1e6)
        large = sigma_t_for_sample_size(1e12)
        assert large > small

    def test_validation(self):
        with pytest.raises(AnalysisError):
            sigma_t_for_sample_size(1.0)
        with pytest.raises(AnalysisError):
            sigma_t_for_sample_size(1e9, target_detection_rate=0.3)
        with pytest.raises(AnalysisError):
            sigma_t_for_sample_size(1e9, sigma_t_bounds=(1.0, 0.1))
        with pytest.raises(AnalysisError):
            # Bound the search so tightly that the requirement cannot be met.
            sigma_t_for_sample_size(1e30, sigma_t_bounds=(1e-7, 1e-6))
