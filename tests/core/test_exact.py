"""Tests for the exact Bayes detection rates under the Gaussian model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    detection_rate_entropy_exact,
    detection_rate_mean_exact,
    detection_rate_variance_exact,
)
from repro.core.theorems import detection_rate_mean, detection_rate_variance
from repro.exceptions import AnalysisError


class TestExactMean:
    def test_floor_at_r_equal_one(self):
        assert detection_rate_mean_exact(1.0) == 0.5

    def test_monotone_in_r(self):
        rates = [detection_rate_mean_exact(r) for r in (1.0, 1.2, 2.0, 10.0, 100.0)]
        assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_against_monte_carlo(self, rng):
        """Exact rate matches brute-force Bayes classification of Gaussian draws."""
        r = 3.0
        n = 400_000
        low = rng.normal(0.0, 1.0, size=n)
        high = rng.normal(0.0, np.sqrt(r), size=n)
        threshold = np.sqrt(r * np.log(r) / (r - 1.0))
        correct = np.sum(np.abs(low) < threshold) + np.sum(np.abs(high) >= threshold)
        assert correct / (2 * n) == pytest.approx(detection_rate_mean_exact(r), abs=0.01)

    def test_approximation_tracks_exact(self):
        """Theorem 1's closed form stays within a few points of the exact rate."""
        for r in (1.0, 1.3, 1.8, 2.5, 4.0):
            assert detection_rate_mean(r) == pytest.approx(
                detection_rate_mean_exact(r), abs=0.08
            )

    def test_invalid_ratio(self):
        with pytest.raises(AnalysisError):
            detection_rate_mean_exact(0.5)


class TestExactVariance:
    def test_floor_at_r_equal_one(self):
        assert detection_rate_variance_exact(1.0, 1000) == 0.5

    def test_monotone_in_n(self):
        rates = [detection_rate_variance_exact(1.5, n) for n in (5, 50, 500, 5000)]
        assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_approaches_one_for_large_samples(self):
        assert detection_rate_variance_exact(1.8, 50_000) > 0.999

    def test_against_monte_carlo(self, rng):
        """Exact chi-square expression matches simulated sample-variance classification."""
        r, n, trials = 2.0, 50, 20_000
        low = rng.normal(0.0, 1.0, size=(trials, n)).var(axis=1, ddof=1)
        high = rng.normal(0.0, np.sqrt(r), size=(trials, n)).var(axis=1, ddof=1)
        threshold = r * np.log(r) / (r - 1.0)
        correct = np.sum(low <= threshold) + np.sum(high > threshold)
        assert correct / (2 * trials) == pytest.approx(
            detection_rate_variance_exact(r, n), abs=0.01
        )

    def test_theorem2_is_conservative_at_moderate_n(self):
        """The paper's approximation under-estimates the exact Bayes rate."""
        for n in (200, 1000, 5000):
            assert detection_rate_variance(1.8, n) <= detection_rate_variance_exact(1.8, n) + 1e-9

    def test_sample_size_validation(self):
        with pytest.raises(AnalysisError):
            detection_rate_variance_exact(2.0, 1)


class TestExactEntropy:
    def test_equals_exact_variance(self):
        assert detection_rate_entropy_exact(1.7, 300) == detection_rate_variance_exact(1.7, 300)


class TestProperties:
    @given(
        r=st.floats(min_value=1.0, max_value=50.0),
        n=st.integers(min_value=2, max_value=10_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_exact_rates_lie_in_half_one(self, r, n):
        assert 0.5 <= detection_rate_mean_exact(r) <= 1.0
        assert 0.5 <= detection_rate_variance_exact(r, n) <= 1.0

    @given(r=st.floats(min_value=1.001, max_value=20.0))
    @settings(max_examples=100, deadline=None)
    def test_exact_variance_beats_exact_mean_for_large_samples(self, r):
        """With enough data, dispersion features dominate the mean (the paper's point)."""
        assert detection_rate_variance_exact(r, 5000) >= detection_rate_mean_exact(r) - 1e-9
