"""Tests for the variance ratio r (equation 16)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GaussianPIATModel, variance_ratio, variance_ratio_from_model
from repro.core.variance_ratio import check_ratio
from repro.exceptions import AnalysisError


class TestVarianceRatio:
    def test_basic_ratio(self):
        assert variance_ratio(1e-10, 3e-10) == pytest.approx(3.0)

    def test_timer_variance_dilutes_the_ratio(self):
        base = variance_ratio(1e-10, 3e-10)
        with_timer = variance_ratio(1e-10, 3e-10, timer_variance=1e-8)
        assert with_timer < base
        assert with_timer == pytest.approx(1.0, abs=0.05)

    def test_net_variance_dilutes_the_ratio(self):
        base = variance_ratio(1e-10, 3e-10)
        noisy = variance_ratio(1e-10, 3e-10, net_variance=5e-10)
        assert 1.0 < noisy < base

    def test_equal_gateway_variances_give_one(self):
        assert variance_ratio(2e-10, 2e-10) == pytest.approx(1.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            variance_ratio(-1e-10, 3e-10)
        with pytest.raises(AnalysisError):
            variance_ratio(1e-10, 3e-10, timer_variance=-1.0)
        with pytest.raises(AnalysisError):
            variance_ratio(1e-10, 3e-10, net_variance=-1.0)

    def test_wrong_ordering_rejected(self):
        with pytest.raises(AnalysisError):
            variance_ratio(3e-10, 1e-10)

    def test_zero_denominator_rejected(self):
        with pytest.raises(AnalysisError):
            variance_ratio(0.0, 0.0)

    def test_from_model(self):
        model = GaussianPIATModel(tau=0.01, sigma_low=1e-5, sigma_high=2e-5)
        assert variance_ratio_from_model(model) == pytest.approx(4.0)

    @given(
        gw_low=st.floats(min_value=1e-12, max_value=1e-6),
        gw_extra=st.floats(min_value=0.0, max_value=1e-6),
        timer=st.floats(min_value=0.0, max_value=1e-4),
        net=st.floats(min_value=0.0, max_value=1e-4),
    )
    @settings(max_examples=200, deadline=None)
    def test_ratio_always_at_least_one_and_shrinks_with_noise(self, gw_low, gw_extra, timer, net):
        gw_high = gw_low + gw_extra
        r = variance_ratio(gw_low, gw_high, timer, net)
        assert r >= 1.0
        r_noisier = variance_ratio(gw_low, gw_high, timer + 1e-6, net)
        assert r_noisier <= r + 1e-12


class TestCheckRatio:
    def test_accepts_valid(self):
        assert check_ratio(1.0) == 1.0
        assert check_ratio(2.5) == 2.5

    def test_rejects_invalid(self):
        with pytest.raises(AnalysisError):
            check_ratio(0.99)
        with pytest.raises(AnalysisError):
            check_ratio(float("nan"))
        with pytest.raises(AnalysisError):
            check_ratio(float("inf"))
