"""Tests for the Gaussian PIAT model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GaussianPIATModel
from repro.exceptions import AnalysisError
from repro.padding import InterruptDisturbance, cit_policy, vit_policy
from repro.stats import normality_report


class TestConstruction:
    def test_direct_construction_and_properties(self):
        model = GaussianPIATModel(tau=0.01, sigma_low=1e-5, sigma_high=1.5e-5)
        assert model.variance_ratio == pytest.approx(2.25)
        assert model.padded_rate_pps == pytest.approx(100.0)
        assert model.variance_low == pytest.approx(1e-10)
        assert model.variance_high == pytest.approx(2.25e-10)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            GaussianPIATModel(tau=0.0, sigma_low=1e-5, sigma_high=2e-5)
        with pytest.raises(AnalysisError):
            GaussianPIATModel(tau=0.01, sigma_low=0.0, sigma_high=1e-5)
        with pytest.raises(AnalysisError):
            GaussianPIATModel(tau=0.01, sigma_low=2e-5, sigma_high=1e-5)

    def test_from_components_matches_equation_13_and_15(self):
        model = GaussianPIATModel.from_components(
            gw_variance_low=1e-10,
            gw_variance_high=3e-10,
            timer_variance=2e-10,
            net_variance=1e-10,
            tau=0.01,
        )
        assert model.variance_low == pytest.approx(4e-10)
        assert model.variance_high == pytest.approx(6e-10)
        assert model.variance_ratio == pytest.approx(1.5)

    def test_from_system_cit_vs_vit(self):
        disturbance = InterruptDisturbance()
        cit_model = GaussianPIATModel.from_system(cit_policy(), disturbance)
        vit_model = GaussianPIATModel.from_system(vit_policy(sigma_t=1e-3), disturbance)
        assert cit_model.variance_ratio > vit_model.variance_ratio
        assert vit_model.variance_ratio == pytest.approx(1.0, abs=1e-3)
        assert vit_model.sigma_low == pytest.approx(1e-3, rel=0.01)

    def test_from_system_with_path(self):
        disturbance = InterruptDisturbance()
        clean = GaussianPIATModel.from_system(cit_policy(), disturbance)
        behind_router = GaussianPIATModel.from_system(
            cit_policy(),
            disturbance,
            path_utilizations=[0.4],
            hop_service_time=8.2e-5,
        )
        assert behind_router.variance_ratio < clean.variance_ratio
        assert behind_router.sigma_low > clean.sigma_low

    def test_from_system_validation(self):
        with pytest.raises(AnalysisError):
            GaussianPIATModel.from_system(cit_policy(), low_rate_pps=40, high_rate_pps=10)
        with pytest.raises(AnalysisError):
            GaussianPIATModel.from_system(
                cit_policy(), path_utilizations=[0.3], hop_service_time=0.0
            )


class TestSampling:
    def test_sample_moments_match_model(self, rng):
        model = GaussianPIATModel(tau=0.01, sigma_low=2e-5, sigma_high=4e-5)
        low = model.sample_intervals("low", 50_000, rng=rng)
        high = model.sample_intervals("high", 50_000, rng=rng)
        assert np.mean(low) == pytest.approx(0.01, rel=1e-3)
        assert np.mean(high) == pytest.approx(0.01, rel=1e-3)
        assert np.std(low) == pytest.approx(2e-5, rel=0.02)
        assert np.std(high) == pytest.approx(4e-5, rel=0.02)

    def test_samples_are_positive_and_normalish(self, rng):
        model = GaussianPIATModel(tau=0.01, sigma_low=2e-5, sigma_high=4e-5)
        sample = model.sample_intervals("high", 5000, rng=rng)
        assert np.all(sample > 0.0)
        assert normality_report(sample).looks_normal

    def test_label_aliases(self, rng):
        model = GaussianPIATModel(tau=0.01, sigma_low=2e-5, sigma_high=4e-5)
        assert np.std(model.sample_intervals("l", 20_000, rng=rng)) == pytest.approx(2e-5, rel=0.05)
        assert np.std(model.sample_intervals("H", 20_000, rng=rng)) == pytest.approx(4e-5, rel=0.05)

    def test_invalid_label_and_size(self, rng):
        model = GaussianPIATModel(tau=0.01, sigma_low=2e-5, sigma_high=4e-5)
        with pytest.raises(AnalysisError):
            model.sample_intervals("medium", 10, rng=rng)
        with pytest.raises(AnalysisError):
            model.sample_intervals("low", 0, rng=rng)

    def test_pdf_peaks_at_tau(self):
        model = GaussianPIATModel(tau=0.01, sigma_low=2e-5, sigma_high=4e-5)
        xs = np.array([0.0095, 0.01, 0.0105])
        pdf = model.pdf("low", xs)
        assert pdf[1] > pdf[0] and pdf[1] > pdf[2]
        # The high-rate PDF is wider, hence lower at the mode (Figure 4(a)).
        assert model.pdf("high", np.array([0.01]))[0] < pdf[1]

    def test_describe_mentions_ratio(self):
        model = GaussianPIATModel(tau=0.01, sigma_low=2e-5, sigma_high=4e-5)
        assert "r=" in model.describe()
