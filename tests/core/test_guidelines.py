"""Tests for the design guidelines."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    padding_bandwidth_overhead,
    recommend_policy,
    required_sigma_t,
    safe_observation_budget,
)
from repro.core.guidelines import worst_case_detection_rate
from repro.exceptions import AnalysisError
from repro.padding import cit_policy, vit_policy


class TestBandwidthOverhead:
    def test_paper_configuration_overheads(self):
        assert padding_bandwidth_overhead(10.0, 100.0) == pytest.approx(0.9)
        assert padding_bandwidth_overhead(40.0, 100.0) == pytest.approx(0.6)

    def test_no_padding_needed_at_full_rate(self):
        assert padding_bandwidth_overhead(100.0, 100.0) == 0.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            padding_bandwidth_overhead(10.0, 0.0)
        with pytest.raises(AnalysisError):
            padding_bandwidth_overhead(-1.0, 10.0)
        with pytest.raises(AnalysisError):
            padding_bandwidth_overhead(200.0, 100.0)


class TestWorstCaseDetection:
    def test_cit_is_detectable_with_large_samples(self):
        assert worst_case_detection_rate(sample_size=10_000, sigma_t=0.0) > 0.95

    def test_large_sigma_t_pins_detection_to_floor(self):
        assert worst_case_detection_rate(sample_size=10_000, sigma_t=5e-3) < 0.55

    def test_monotone_decreasing_in_sigma_t(self):
        rates = [worst_case_detection_rate(5_000, s) for s in (0.0, 1e-4, 1e-3, 1e-2)]
        assert all(b <= a for a, b in zip(rates, rates[1:]))

    def test_validation(self):
        with pytest.raises(AnalysisError):
            worst_case_detection_rate(1, 0.0)
        with pytest.raises(AnalysisError):
            worst_case_detection_rate(100, -1.0)


class TestRequiredSigmaT:
    def test_meets_the_budget(self):
        sigma_t = required_sigma_t(max_detection_rate=0.6, max_observable_sample=100_000)
        assert worst_case_detection_rate(100_000, sigma_t) <= 0.6
        # And it is not absurdly conservative: 10x less jitter busts the budget.
        assert worst_case_detection_rate(100_000, sigma_t / 10.0) > 0.6

    def test_larger_observation_budget_needs_more_jitter(self):
        small = required_sigma_t(0.6, 10_000)
        large = required_sigma_t(0.6, 10_000_000)
        assert large > small

    def test_validation(self):
        with pytest.raises(AnalysisError):
            required_sigma_t(0.4, 1000)
        with pytest.raises(AnalysisError):
            required_sigma_t(0.6, 1)


class TestRecommendPolicy:
    def test_recommends_a_vit_policy_meeting_the_budget(self):
        guideline = recommend_policy(max_detection_rate=0.6, max_observable_sample=1_000_000)
        assert guideline.policy.kind == "VIT"
        assert guideline.worst_case_detection <= 0.6
        assert guideline.attack_sample_for_99pct > 1_000_000
        assert guideline.bandwidth_overhead_low == pytest.approx(0.9)
        assert guideline.bandwidth_overhead_high == pytest.approx(0.6)

    def test_summary_is_human_readable(self):
        guideline = recommend_policy()
        text = guideline.summary()
        assert "VIT" in text
        assert "worst-case detection rate" in text

    def test_padded_rate_must_cover_payload(self):
        with pytest.raises(AnalysisError):
            recommend_policy(mean_interval=0.1, high_rate_pps=40.0)

    def test_safety_factor_validation(self):
        with pytest.raises(AnalysisError):
            recommend_policy(safety_factor=0.5)


class TestSafeObservationBudget:
    def test_cit_budget_is_small(self):
        budget = safe_observation_budget(cit_policy(), max_detection_rate=0.6)
        assert budget < 10_000

    def test_vit_budget_is_enormous(self):
        budget = safe_observation_budget(vit_policy(sigma_t=1e-3), max_detection_rate=0.6)
        # > 1e7 intervals at 10 ms per interval is more than a day of traffic
        # at a constant payload rate -- far beyond a realistic attack window.
        assert budget > 1e7 or math.isinf(budget)

    def test_budget_grows_with_sigma_t(self):
        budgets = [
            safe_observation_budget(vit_policy(sigma_t=s), max_detection_rate=0.7)
            for s in (1e-5, 1e-4, 1e-3)
        ]
        assert all(b >= a for a, b in zip(budgets, budgets[1:]))

    def test_validation(self):
        with pytest.raises(AnalysisError):
            safe_observation_budget(cit_policy(), max_detection_rate=1.2)
