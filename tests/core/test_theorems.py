"""Tests for the closed-form detection-rate formulas (Theorems 1-3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    detection_rate_entropy,
    detection_rate_mean,
    detection_rate_variance,
    entropy_constant,
    variance_constant,
)
from repro.core.theorems import DETECTION_FLOOR, detection_rate
from repro.exceptions import AnalysisError


class TestTheorem1Mean:
    def test_floor_at_r_equal_one(self):
        assert detection_rate_mean(1.0) == pytest.approx(0.5)

    def test_increasing_in_r(self):
        rates = [detection_rate_mean(r) for r in (1.0, 1.5, 2.0, 5.0, 50.0)]
        assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_bounded_by_one(self):
        assert detection_rate_mean(1e9) < 1.0

    def test_stays_modest_in_paper_regime(self):
        """Figure 4(b): the sample-mean detection rate hovers near 50%."""
        assert detection_rate_mean(2.0) < 0.6

    def test_invalid_ratio_rejected(self):
        with pytest.raises(AnalysisError):
            detection_rate_mean(0.9)
        with pytest.raises(AnalysisError):
            detection_rate_mean(float("inf"))


class TestTheorem2Variance:
    def test_floor_at_r_equal_one(self):
        assert detection_rate_variance(1.0, 10_000) == DETECTION_FLOOR

    def test_constant_diverges_as_r_approaches_one(self):
        assert variance_constant(1.0) == math.inf
        assert variance_constant(1.0 + 1e-6) > 1e6

    def test_paper_formula_value(self):
        # Direct evaluation of equation (21) at r = 2.
        r = 2.0
        log_r = math.log(r)
        expected = 1.0 / (2 * (1 - log_r / (r - 1)) ** 2) + 1.0 / (
            2 * (r * log_r / (r - 1) - 1) ** 2
        )
        assert variance_constant(r) == pytest.approx(expected)

    def test_increases_with_sample_size(self):
        rates = [detection_rate_variance(1.8, n) for n in (10, 100, 1000, 10_000)]
        assert all(b >= a for a, b in zip(rates, rates[1:]))
        assert rates[-1] > 0.99

    def test_increases_with_r(self):
        rates = [detection_rate_variance(r, 500) for r in (1.1, 1.5, 2.0, 4.0)]
        assert all(b >= a for a, b in zip(rates, rates[1:]))

    def test_never_below_floor(self):
        assert detection_rate_variance(1.0001, 3) == DETECTION_FLOOR

    def test_sample_size_validation(self):
        with pytest.raises(AnalysisError):
            detection_rate_variance(2.0, 1)


class TestTheorem3Entropy:
    def test_floor_at_r_equal_one(self):
        assert detection_rate_entropy(1.0, 10_000) == DETECTION_FLOOR

    def test_constant_diverges_as_r_approaches_one(self):
        assert entropy_constant(1.0) == math.inf

    def test_paper_formula_value(self):
        r = 2.0
        log_r = math.log(r)
        expected = 1.0 / (2 * math.log(r * log_r / (r - 1)) ** 2) + 1.0 / (
            2 * math.log((r - 1) / log_r) ** 2
        )
        assert entropy_constant(r) == pytest.approx(expected)

    def test_increases_with_sample_size_and_r(self):
        assert detection_rate_entropy(1.8, 2000) > detection_rate_entropy(1.8, 100)
        assert detection_rate_entropy(3.0, 500) >= detection_rate_entropy(1.5, 500)

    def test_paper_shape_high_detection_at_n_1000(self):
        """Figure 4(b): by n = 1000 variance/entropy detection is near 100%."""
        for r in (1.6, 1.8, 2.2):
            assert detection_rate_entropy(r, 1000) > 0.95
            assert detection_rate_variance(r, 1000) > 0.95


class TestDispatch:
    def test_dispatch_by_name(self):
        assert detection_rate("mean", 2.0) == detection_rate_mean(2.0)
        assert detection_rate("variance", 2.0, 100) == detection_rate_variance(2.0, 100)
        assert detection_rate("entropy", 2.0, 100) == detection_rate_entropy(2.0, 100)

    def test_unknown_feature_rejected(self):
        with pytest.raises(AnalysisError):
            detection_rate("mad", 2.0, 100)


class TestProperties:
    @given(
        r=st.floats(min_value=1.0, max_value=100.0),
        n=st.integers(min_value=2, max_value=100_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_all_rates_lie_in_half_one(self, r, n):
        for value in (
            detection_rate_mean(r),
            detection_rate_variance(r, n),
            detection_rate_entropy(r, n),
        ):
            assert 0.5 <= value <= 1.0

    @given(
        r=st.floats(min_value=1.001, max_value=50.0),
        n_small=st.integers(min_value=2, max_value=1000),
        extra=st.integers(min_value=1, max_value=100_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotonicity_in_sample_size(self, r, n_small, extra):
        assert detection_rate_variance(r, n_small + extra) >= detection_rate_variance(r, n_small)
        assert detection_rate_entropy(r, n_small + extra) >= detection_rate_entropy(r, n_small)

    @given(
        r_small=st.floats(min_value=1.0, max_value=20.0),
        bump=st.floats(min_value=0.001, max_value=20.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotonicity_in_r(self, r_small, bump):
        assert detection_rate_mean(r_small + bump) >= detection_rate_mean(r_small)
        assert detection_rate_variance(r_small + bump, 500) >= detection_rate_variance(r_small, 500)
        assert detection_rate_entropy(r_small + bump, 500) >= detection_rate_entropy(r_small, 500)
