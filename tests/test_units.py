"""Tests for unit conversion helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units


class TestTimeConversions:
    def test_ms_round_trip(self):
        assert units.s_to_ms(units.ms_to_s(10.0)) == pytest.approx(10.0)

    def test_us_round_trip(self):
        assert units.s_to_us(units.us_to_s(250.0)) == pytest.approx(250.0)

    def test_paper_constants(self):
        assert units.PAPER_TIMER_INTERVAL_S == pytest.approx(0.010)
        assert units.PAPER_LOW_RATE_PPS == 10.0
        assert units.PAPER_HIGH_RATE_PPS == 40.0

    def test_array_inputs(self):
        out = units.ms_to_s(np.array([1.0, 10.0]))
        assert np.allclose(out, [0.001, 0.010])


class TestRateConversions:
    def test_pps_to_interval(self):
        assert units.pps_to_interval(100.0) == pytest.approx(0.01)

    def test_interval_to_pps(self):
        assert units.interval_to_pps(0.01) == pytest.approx(100.0)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            units.pps_to_interval(0.0)

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError):
            units.interval_to_pps(0.0)

    @given(rate=st.floats(min_value=1e-3, max_value=1e6))
    @settings(max_examples=100, deadline=None)
    def test_rate_interval_round_trip(self, rate):
        assert units.interval_to_pps(units.pps_to_interval(rate)) == pytest.approx(rate)


class TestLinkMath:
    def test_serialization_delay(self):
        # 512 bytes at 10 Mbit/s -> 4096 bits / 1e7 bps
        assert units.serialization_delay(512, 10e6) == pytest.approx(4.096e-4)

    def test_serialization_delay_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            units.serialization_delay(512, 0.0)

    def test_utilization(self):
        # 100 pps of 512-byte packets over 10 Mbit/s ~= 4.1% utilization
        value = units.utilization(100.0, 512, 10e6)
        assert value == pytest.approx(0.04096)

    def test_utilization_negative_load_rejected(self):
        with pytest.raises(ValueError):
            units.utilization(-1.0, 512, 10e6)

    def test_rate_for_utilization_inverts_utilization(self):
        rate = units.rate_for_utilization(0.3, 512, 100e6)
        assert units.utilization(rate, 512, 100e6) == pytest.approx(0.3)

    @given(target=st.floats(min_value=0.0, max_value=0.95))
    @settings(max_examples=50, deadline=None)
    def test_rate_for_utilization_round_trip(self, target):
        rate = units.rate_for_utilization(target, 512, 10e6)
        assert units.utilization(rate, 512, 10e6) == pytest.approx(target, abs=1e-12)
