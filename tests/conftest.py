"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import RandomStreams, Simulator


@pytest.fixture
def simulator() -> Simulator:
    """A fresh simulator starting at t = 0."""
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    """Deterministic random streams shared by tests that need randomness."""
    return RandomStreams(seed=12345)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator."""
    return np.random.default_rng(987654321)
