"""Tests for the periodic-process helper."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.sim import PeriodicProcess, delayed_call


class TestDelayedCall:
    def test_fires_once_after_delay(self, simulator):
        fired = []
        delayed_call(simulator, 2.0, fired.append, "x")
        simulator.run()
        assert fired == ["x"]
        assert simulator.now == 2.0


class TestPeriodicProcess:
    def test_constant_interval_activations(self, simulator):
        times = []
        process = PeriodicProcess(simulator, lambda: 1.0, times.append)
        process.start()
        simulator.run(until=5.5)
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert process.activations == 5

    def test_explicit_initial_delay(self, simulator):
        times = []
        process = PeriodicProcess(simulator, lambda: 1.0, times.append)
        process.start(initial_delay=0.25)
        simulator.run(until=2.5)
        assert times == [0.25, 1.25, 2.25]

    def test_stop_halts_activations(self, simulator):
        times = []
        process = PeriodicProcess(simulator, lambda: 1.0, times.append)
        process.start()
        simulator.run(until=2.5)
        process.stop()
        simulator.run(until=10.0)
        assert times == [1.0, 2.0]
        assert not process.active

    def test_stop_is_idempotent(self, simulator):
        process = PeriodicProcess(simulator, lambda: 1.0, lambda t: None)
        process.start()
        process.stop()
        process.stop()

    def test_double_start_rejected(self, simulator):
        process = PeriodicProcess(simulator, lambda: 1.0, lambda t: None)
        process.start()
        with pytest.raises(SimulationError):
            process.start()

    def test_restart_after_stop_is_allowed(self, simulator):
        times = []
        process = PeriodicProcess(simulator, lambda: 1.0, times.append)
        process.start()
        simulator.run(until=1.5)
        process.stop()
        process.start()
        simulator.run(until=3.0)
        assert times == [1.0, 2.5]

    def test_non_positive_interval_raises(self, simulator):
        process = PeriodicProcess(simulator, lambda: 0.0, lambda t: None)
        with pytest.raises(SimulationError):
            process.start()

    def test_negative_initial_delay_rejected(self, simulator):
        process = PeriodicProcess(simulator, lambda: 1.0, lambda t: None)
        with pytest.raises(SimulationError):
            process.start(initial_delay=-1.0)

    def test_action_may_stop_the_process(self, simulator):
        times = []

        def action(now):
            times.append(now)
            if len(times) == 3:
                process.stop()

        process = PeriodicProcess(simulator, lambda: 1.0, action)
        process.start()
        simulator.run(until=100.0)
        assert times == [1.0, 2.0, 3.0]

    def test_stochastic_intervals_consume_generator(self, simulator, rng):
        times = []
        process = PeriodicProcess(
            simulator, lambda: float(rng.exponential(0.1)) + 1e-9, times.append
        )
        process.start()
        simulator.run(until=10.0)
        # ~100 activations expected; allow a broad band.
        assert 40 < len(times) < 250
        assert all(b > a for a, b in zip(times, times[1:]))
