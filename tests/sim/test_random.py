"""Tests for named reproducible random streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_name_same_draws(self):
        a = RandomStreams(seed=42).get("payload").random(10)
        b = RandomStreams(seed=42).get("payload").random(10)
        assert np.array_equal(a, b)

    def test_different_names_give_different_draws(self):
        streams = RandomStreams(seed=42)
        a = streams.get("payload").random(10)
        b = streams.get("cross").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_give_different_draws(self):
        a = RandomStreams(seed=1).get("payload").random(10)
        b = RandomStreams(seed=2).get("payload").random(10)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        streams = RandomStreams(seed=7)
        assert streams.get("x") is streams.get("x")

    def test_creation_order_does_not_matter(self):
        first = RandomStreams(seed=9)
        first.get("a")
        a_then_b = first.get("b").random(5)

        second = RandomStreams(seed=9)
        b_only = second.get("b").random(5)
        assert np.array_equal(a_then_b, b_only)

    def test_spawn_creates_independent_streams(self):
        streams = RandomStreams(seed=3)
        children = list(streams.spawn("cross", 4))
        assert len(children) == 4
        draws = [rng.random(5) for rng in children]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(seed=1).spawn("x", -1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(seed=1).get("")

    def test_names_and_contains(self):
        streams = RandomStreams(seed=5)
        streams.get("b")
        streams.get("a")
        assert list(streams.names()) == ["a", "b"]
        assert "a" in streams
        assert "zzz" not in streams

    def test_seed_property(self):
        assert RandomStreams(seed=11).seed == 11
        assert RandomStreams().seed is None
