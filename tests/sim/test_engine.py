"""Unit tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SchedulingError, SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_initial_time_is_zero(self, simulator):
        assert simulator.now == 0.0
        assert simulator.processed_events == 0
        assert simulator.pending_events == 0

    def test_custom_start_time(self):
        sim = Simulator(start_time=5.0)
        assert sim.now == 5.0

    def test_events_fire_in_time_order(self, simulator):
        fired = []
        simulator.schedule(3.0, fired.append, "c")
        simulator.schedule(1.0, fired.append, "a")
        simulator.schedule(2.0, fired.append, "b")
        simulator.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_times(self, simulator):
        times = []
        simulator.schedule(1.5, lambda: times.append(simulator.now))
        simulator.schedule(4.0, lambda: times.append(simulator.now))
        simulator.run()
        assert times == [1.5, 4.0]

    def test_same_time_events_fire_in_scheduling_order(self, simulator):
        fired = []
        for label in "abcde":
            simulator.schedule(1.0, fired.append, label)
        simulator.run()
        assert fired == list("abcde")

    def test_priority_breaks_ties_before_sequence(self, simulator):
        fired = []
        simulator.schedule(1.0, fired.append, "late", priority=5)
        simulator.schedule(1.0, fired.append, "early", priority=-5)
        simulator.run()
        assert fired == ["early", "late"]

    def test_negative_delay_rejected(self, simulator):
        with pytest.raises(SchedulingError):
            simulator.schedule(-0.1, lambda: None)

    def test_nan_time_rejected(self, simulator):
        with pytest.raises(SchedulingError):
            simulator.schedule_at(float("nan"), lambda: None)

    def test_infinite_time_rejected(self, simulator):
        with pytest.raises(SchedulingError):
            simulator.schedule_at(float("inf"), lambda: None)

    def test_non_callable_rejected(self, simulator):
        with pytest.raises(TypeError):
            simulator.schedule(1.0, "not callable")

    def test_schedule_at_absolute_time(self, simulator):
        fired = []
        simulator.schedule_at(2.5, fired.append, "x")
        simulator.run()
        assert fired == ["x"]
        assert simulator.now == 2.5


class TestRun:
    def test_run_until_horizon_leaves_future_events(self, simulator):
        fired = []
        simulator.schedule(1.0, fired.append, "a")
        simulator.schedule(10.0, fired.append, "b")
        simulator.run(until=5.0)
        assert fired == ["a"]
        assert simulator.now == 5.0
        assert simulator.pending_events == 1

    def test_run_can_be_resumed(self, simulator):
        fired = []
        simulator.schedule(1.0, fired.append, "a")
        simulator.schedule(10.0, fired.append, "b")
        simulator.run(until=5.0)
        simulator.run(until=20.0)
        assert fired == ["a", "b"]

    def test_run_without_horizon_drains_heap(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        simulator.run()
        assert simulator.pending_events == 0

    def test_horizon_before_now_rejected(self, simulator):
        simulator.schedule(3.0, lambda: None)
        simulator.run(until=3.0)
        with pytest.raises(SchedulingError):
            simulator.run(until=1.0)

    def test_events_scheduled_during_run_are_processed(self, simulator):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                simulator.schedule(1.0, chain, depth + 1)

        simulator.schedule(1.0, chain, 0)
        simulator.run()
        assert fired == [0, 1, 2, 3]
        assert simulator.now == 4.0

    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            sim.run(until=1e9)

    def test_step_processes_single_event(self, simulator):
        fired = []
        simulator.schedule(1.0, fired.append, "a")
        simulator.schedule(2.0, fired.append, "b")
        assert simulator.step() is True
        assert fired == ["a"]
        assert simulator.step() is True
        assert simulator.step() is False

    def test_processed_event_counter(self, simulator):
        for i in range(5):
            simulator.schedule(float(i + 1), lambda: None)
        simulator.run()
        assert simulator.processed_events == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, simulator):
        fired = []
        event = simulator.schedule(1.0, fired.append, "a")
        simulator.cancel(event)
        simulator.run()
        assert fired == []

    def test_cancel_is_idempotent(self, simulator):
        event = simulator.schedule(1.0, lambda: None)
        simulator.cancel(event)
        simulator.cancel(event)
        simulator.run()

    def test_drain_cancelled_removes_only_cancelled(self, simulator):
        keep = simulator.schedule(1.0, lambda: None)
        drop = simulator.schedule(2.0, lambda: None)
        drop.cancel()
        removed = simulator.drain_cancelled()
        assert removed == 1
        assert simulator.pending_events == 1
        assert not keep.cancelled


class TestPropertyBased:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_fire_order_matches_sorted_delays(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: observed.append(d))
        sim.run()
        assert observed == sorted(delays)
        assert sim.now == max(delays)

    @given(delays=st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_clock_never_moves_backwards(self, delays):
        sim = Simulator()
        clock_samples = []
        for delay in delays:
            sim.schedule(delay, lambda: clock_samples.append(sim.now))
        sim.run()
        assert all(b >= a for a, b in zip(clock_samples, clock_samples[1:]))


class TestScheduleBatch:
    """Bulk insertion must be observationally identical to per-event pushes."""

    def test_batch_fires_in_time_order(self, simulator):
        fired = []
        simulator.schedule_batch([3.0, 1.0, 2.0], fired.append, args_list=[("c",), ("a",), ("b",)])
        simulator.run()
        assert fired == ["a", "b", "c"]

    def test_batch_ties_break_by_insertion_order(self, simulator):
        """Equal times and priorities fire in batch order (sequence numbers)."""
        fired = []
        simulator.schedule(1.0, fired.append, "push-first")
        simulator.schedule_batch([1.0, 1.0], fired.append, args_list=[("batch-0",), ("batch-1",)])
        simulator.run()
        assert fired == ["push-first", "batch-0", "batch-1"]

    def test_large_batch_matches_individual_pushes(self):
        times = [((i * 7919) % 1000) / 10.0 for i in range(500)]
        batched, pushed = Simulator(), Simulator()
        order_a, order_b = [], []
        batched.schedule_batch(times, order_a.append, args_list=[(t,) for t in times])
        for t in times:
            pushed.schedule_at(t, order_b.append, t)
        batched.run()
        pushed.run()
        assert order_a == order_b == sorted(times)

    def test_small_batch_takes_the_push_path(self, simulator):
        events = simulator.schedule_batch([1.0, 2.0], lambda: None)
        assert len(events) == 2
        assert simulator.pending_events == 2

    def test_batch_validates_like_schedule_at(self, simulator):
        with pytest.raises(SchedulingError):
            simulator.schedule_batch([1.0, float("nan")], lambda: None)
        with pytest.raises(SchedulingError):
            simulator.schedule_batch([-1.0], lambda: None)
        with pytest.raises(SchedulingError):
            simulator.schedule_batch([1.0], lambda: None, args_list=[(1,), (2,)])
        with pytest.raises(TypeError):
            simulator.schedule_batch([1.0], "not callable")
        # A failed batch must not leave partial state behind.
        assert simulator.pending_events == 0

    def test_batch_events_are_cancellable(self, simulator):
        fired = []
        events = simulator.schedule_batch([1.0, 2.0, 3.0], fired.append, args_list=[(1,), (2,), (3,)])
        events[1].cancel()
        simulator.run()
        assert fired == [1, 3]
