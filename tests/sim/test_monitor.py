"""Tests for simulation monitors (counters, time series, interval recorders)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CounterMonitor, IntervalMonitor, TimeSeriesMonitor


class TestCounterMonitor:
    def test_counters_start_at_zero(self):
        assert CounterMonitor().get("anything") == 0

    def test_increment_default_and_amount(self):
        counters = CounterMonitor()
        counters.increment("sent")
        counters.increment("sent", 4)
        assert counters.get("sent") == 5

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            CounterMonitor().increment("sent", -1)

    def test_as_dict_snapshot_and_reset(self):
        counters = CounterMonitor()
        counters.increment("a")
        snapshot = counters.as_dict()
        counters.increment("a")
        assert snapshot == {"a": 1}
        counters.reset()
        assert counters.get("a") == 0


class TestTimeSeriesMonitor:
    def test_records_and_exposes_arrays(self):
        series = TimeSeriesMonitor("queue")
        series.record(0.0, 1.0)
        series.record(1.0, 3.0)
        assert len(series) == 2
        assert np.array_equal(series.times, [0.0, 1.0])
        assert np.array_equal(series.values, [1.0, 3.0])

    def test_out_of_order_rejected(self):
        series = TimeSeriesMonitor()
        series.record(2.0, 1.0)
        with pytest.raises(ValueError):
            series.record(1.0, 1.0)

    def test_mean_and_maximum(self):
        series = TimeSeriesMonitor()
        for t, v in [(0.0, 2.0), (1.0, 4.0), (2.0, 6.0)]:
            series.record(t, v)
        assert series.mean() == pytest.approx(4.0)
        assert series.maximum() == 6.0

    def test_time_average_is_step_weighted(self):
        series = TimeSeriesMonitor()
        series.record(0.0, 0.0)
        series.record(1.0, 10.0)
        # value 0 holds for 1 s, value 10 holds for 3 s
        assert series.time_average(until=4.0) == pytest.approx(7.5)

    def test_time_average_until_before_last_rejected(self):
        series = TimeSeriesMonitor()
        series.record(0.0, 1.0)
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.time_average(until=2.0)

    def test_empty_monitor_raises(self):
        series = TimeSeriesMonitor()
        with pytest.raises(ValueError):
            series.mean()
        with pytest.raises(ValueError):
            series.maximum()
        with pytest.raises(ValueError):
            series.time_average()

    def test_reset(self):
        series = TimeSeriesMonitor()
        series.record(0.0, 1.0)
        series.reset()
        assert len(series) == 0


class TestIntervalMonitor:
    def test_intervals_are_diffs_of_timestamps(self):
        monitor = IntervalMonitor()
        for t in [0.0, 0.01, 0.03, 0.06]:
            monitor.record(t)
        assert np.allclose(monitor.intervals(), [0.01, 0.02, 0.03])

    def test_fewer_than_two_events_gives_empty_intervals(self):
        monitor = IntervalMonitor()
        assert monitor.intervals().size == 0
        monitor.record(1.0)
        assert monitor.intervals().size == 0

    def test_decreasing_timestamp_rejected(self):
        monitor = IntervalMonitor()
        monitor.record(1.0)
        with pytest.raises(ValueError):
            monitor.record(0.5)

    def test_rate_estimation(self):
        monitor = IntervalMonitor()
        for t in np.arange(0.0, 1.01, 0.01):
            monitor.record(float(t))
        assert monitor.rate() == pytest.approx(100.0, rel=1e-6)

    def test_rate_needs_two_events_and_positive_span(self):
        monitor = IntervalMonitor()
        monitor.record(1.0)
        with pytest.raises(ValueError):
            monitor.rate()
        monitor.record(1.0)
        with pytest.raises(ValueError):
            monitor.rate()

    def test_reset(self):
        monitor = IntervalMonitor()
        monitor.record(0.0)
        monitor.reset()
        assert len(monitor) == 0

    @given(
        gaps=st.lists(st.floats(min_value=1e-6, max_value=10.0), min_size=1, max_size=100)
    )
    @settings(max_examples=50, deadline=None)
    def test_interval_reconstruction_property(self, gaps):
        monitor = IntervalMonitor()
        timestamps = np.concatenate(([0.0], np.cumsum(gaps)))
        for t in timestamps:
            monitor.record(float(t))
        assert np.allclose(monitor.intervals(), gaps)
