"""Equivalence and contract tests for the vectorized capture kernel.

The load-bearing guarantee of :mod:`repro.sim.kernel` is *byte-identity*: for
every eligible scenario the closed-form capture must equal the event-engine
capture exactly, not approximately, because cached sweep results are
fingerprinted on configuration and silently switching kernels must never
change a figure.  These tests pin that guarantee across every timer family,
the disturbance on/off matrix, the kernel-selection plumbing, and the
constants the kernel mirrors from the gateway and source modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.experiments.base import (
    KERNEL_ENV_VAR,
    ScenarioConfig,
    resolve_kernel_mode,
    simulate_gateway_capture,
    vectorized_capture_eligible,
)
from repro.padding.disturbance import InterruptDisturbance
from repro.padding.gateway import _MIN_TX_SPACING_S
from repro.padding.policies import cit_policy, vit_policy
from repro.sim import kernel
from repro.sim.random import RandomStreams


def _capture(scenario: ScenarioConfig, kernel_mode: str, n: int = 800, seed: int = 42):
    streams = RandomStreams(seed)
    return {
        label: simulate_gateway_capture(
            scenario, rate, n, streams, label, with_network=False, kernel=kernel_mode
        )
        for label, rate in scenario.rate_labels.items()
    }


class TestByteIdentity:
    """vectorized == event, bit for bit, for every eligible configuration."""

    @pytest.mark.parametrize(
        "policy",
        [
            cit_policy(),
            vit_policy(sigma_t=1e-3),
            vit_policy(sigma_t=1e-3, family="uniform"),
            vit_policy(sigma_t=1e-3, family="exponential"),
            vit_policy(sigma_t=1e-3, family="lognormal"),
        ],
        ids=["cit", "vit-normal", "vit-uniform", "vit-exponential", "vit-lognormal"],
    )
    def test_every_timer_family_matches(self, policy):
        scenario = ScenarioConfig(policy=policy)
        event = _capture(scenario, "event")
        vectorized = _capture(scenario, "vectorized")
        for label in ("low", "high"):
            assert np.array_equal(event[label], vectorized[label]), label

    def test_disturbance_free_gateway_matches(self):
        scenario = ScenarioConfig(disturbance=None)
        event = _capture(scenario, "event")
        vectorized = _capture(scenario, "vectorized")
        for label in ("low", "high"):
            assert np.array_equal(event[label], vectorized[label])

    def test_extreme_vit_exercises_the_spacing_clamp(self):
        """sigma_T near the mean makes tiny interval draws: the clamp fires."""
        scenario = ScenarioConfig(policy=vit_policy(sigma_t=9e-3))
        event = _capture(scenario, "event", n=600)
        vectorized = _capture(scenario, "vectorized", n=600)
        for label in ("low", "high"):
            assert np.array_equal(event[label], vectorized[label])


class TestKernelSelection:
    def test_resolve_prefers_argument_over_environment(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "event")
        assert resolve_kernel_mode("vectorized") == "vectorized"
        assert resolve_kernel_mode() == "event"
        monkeypatch.delenv(KERNEL_ENV_VAR)
        assert resolve_kernel_mode() == "auto"

    def test_resolve_rejects_unknown_modes(self):
        with pytest.raises(ConfigurationError):
            resolve_kernel_mode("turbo")

    def test_networked_paths_are_ineligible(self):
        scenario = ScenarioConfig(n_hops=3, cross_utilization=0.2)
        assert not vectorized_capture_eligible(scenario, with_network=True)
        # The same scenario without the routed path is eligible (hybrid mode).
        assert vectorized_capture_eligible(scenario, with_network=False)

    def test_disturbance_subclasses_are_ineligible(self):
        class CustomDisturbance(InterruptDisturbance):
            pass

        scenario = ScenarioConfig(disturbance=CustomDisturbance())
        assert not vectorized_capture_eligible(scenario, with_network=False)

    def test_strict_vectorized_raises_when_ineligible(self):
        scenario = ScenarioConfig(n_hops=2, cross_utilization=0.2)
        streams = RandomStreams(1)
        with pytest.raises(ConfigurationError):
            simulate_gateway_capture(
                scenario, 10.0, 50, streams, "low", with_network=True, kernel="vectorized"
            )

    def test_auto_falls_back_to_the_event_engine(self):
        scenario = ScenarioConfig(n_hops=1, cross_utilization=0.1)
        intervals = simulate_gateway_capture(
            scenario, 10.0, 50, RandomStreams(1), "low", with_network=True, kernel="auto"
        )
        assert intervals.shape == (50,)


class TestMirroredConstants:
    """The kernel duplicates two constants to avoid upward imports; pin them."""

    def test_min_tx_spacing_matches_the_gateway(self):
        assert kernel.MIN_TX_SPACING_S == _MIN_TX_SPACING_S

    def test_min_payload_gap_matches_the_source(self):
        from repro.sim.engine import Simulator
        from repro.traffic.sources import PoissonSource

        # The source floors every gap at its minimum; the kernel must use the
        # same floor.  Exercise the floor with a huge rate, where raw
        # exponential draws routinely undercut any fixed epsilon.
        source = PoissonSource(
            Simulator(), lambda p: None, 1e15, rng=np.random.default_rng(0)
        )
        gaps = [source._next_interval() for _ in range(2000)]
        assert min(gaps) == kernel.MIN_PAYLOAD_GAP_S


class TestKernelPrimitives:
    def test_blocking_counts_windows_do_not_double_count(self):
        arrivals = np.array([0.5, 1.1, 1.9, 2.05, 2.9])
        due = np.array([1.0, 2.0, 3.0])
        # Window covers [due-0.15, due]; arrivals before the previous due
        # time are excluded even when the window would reach back to them.
        counts = kernel.blocking_counts(arrivals, due, window=0.15)
        assert counts.tolist() == [0, 1, 1]
        # A huge window never re-counts across interrupts.
        assert kernel.blocking_counts(arrivals, due, window=10.0).tolist() == [1, 2, 2]

    def test_clamp_is_identity_for_well_spaced_times(self):
        times = np.array([0.0, 1.0, 2.0])
        assert kernel.clamp_min_spacing(times) is times

    def test_clamp_fixes_violations_sequentially(self):
        times = np.array([0.0, 1.0, 1.0, 1.0])
        clamped = kernel.clamp_min_spacing(times, spacing=0.5)
        assert clamped.tolist() == [0.0, 1.0, 1.5, 2.0]
        assert times.tolist() == [0.0, 1.0, 1.0, 1.0]  # input untouched

    def test_poisson_rate_zero_yields_no_arrivals(self):
        rng = np.random.default_rng(0)
        assert kernel.poisson_arrival_times(rng, 0.0, 100.0).size == 0

    def test_capture_requires_jitter_stream_when_jitter_enabled(self):
        with pytest.raises(SimulationError):
            kernel.simulate_padded_capture(
                interval_generator=cit_policy().make_timer(),
                payload_rate_pps=10.0,
                duration=1.0,
                timer_rng=np.random.default_rng(0),
                payload_rng=np.random.default_rng(1),
                base_jitter_std=1e-5,
            )


class TestSampleBatchContract:
    """sample_batch(rng, n) must equal n scalar sample() calls, bit for bit."""

    @pytest.mark.parametrize(
        "policy",
        [
            cit_policy(),
            vit_policy(sigma_t=1e-3),
            vit_policy(sigma_t=1e-3, family="uniform"),
            vit_policy(sigma_t=1e-3, family="exponential"),
            vit_policy(sigma_t=1e-3, family="lognormal"),
        ],
        ids=["cit", "normal", "uniform", "exponential", "lognormal"],
    )
    def test_batch_equals_scalar_stream(self, policy):
        generator = policy.make_timer()
        batch = generator.sample_batch(np.random.default_rng(7), 500)
        scalar_rng = np.random.default_rng(7)
        scalars = np.array([generator.sample(scalar_rng) for _ in range(500)])
        assert np.array_equal(batch, scalars)
