"""Tests for the multi-AS generator: determinism, connectivity, rendering."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import ConfigurationError
from repro.network import CountingSink
from repro.population import (
    ASGraphSpec,
    as_graph,
    build_sender_path,
    generate_as_topology,
    sender_topology_spec,
)
from repro.population.topology import CUSTOMER_PROVIDER, PEER


@pytest.fixture
def topology():
    return generate_as_topology(ASGraphSpec(n_as=12, seed=2003))


class TestASGraphSpec:
    def test_defaults_are_valid(self):
        ASGraphSpec()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n_as": 2},
            {"m_attach": 0},
            {"n_as": 4, "m_attach": 3},
            {"peer_fraction": 1.5},
            {"hops_per_as": 0},
            {"min_utilization": 0.5, "max_utilization": 0.2},
            {"max_utilization": 1.0},
            {"link_rate_bps": 0.0},
        ],
    )
    def test_rejects_invalid_parameters(self, overrides):
        with pytest.raises(ConfigurationError):
            ASGraphSpec(**overrides)


class TestGenerator:
    def test_edge_count_matches_the_growth_model(self, topology):
        spec = topology.spec
        core_size = spec.m_attach + 1
        clique_edges = core_size * (core_size - 1) // 2
        grown_edges = (spec.n_as - core_size) * spec.m_attach
        assert len(topology.edges) == clique_edges + grown_edges

    def test_graph_is_connected(self, topology):
        assert nx.is_connected(as_graph(topology))

    def test_every_as_reaches_the_core(self, topology):
        for src in range(topology.spec.n_as):
            path = topology.as_path(src)
            assert path[0] == src and path[-1] == topology.core_as

    def test_same_seed_reproduces_the_graph_exactly(self):
        spec = ASGraphSpec(n_as=12, seed=2003)
        a = generate_as_topology(spec)
        b = generate_as_topology(spec)
        assert a.edges == b.edges
        assert a.utilizations == b.utilizations
        assert a.core_as == b.core_as
        assert a.degrees() == b.degrees()

    def test_different_seed_changes_the_graph(self):
        a = generate_as_topology(ASGraphSpec(n_as=12, seed=2003))
        b = generate_as_topology(ASGraphSpec(n_as=12, seed=2004))
        assert a.utilizations != b.utilizations

    def test_edge_labels(self, topology):
        spec = topology.spec
        core_size = spec.m_attach + 1
        labels = {label for _, _, label in topology.edges}
        assert labels <= {PEER, CUSTOMER_PROVIDER}
        # The founding clique peers; each later AS's first link is bought.
        clique_edges = core_size * (core_size - 1) // 2
        assert all(label == PEER for _, _, label in topology.edges[:clique_edges])
        first_links = {}
        for a, b, label in topology.edges[clique_edges:]:
            if a not in first_links:
                first_links[a] = label
        assert all(label == CUSTOMER_PROVIDER for label in first_links.values())

    def test_core_is_the_highest_degree_as(self, topology):
        degrees = topology.degrees()
        assert degrees[topology.core_as] == max(degrees.values())

    def test_utilizations_respect_the_configured_range(self, topology):
        spec = topology.spec
        assert all(
            spec.min_utilization <= u <= spec.max_utilization
            for u in topology.utilizations
        )

    def test_networkx_view_matches(self, topology):
        graph = as_graph(topology)
        assert graph.number_of_nodes() == topology.spec.n_as
        assert graph.number_of_edges() == len(topology.edges)
        assert dict(graph.degree()) == topology.degrees()
        roles = nx.get_node_attributes(graph, "role")
        assert roles[topology.core_as] == "core"
        assert sum(1 for role in roles.values() if role == "core") == 1


class TestPaths:
    def test_path_hops_are_graph_edges(self, topology):
        adjacency = topology.adjacency()
        for src in range(topology.spec.n_as):
            path = topology.as_path(src)
            for a, b in zip(path, path[1:]):
                assert b in adjacency[a]

    def test_core_sender_has_trivial_path(self, topology):
        assert topology.as_path(topology.core_as) == (topology.core_as,)
        assert topology.path_depth(topology.core_as) == 0
        assert topology.path_utilization(topology.core_as) == 0.0

    def test_path_utilization_is_the_mean_over_traversed_ases(self, topology):
        src = next(
            as_id for as_id in range(topology.spec.n_as) if as_id != topology.core_as
        )
        path = topology.as_path(src)
        expected = round(
            sum(topology.utilizations[as_id] for as_id in path) / len(path), 4
        )
        assert topology.path_utilization(src) == expected

    def test_unknown_as_rejected(self, topology):
        with pytest.raises(ConfigurationError):
            topology.as_path(topology.spec.n_as)


class TestRendering:
    def test_scenario_for_scales_hops_with_depth(self, topology):
        from repro.experiments.base import ScenarioConfig

        base = ScenarioConfig()
        for src in range(topology.spec.n_as):
            scenario = topology.scenario_for(base, src)
            depth = topology.path_depth(src)
            if depth == 0:
                assert scenario.n_hops == 0
                assert scenario.cross_utilization == 0.0
            else:
                assert scenario.n_hops == topology.spec.hops_per_as * (depth + 1)
                assert scenario.cross_utilization == topology.path_utilization(src)
            assert scenario.link_rate_bps == topology.spec.link_rate_bps

    def test_sender_topology_spec_matches_the_rendered_scenario(self, topology):
        from repro.experiments.base import ScenarioConfig

        base = ScenarioConfig()
        for src in range(topology.spec.n_as):
            spec = sender_topology_spec(topology, src)
            scenario = topology.scenario_for(base, src)
            assert spec.n_hops == scenario.n_hops
            assert spec.cross_utilization == scenario.cross_utilization
            # The stream namespace stays inside the declared population-*.
            assert spec.name.startswith("population-as")

    def test_build_sender_path_materialises_the_rendered_hops(
        self, topology, simulator, streams
    ):
        src = next(
            as_id for as_id in range(topology.spec.n_as) if as_id != topology.core_as
        )
        path = build_sender_path(topology, src, simulator, CountingSink(), streams)
        spec = sender_topology_spec(topology, src)
        assert path.n_hops == spec.n_hops
        assert len(path.cross_generators) == spec.n_hops  # every hop is loaded
