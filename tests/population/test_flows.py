"""Tests for flow placement, the rate mix, and the compiled sweep grids."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.base import CollectionMode, ScenarioConfig
from repro.population import (
    ASGraphSpec,
    RateClass,
    assemble_population,
    generate_as_topology,
    hybrid_population_grid,
    multiclass_population_grid,
)

MIX = (
    RateClass(rate_pps=2.0, weight=0.5),
    RateClass(rate_pps=5.0, weight=0.3),
    RateClass(rate_pps=10.0, weight=0.2),
)


@pytest.fixture
def topology():
    return generate_as_topology(ASGraphSpec(n_as=8, seed=2003))


@pytest.fixture
def population(topology):
    return assemble_population(topology, 200, MIX, seed=2003)


class TestRateClass:
    def test_rejects_nonpositive_values(self):
        with pytest.raises(ConfigurationError):
            RateClass(rate_pps=0.0, weight=1.0)
        with pytest.raises(ConfigurationError):
            RateClass(rate_pps=1.0, weight=0.0)


class TestAssemblePopulation:
    def test_places_every_flow_outside_the_core(self, topology, population):
        assert len(population.flows) == 200
        assert all(flow.as_id != topology.core_as for flow in population.flows)

    def test_rates_come_from_the_mix(self, population):
        assert set(population.rate_classes) <= {rc.rate_pps for rc in MIX}
        assert population.rate_classes == tuple(sorted(population.rate_classes))

    def test_same_seed_reproduces_the_population(self, topology):
        a = assemble_population(topology, 200, MIX, seed=2003)
        b = assemble_population(topology, 200, MIX, seed=2003)
        assert a.flows == b.flows

    def test_different_seed_moves_the_flows(self, topology):
        a = assemble_population(topology, 200, MIX, seed=2003)
        b = assemble_population(topology, 200, MIX, seed=2004)
        assert a.flows != b.flows

    def test_changing_the_mix_keeps_the_placement(self, topology):
        """Placement and rate draws use separate streams by design."""
        other_mix = tuple(
            RateClass(rate_pps=rc.rate_pps * 3, weight=rc.weight) for rc in MIX
        )
        a = assemble_population(topology, 200, MIX, seed=2003)
        b = assemble_population(topology, 200, other_mix, seed=2003)
        assert [f.as_id for f in a.flows] == [f.as_id for f in b.flows]

    def test_validation(self, topology):
        with pytest.raises(ConfigurationError):
            assemble_population(topology, 0, MIX, seed=1)
        with pytest.raises(ConfigurationError):
            assemble_population(topology, 10, (), seed=1)
        duplicated = (MIX[0], MIX[0], MIX[1])
        with pytest.raises(ConfigurationError):
            assemble_population(topology, 10, duplicated, seed=1)


class TestPopulationViews:
    def test_flows_per_as_sums_to_the_population(self, population):
        assert sum(population.flows_per_as().values()) == len(population.flows)

    def test_cell_sizes_partition_the_population(self, population):
        sizes = population.cell_sizes()
        assert sum(sizes.values()) == len(population.flows)
        assert all(as_id in population.sender_ases() for as_id, _ in sizes)

    def test_sender_ases_sorted(self, population):
        ases = population.sender_ases()
        assert list(ases) == sorted(ases)


class TestHybridGrid:
    def test_one_point_per_inhabited_as_sharing_one_capture(self, population):
        grid = hybrid_population_grid(
            population, ScenarioConfig(), sample_sizes=(100,), trials=4
        )
        assert len(grid.points) == len(population.sender_ases())
        assert all(point.shared_capture for point in grid.points)
        assert len({point.capture_key for point in grid.points}) == 1
        # Per-AS noise salts stay distinct so path noise is independent.
        assert len({point.noise_offsets for point in grid.points}) == len(grid.points)

    def test_binary_pair_is_the_mix_extremes(self, population):
        grid = hybrid_population_grid(
            population, ScenarioConfig(), sample_sizes=(100,), trials=4
        )
        rates = population.rate_classes
        for point in grid.points:
            assert point.scenario.low_rate_pps == rates[0]
            assert point.scenario.high_rate_pps == rates[-1]

    def test_cell_fingerprints_are_reproducible(self, topology):
        """Two independent constructions yield byte-identical cell identity."""
        grids = []
        for _ in range(2):
            population = assemble_population(topology, 200, MIX, seed=2003)
            grids.append(
                hybrid_population_grid(
                    population, ScenarioConfig(), sample_sizes=(100,), trials=4
                )
            )
        a = [(c.key, c.fingerprint()) for c in grids[0].cells()]
        b = [(c.key, c.fingerprint()) for c in grids[1].cells()]
        assert a == b


class TestMulticlassGrid:
    def test_points_carry_the_full_mix(self, population):
        grid = multiclass_population_grid(
            population, ScenarioConfig(), sample_sizes=(100,), trials=4
        )
        assert grid.mode is CollectionMode.ANALYTIC
        assert 1 <= len(grid.points) <= 3
        for point in grid.points:
            assert point.rate_classes == population.rate_classes
            assert point.key.startswith("population/mix/depth=")

    def test_depth_subsampling_honours_the_cap(self, population):
        grid = multiclass_population_grid(
            population, ScenarioConfig(), sample_sizes=(100,), trials=4,
            max_depth_points=1,
        )
        assert len(grid.points) == 1

    def test_requires_three_rate_classes(self, topology):
        two_rate_mix = (MIX[0], MIX[1])
        population = assemble_population(topology, 50, two_rate_mix, seed=2003)
        with pytest.raises(ConfigurationError, match="three"):
            multiclass_population_grid(
                population, ScenarioConfig(), sample_sizes=(100,), trials=4
            )
