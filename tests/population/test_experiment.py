"""End-to-end tests for the registered population experiment."""

from __future__ import annotations

import pytest

from repro.api import Experiment, get_experiment, list_experiments, run_experiment
from repro.exceptions import ConfigurationError
from repro.experiments.base import CollectionMode
from repro.population import PopulationConfig, PopulationExperiment
from repro.runner import SweepRunner


def smoke_config(**overrides):
    settings = dict(
        n_as=5,
        sample_sizes=(50, 100),
        trials=4,
        mode=CollectionMode.ANALYTIC,
        mix_depth_points=2,
    )
    settings.update(overrides)
    return PopulationConfig(**settings)


class TestPopulationConfig:
    def test_defaults_are_valid(self):
        config = PopulationConfig()
        assert config.n_flows == 600
        assert config.graph_spec().n_as == config.n_as

    def test_rejects_simulation_mode(self):
        with pytest.raises(ConfigurationError, match="analytic"):
            smoke_config(mode=CollectionMode.SIMULATION)

    def test_rejects_thin_or_unsorted_rate_mixes(self):
        with pytest.raises(ConfigurationError, match="three"):
            smoke_config(rate_classes=(2.0, 10.0), rate_weights=(0.5, 0.5))
        with pytest.raises(ConfigurationError, match="sorted"):
            smoke_config(rate_classes=(10.0, 5.0, 2.0))
        with pytest.raises(ConfigurationError, match="match"):
            smoke_config(rate_weights=(0.5, 0.5))

    def test_graph_spec_failures_surface_at_config_time(self):
        with pytest.raises(ConfigurationError, match="n_as"):
            smoke_config(n_as=2)


class TestPopulationExperiment:
    def test_satisfies_the_experiment_protocol(self):
        experiment = PopulationExperiment(smoke_config())
        assert isinstance(experiment, Experiment)
        assert experiment.name == "population"
        assert "anonymity" in experiment.describe()

    def test_structure_is_fixed_across_sweep_seeds(self):
        """Sweep seeds vary capture noise only: the grid points are shared."""
        experiment = PopulationExperiment(smoke_config())
        a = [c.key for c in experiment.cells(seeds=(2003,))]
        b = [c.key for c in experiment.cells(seeds=(2004,))]
        assert a == b

    def test_population_holds_every_flow(self):
        experiment = PopulationExperiment(smoke_config())
        assert len(experiment.population().flows) == 600

    def test_runs_end_to_end_with_confusion_and_anonymity_sections(self):
        experiment = PopulationExperiment(smoke_config())
        result = run_experiment(experiment)
        text = result.to_text()
        assert "Population-scale anonymity (600 flows" in text
        assert "Per-AS detection rate" in text
        assert "Anonymity sets" in text
        assert "Fraction of population identified" in text
        assert "Multi-rate mix detection (3 classes" in text
        assert "Confusion matrix — variance feature" in text
        # Confusion rows are ordered numerically: 2 before 10.
        assert "true \\ predicted" in text

    def test_serial_and_process_backends_agree_byte_for_byte(self):
        experiment = PopulationExperiment(smoke_config())
        serial = run_experiment(experiment, runner=SweepRunner(jobs=1))
        process = run_experiment(
            PopulationExperiment(smoke_config()),
            runner=SweepRunner(jobs=2, backend="process"),
        )
        assert serial.to_text() == process.to_text()

    def test_multi_seed_ci_bands(self):
        experiment = PopulationExperiment(smoke_config(trials=4))
        outcome = run_experiment(experiment, seeds=(2003, 2004), confidence=0.9)
        text = outcome.to_text()
        assert "mean of 2 seeds" in text
        assert "ci90%" in text


class TestRegistryIntegration:
    def test_population_is_registered(self):
        assert "population" in list_experiments()

    def test_presets_shrink_the_graph_not_the_population(self):
        for preset in ("paper", "fast", "quick", "smoke"):
            experiment = get_experiment("population", preset, 2003)
            assert experiment.config.n_flows == 600

    def test_smoke_preset_runs_through_the_registry(self):
        experiment = get_experiment("population", "smoke", 2003)
        result = run_experiment(experiment)
        assert "Population-scale anonymity" in result.to_text()

    def test_set_overrides_apply(self):
        experiment = get_experiment(
            "population", "smoke", 2003, overrides={"trials": 6}
        )
        assert experiment.config.trials == 6
