"""Tests for anonymity-set, identification-curve and confusion aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import pytest

from repro.exceptions import AnalysisError
from repro.population import (
    ASGraphSpec,
    aggregate_confusion,
    anonymity_set_distribution,
    anonymity_summary,
    generate_as_topology,
    identification_curve,
)
from repro.population.flows import Flow, FlowPopulation
from repro.population.metrics import confusion_rows


@dataclass
class FakeResult:
    confusion: Dict = field(default_factory=dict)


def hand_population():
    """Six flows over two ASes and two rates, with known cell sizes."""
    topology = generate_as_topology(ASGraphSpec(n_as=5, seed=2003))
    sender_a, sender_b = [
        as_id for as_id in range(5) if as_id != topology.core_as
    ][:2]
    flows = (
        Flow(0, sender_a, 2.0),
        Flow(1, sender_a, 2.0),
        Flow(2, sender_a, 2.0),
        Flow(3, sender_a, 10.0),
        Flow(4, sender_b, 2.0),
        Flow(5, sender_b, 2.0),
    )
    return FlowPopulation(topology=topology, flows=flows), sender_a, sender_b


class TestAnonymitySets:
    def test_distribution_counts_cells_by_size(self):
        population, _, _ = hand_population()
        # Cells: (a, 2)->3, (a, 10)->1, (b, 2)->2.
        assert anonymity_set_distribution(population) == {1: 1, 2: 1, 3: 1}

    def test_summary_statistics(self):
        population, _, _ = hand_population()
        stats = anonymity_summary(population)
        assert stats["n_sets"] == 3.0
        assert stats["min"] == 1.0
        assert stats["median"] == 2.0
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["max"] == 3.0

    def test_empty_population_rejected(self):
        topology = generate_as_topology(ASGraphSpec(n_as=5, seed=2003))
        empty = FlowPopulation(topology=topology, flows=())
        with pytest.raises(AnalysisError):
            anonymity_summary(empty)


class TestIdentificationCurve:
    def test_weights_each_as_by_its_flow_count(self):
        population, sender_a, sender_b = hand_population()
        rates = {sender_a: {100: 0.5}, sender_b: {100: 1.0}}
        curve = identification_curve(population, rates, [100])
        # (4 flows * 0.5 + 2 flows * 1.0) / 6
        assert curve[100] == pytest.approx(4.0 / 6.0)

    def test_missing_as_fails_loudly(self):
        population, sender_a, _ = hand_population()
        with pytest.raises(AnalysisError, match="missing AS"):
            identification_curve(population, {sender_a: {100: 0.5}}, [100])

    def test_missing_sample_size_fails_loudly(self):
        population, sender_a, sender_b = hand_population()
        rates = {sender_a: {100: 0.5}, sender_b: {100: 1.0}}
        with pytest.raises(AnalysisError, match="sample size"):
            identification_curve(population, rates, [500])


class TestAggregateConfusion:
    def test_sums_across_results(self):
        matrix = {"variance": {100: {"2": {"2": 3, "10": 1}, "10": {"10": 4}}}}
        total = aggregate_confusion([FakeResult(matrix), FakeResult(matrix)])
        assert total["variance"][100]["2"]["2"] == 6
        assert total["variance"][100]["2"]["10"] == 2
        assert total["variance"][100]["10"]["10"] == 8

    def test_skips_results_without_confusion(self):
        matrix = {"mean": {50: {"2": {"2": 1}}}}
        total = aggregate_confusion(
            [FakeResult(), object(), FakeResult(matrix)]
        )
        assert total == matrix

    def test_degrades_to_empty(self):
        assert aggregate_confusion([object(), FakeResult()]) == {}


class TestConfusionRows:
    def test_rows_order_numerically_and_zero_fill(self):
        matrix = {"10": {"10": 4, "2": 1}, "2": {"2": 3}}
        headers, rows = confusion_rows(matrix)
        assert headers == ["true \\ predicted", "2", "10"]
        assert rows == [("2", 3, 0), ("10", 1, 4)]
